"""Retry with exponential backoff on a simulated clock.

Real HPC build services sleep between attempts; the reproduction must not
(tier-1 runs in seconds), so backoff is charged to a
:class:`SimulatedClock` instead of ``time.sleep``.  The clock doubles as
the resilience layer's notion of elapsed time: reports quote
``clock.now`` as the simulated cost of the recovery.

Classification is type-based, not string-based: an exception is retryable
iff its class carries a truthy ``transient`` attribute
(:class:`repro.oci.registry.TransientTransferError`,
:class:`repro.resilience.faults.TransientFault`).  Everything else —
genuine compile failures, corrupted caches, persistent faults — is fatal
to the attempt and handled by the degradation ladder.
"""

from __future__ import annotations

import logging
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, TypeVar

T = TypeVar("T")

logger = logging.getLogger("repro.resilience.retry")


class RetryBudgetExhausted(Exception):
    """The retry budget ran out before the operation succeeded."""


#: Exhaustion causes: the attempt cap was the binding constraint vs. the
#: simulated-time budget running out first.  Distinct causes get distinct
#: ``metric_site`` instrument rows — an operator tunes ``max_attempts``
#: for the one and ``budget_seconds`` for the other.
CAUSE_ATTEMPTS = "attempts"
CAUSE_BUDGET = "budget"


@dataclass
class SimulatedClock:
    """Monotonic simulated time; ``sleep`` advances instead of blocking."""

    now: float = 0.0
    sleeps: List[float] = field(default_factory=list)

    def sleep(self, seconds: float) -> None:
        self.now += seconds
        self.sleeps.append(seconds)


@dataclass
class RetryPolicy:
    """Exponential backoff with jitter, an attempt cap and a time budget."""

    max_attempts: int = 4
    base_delay: float = 0.5
    multiplier: float = 2.0
    max_delay: float = 30.0
    jitter: float = 0.25          # +/- fraction of the nominal delay
    budget_seconds: float = 300.0  # total simulated sleep per operation

    def delay_for(self, attempt: int, rng: Optional[random.Random] = None) -> float:
        delay = min(self.max_delay, self.base_delay * self.multiplier ** attempt)
        if rng is not None and self.jitter > 0.0:
            delay *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return max(0.0, delay)


@dataclass
class RetryStats:
    """Retry bookkeeping, aggregated per site for the resilience report.

    *scope* attributes the spend to one tenant/request of the adaptation
    service (empty for standalone sessions); :meth:`merge` folds scoped
    per-request stats into a tenant- or service-wide aggregate, so retry
    budget accounting stays attributable end to end.
    """

    retries: Dict[str, int] = field(default_factory=dict)
    exhausted: List[str] = field(default_factory=list)
    #: ``tenant/request`` (or any caller-chosen label) this spend belongs to.
    scope: str = ""
    #: Simulated backoff seconds charged per site.
    spend: Dict[str, float] = field(default_factory=dict)
    #: ``(site, cause)`` of each exhaustion, in order (parallel to
    #: ``exhausted``; cause is CAUSE_ATTEMPTS or CAUSE_BUDGET).
    exhaustion_causes: List[tuple] = field(default_factory=list)

    def note_retry(self, site: str, delay: float = 0.0) -> None:
        self.retries[site] = self.retries.get(site, 0) + 1
        if delay:
            self.spend[site] = self.spend.get(site, 0.0) + delay

    def note_exhausted(self, site: str, cause: str = CAUSE_ATTEMPTS) -> None:
        self.exhausted.append(site)
        self.exhaustion_causes.append((site, cause))

    def exhausted_by_site(self) -> Dict[str, int]:
        """Exhaustion counts keyed on site (the report-table view of the
        per-site ``resilience_retry_exhaustion_attempts_*`` histograms)."""
        out: Dict[str, int] = {}
        for site in self.exhausted:
            out[site] = out.get(site, 0) + 1
        return out

    def exhausted_by_cause(self) -> Dict[str, int]:
        """Exhaustion counts keyed ``site/cause`` — attempt-cap and
        time-budget exhaustions reported as distinct rows."""
        out: Dict[str, int] = {}
        for site, cause in self.exhaustion_causes:
            key = f"{site}/{cause}"
            out[key] = out.get(key, 0) + 1
        return out

    def merge(self, other: "RetryStats") -> None:
        """Fold *other* (a scoped per-request stats) into this aggregate."""
        for site, count in other.retries.items():
            self.retries[site] = self.retries.get(site, 0) + count
        for site, seconds in other.spend.items():
            self.spend[site] = self.spend.get(site, 0.0) + seconds
        self.exhausted.extend(other.exhausted)
        self.exhaustion_causes.extend(other.exhaustion_causes)

    @property
    def total_retries(self) -> int:
        return sum(self.retries.values())

    @property
    def total_spend(self) -> float:
        return sum(self.spend.values())


def is_transient(exc: BaseException) -> bool:
    """True when *exc* is worth retrying (typed, not string-matched)."""
    return bool(getattr(exc, "transient", False))


def retry_call(
    fn: Callable[[], T],
    *,
    policy: RetryPolicy,
    clock: SimulatedClock,
    rng: Optional[random.Random] = None,
    stats: Optional[RetryStats] = None,
    site: str = "op",
    telemetry=None,
) -> T:
    """Run *fn*, retrying transient failures under *policy*.

    Fatal (non-transient) errors propagate immediately.  When attempts or
    the simulated-time budget run out, the last transient error propagates
    so the caller's degradation logic sees the real cause.  With a
    *telemetry* recorder, each retry lands a ``retry.attempt`` event on
    the active span and the backoff delay is charged to the trace clock.
    """
    spent = 0.0
    for attempt in range(policy.max_attempts):
        try:
            return fn()
        except Exception as exc:
            if not is_transient(exc):
                raise
            delay = policy.delay_for(attempt, rng)
            out_of_attempts = attempt + 1 >= policy.max_attempts
            out_of_budget = spent + delay > policy.budget_seconds
            if out_of_attempts or out_of_budget:
                cause = CAUSE_ATTEMPTS if out_of_attempts else CAUSE_BUDGET
                if stats is not None:
                    stats.note_exhausted(site, cause=cause)
                if telemetry is not None:
                    from repro.telemetry.metrics import (
                        ATTEMPT_BUCKETS,
                        metric_site,
                    )

                    telemetry.event("retry.exhausted", site=site,
                                    attempts=attempt + 1, cause=cause,
                                    error=str(exc))
                    telemetry.metrics.counter(
                        "resilience_retries_exhausted_total").inc()
                    telemetry.metrics.counter(
                        f"resilience_retries_exhausted_{cause}_total").inc()
                    # Per-site-and-cause exhaustion histogram: which sites
                    # burn out, after how many attempts, and whether the
                    # attempt cap or the time budget was the binding
                    # constraint (they are tuned independently).
                    telemetry.metrics.histogram(
                        "resilience_retry_exhaustion_attempts_"
                        + metric_site(site) + "_" + cause,
                        buckets=ATTEMPT_BUCKETS,
                    ).observe(attempt + 1)
                logger.warning("retry %s exhausted at %s after %d attempts",
                               cause, site, attempt + 1)
                raise
            clock.sleep(delay)
            spent += delay
            if stats is not None:
                stats.note_retry(site, delay=delay)
            if telemetry is not None:
                telemetry.event("retry.attempt", site=site,
                                attempt=attempt + 1, delay=delay,
                                error=str(exc))
                telemetry.metrics.counter("resilience_retries_total").inc()
                telemetry.charge(delay)
            logger.info("transient failure at %s (attempt %d): %s; "
                        "backing off %.2fs", site, attempt + 1, exc, delay)
    raise RetryBudgetExhausted(site)   # unreachable; loop always returns/raises
