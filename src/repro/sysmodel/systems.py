"""The two testbed clusters (paper Table 1) and their software stacks.

+-------+-------------------------+----------------------------+
|       | x86_64                  | aarch64                    |
+-------+-------------------------+----------------------------+
| CPU   | 2x Intel Xeon Platinum  | 1x Phytium FT-2000+/64     |
|       | 8358P @ 2.60GHz         | @ 2.2GHz                   |
| RAM   | 512GB                   | 128GB                      |
| OS    | Ubuntu 22.04            | Kylin Linux Adv. Server V10|
| Nodes | 16                      | 16                         |
+-------+-------------------------+----------------------------+

Besides the hardware facts, each system model carries the performance
knobs the analytic model uses: which toolchain/repo is "native" on the
system, and how badly a generic (plugin-less) MPI underuses the system's
high-speed network (`hsn_penalty`).  The AArch64 cluster's network needs
a dedicated plugin that generic OpenMPI lacks — the cause of the paper's
231% LULESH improvement on 16 AArch64 nodes — while the x86-64 cluster's
fabric is reasonably served by stock btl/mtl components.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple


@dataclass(frozen=True)
class CpuModel:
    name: str
    isa: str
    vendor: str
    sockets: int
    cores_per_socket: int
    freq_ghz: float
    vector_bits: int

    @property
    def cores_per_node(self) -> int:
        return self.sockets * self.cores_per_socket


@dataclass(frozen=True)
class NetworkModel:
    kind: str                     # "hsn" = proprietary high-speed network
    latency_us: float
    bandwidth_gbps: float
    #: Slowdown of communication when the MPI lacks this network's plugin.
    hsn_penalty: float = 1.0


@dataclass(frozen=True)
class SystemModel:
    """One cluster: hardware + the software stack coMtainer adapts to."""

    name: str
    key: str                      # short id used in profiles ("x86" / "arm")
    arch: str                     # container architecture (amd64 / arm64)
    isa: str
    nodes: int
    cpu: CpuModel
    ram_gb: int
    os_name: str
    network: NetworkModel
    native_toolchain: str         # toolchain id of the vendor compiler
    vendor_repo: str              # repository name of the optimized stack
    #: Quality of the system's optimized numeric libraries relative to the
    #: generic distro libraries (BLAS-class / FFT-class).
    native_lib_quality: float = 1.0
    native_fft_quality: float = 1.0
    #: Vendor-MPI software-stack efficiency vs generic MPI *on top of* the
    #: plugin effect (protocol tuning, collectives).
    native_mpi_quality: float = 1.0

    def march_is_native(self, march: str) -> bool:
        from repro.toolchain.info import get_toolchain

        if march == "native":
            return True
        for toolchain_id in ("gnu-12", self.native_toolchain):
            info = get_toolchain(toolchain_id)
            if info.native_march.get(self.isa) == march:
                return True
        return False


X86_CLUSTER = SystemModel(
    name="x86-64 cluster (Intel Xeon Platinum 8358P)",
    key="x86",
    arch="amd64",
    isa="x86-64",
    nodes=16,
    cpu=CpuModel(
        name="Intel Xeon Platinum 8358P",
        isa="x86-64",
        vendor="Intel",
        sockets=2,
        cores_per_socket=32,
        freq_ghz=2.60,
        vector_bits=512,
    ),
    ram_gb=512,
    os_name="Ubuntu 22.04",
    network=NetworkModel(kind="hsn", latency_us=1.4, bandwidth_gbps=200.0,
                         hsn_penalty=1.02),
    native_toolchain="intel-2024",
    vendor_repo="intel-hpc",
    native_lib_quality=1.60,
    native_fft_quality=2.00,
    native_mpi_quality=1.03,
)

AARCH64_CLUSTER = SystemModel(
    name="AArch64 cluster (Phytium FT-2000+/64)",
    key="arm",
    arch="arm64",
    isa="aarch64",
    nodes=16,
    cpu=CpuModel(
        name="Phytium FT-2000+/64",
        isa="aarch64",
        vendor="Phytium",
        sockets=1,
        cores_per_socket=64,
        freq_ghz=2.2,
        vector_bits=128,
    ),
    ram_gb=128,
    os_name="Kylin Linux Advanced Server V10",
    network=NetworkModel(kind="hsn", latency_us=1.9, bandwidth_gbps=100.0,
                         hsn_penalty=2.5),
    native_toolchain="phytium-kit-3",
    vendor_repo="phytium-hpc",
    native_lib_quality=1.90,
    native_fft_quality=1.70,
    native_mpi_quality=1.20,
)

SYSTEMS: Dict[str, SystemModel] = {
    X86_CLUSTER.key: X86_CLUSTER,
    AARCH64_CLUSTER.key: AARCH64_CLUSTER,
}


def system_for_arch(arch: str) -> SystemModel:
    for system in SYSTEMS.values():
        if system.arch == arch:
            return system
    raise KeyError(f"no testbed system for arch {arch!r}")
