"""HPC system models (Table 1 of the paper)."""

from repro.sysmodel.systems import (
    AARCH64_CLUSTER,
    SYSTEMS,
    X86_CLUSTER,
    CpuModel,
    NetworkModel,
    SystemModel,
    system_for_arch,
)

__all__ = [
    "AARCH64_CLUSTER",
    "CpuModel",
    "NetworkModel",
    "SYSTEMS",
    "SystemModel",
    "X86_CLUSTER",
    "system_for_arch",
]
