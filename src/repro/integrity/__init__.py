"""Integrity & crash-consistency layer: typed corruption diagnostics.

coMtainer's contract is that the extended image survives the
user->registry->HPC-system round trip *byte-exact*: the cache layer of
process models is the input to the system-side rebuild, so silently
wrong bytes mean silently wrong adaptation.  This package makes every
persistence and transfer path corruption-*detecting* (verified reads
raising :class:`IntegrityError` instead of returning wrong bytes) and
self-*healing* (quarantine + :class:`repro.integrity.repair.RepairEngine`
+ ``coMtainer fsck``).  See ``docs/RESILIENCE.md`` for the fault sites
and repair semantics.

This module is intentionally a leaf: it defines only the typed error and
finding objects so low-level substrates (``repro.oci.blobs``) can import
them without cycles.  The repair engine and fsck driver live in the
``repair`` and ``fsck`` submodules and are re-exported lazily.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

# Finding kinds, in rough order of severity.
KIND_DIGEST_MISMATCH = "digest-mismatch"
KIND_SIZE_MISMATCH = "size-mismatch"
KIND_CHECKSUM_MISMATCH = "checksum-mismatch"
KIND_UNPARSEABLE = "unparseable"
KIND_MISSING = "missing"
KIND_ORPHANED = "orphaned"
KIND_QUARANTINED = "quarantined"


@dataclass(frozen=True)
class IntegrityFinding:
    """One verified-integrity problem: what object, what kind, what detail.

    ``digest`` identifies the object (a blob digest, or a layout-relative
    path for on-disk files that are not content-addressed), ``kind`` is
    one of the ``KIND_*`` constants, and ``detail`` is the human-readable
    diagnosis (e.g. the digest the content *actually* hashes to).
    """

    digest: str
    kind: str
    detail: str = ""

    def __str__(self) -> str:
        text = f"blob {self.digest} {self.kind}"
        if self.detail:
            text += f": {self.detail}"
        return text

    def to_json(self) -> dict:
        return {"digest": self.digest, "kind": self.kind, "detail": self.detail}


class IntegrityError(Exception):
    """Content failed verification against its declared digest.

    Carries the *site* that detected the corruption (``blob.read``,
    ``registry.pull``, ``layout.load``, ...), the declared ``digest`` and
    the diagnostic ``detail`` so reports and repair engines can act on
    typed data instead of parsing messages.  Deliberately **not**
    transient: retrying a read of corrupted-at-rest content cannot
    succeed, so recovery must come from quarantine + repair (or the
    degradation ladder), never from the retry loop.
    """

    transient = False

    def __init__(
        self,
        site: str,
        digest: str = "",
        detail: str = "",
        finding: Optional[IntegrityFinding] = None,
    ) -> None:
        if finding is not None and not digest:
            digest = finding.digest
        if finding is not None and not detail:
            detail = f"{finding.kind}: {finding.detail}" if finding.detail else finding.kind
        message = f"integrity violation at {site}"
        if digest:
            message += f" ({digest})"
        if detail:
            message += f": {detail}"
        super().__init__(message)
        self.site = site
        self.digest = digest
        self.detail = detail
        self.finding = finding


def find_integrity_error(exc: BaseException) -> Optional[IntegrityError]:
    """Walk an exception's cause/context chain for an :class:`IntegrityError`.

    The rebuild pipeline wraps low-level errors (``ProgramError`` and
    friends); the degradation ladder uses this to decide whether a failed
    attempt was a data fault worth routing through the repair engine.
    """
    seen = set()
    current: Optional[BaseException] = exc
    while current is not None and id(current) not in seen:
        if isinstance(current, IntegrityError):
            return current
        seen.add(id(current))
        current = current.__cause__ or current.__context__
    return None


def __getattr__(name):
    """Lazy re-exports of the heavier submodules (avoids import cycles:
    ``repro.oci.blobs`` imports this package at module load)."""
    from importlib import import_module

    for module_name in ("repair", "fsck"):
        module = import_module(f"{__name__}.{module_name}")
        if hasattr(module, name):
            return getattr(module, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "KIND_CHECKSUM_MISMATCH",
    "KIND_DIGEST_MISMATCH",
    "KIND_MISSING",
    "KIND_ORPHANED",
    "KIND_QUARANTINED",
    "KIND_SIZE_MISMATCH",
    "KIND_UNPARSEABLE",
    "IntegrityError",
    "IntegrityFinding",
    "find_integrity_error",
]
