"""Self-healing for corrupt blobs: quarantine, then restore from a replica.

A corrupt blob is never deleted — it is *quarantined* (kept for
forensics, unreadable through normal paths) and the
:class:`RepairEngine` tries to restore a verified copy from the best
available source, in registration order:

1. a registry replica (the repository still holds the pushed bytes),
2. another layout (e.g. the user-side layout the image was built into),
3. regeneration — re-running the process-model build path to
   reproduce the content from scratch.

Every candidate is re-hashed before it is trusted, and the store's copy
is re-verified after the put (a hostile injector can corrupt the repair
write too; the engine retries a bounded number of times and then gives
up honestly).  When a :class:`repro.resilience.degrade.ResilienceContext`
is supplied, source fetches and store writes flow through its
:class:`RetryPolicy`, so transient faults during repair are absorbed the
same way they are during transfer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.integrity import IntegrityError, IntegrityFinding
from repro.telemetry import NULL_TELEMETRY

#: How many times a repair re-writes the store copy when verification of
#: the written blob keeps failing (an injector corrupting every put).
REWRITE_ATTEMPTS = 3


@dataclass
class RepairOutcome:
    """What happened to one digest during a repair pass."""

    digest: str
    repaired: bool
    source: Optional[str] = None
    detail: str = ""

    def to_json(self) -> dict:
        return {
            "digest": self.digest,
            "repaired": self.repaired,
            "source": self.source,
            "detail": self.detail,
        }


class LayoutSource:
    """Repair source backed by another :class:`OCILayout`'s blob store."""

    def __init__(self, layout, label: str = "layout") -> None:
        self.layout = layout
        self.label = label

    def lookup(self, digest: str):
        from repro.oci.blobs import check_blob

        blob = self.layout.blobs.try_get(digest)
        if blob is None or check_blob(blob) is not None:
            return None
        return blob


class RegistrySource:
    """Repair source backed by a registry replica's blob store."""

    def __init__(self, registry, label: str = "registry") -> None:
        self.registry = registry
        self.label = label

    def lookup(self, digest: str):
        from repro.oci.blobs import check_blob

        blob = self.registry.blobs.try_get(digest)
        if blob is None or check_blob(blob) is not None:
            return None
        return blob


class RegenerationSource:
    """Repair source that rebuilds content through the process-model path.

    The factory (e.g. a closure over ``build_extended_image``) runs at
    most once, on the first lookup, and must return an ``OCILayout``
    whose blob store holds regenerated content.  Regeneration is the
    slowest and last-resort source, so register it after the replicas.
    """

    def __init__(self, factory: Callable[[], object], label: str = "regenerate") -> None:
        self.factory = factory
        self.label = label
        self._layout = None
        self._failed = False

    def lookup(self, digest: str):
        from repro.oci.blobs import check_blob

        if self._failed:
            return None
        if self._layout is None:
            try:
                self._layout = self.factory()
            except Exception:
                self._failed = True
                return None
        blob = self._layout.blobs.try_get(digest)
        if blob is None or check_blob(blob) is not None:
            return None
        return blob


@dataclass
class RepairEngine:
    """Quarantine corrupt blobs and restore verified copies from sources."""

    sources: List[object] = field(default_factory=list)
    telemetry: object = NULL_TELEMETRY

    def add_layout(self, layout, label: str = "layout") -> "RepairEngine":
        self.sources.append(LayoutSource(layout, label=label))
        return self

    def add_registry(self, registry, label: str = "registry") -> "RepairEngine":
        self.sources.append(RegistrySource(registry, label=label))
        return self

    def add_regenerator(self, factory, label: str = "regenerate") -> "RepairEngine":
        self.sources.append(RegenerationSource(factory, label=label))
        return self

    def add_federation(self, federation) -> "RepairEngine":
        """Register every mirror of a
        :class:`~repro.federation.registry.FederatedRegistry` as a repair
        source, freshest replica first — a corrupted origin blob then
        self-heals from whichever mirror still holds a verified copy."""
        self.sources.extend(federation.repair_sources())
        return self

    # ------------------------------------------------------------------

    def repair_blob(self, store, digest: str, ctx=None) -> RepairOutcome:
        """Restore one digest in *store* to a verified state.

        A corrupt copy is quarantined first, then each source is asked
        for a verified candidate; the first candidate that survives a
        post-write re-verification wins.  Healthy blobs are a no-op.
        """
        from repro.oci.blobs import check_blob

        blob = store.try_get(digest)
        if blob is not None:
            finding = check_blob(blob)
            if finding is None:
                return RepairOutcome(digest, repaired=True, detail="already intact")
            store.quarantine(digest, finding)
        for source in self.sources:
            if ctx is not None:
                candidate = ctx.retry(
                    lambda s=source: s.lookup(digest), site="integrity.repair"
                )
            else:
                candidate = source.lookup(digest)
            if candidate is None:
                continue
            for _ in range(REWRITE_ATTEMPTS):
                if ctx is not None:
                    ctx.retry(lambda c=candidate: store.put(c), site="integrity.repair")
                else:
                    store.put(candidate)
                stored = store.try_get(digest)
                if stored is not None and check_blob(stored) is None:
                    store.release_quarantine(digest)
                    if self.telemetry.enabled:
                        self.telemetry.metrics.counter("integrity_repairs_total").inc()
                        self.telemetry.event(
                            "integrity.repaired", digest=digest, source=source.label
                        )
                    return RepairOutcome(digest, repaired=True, source=source.label)
        if self.telemetry.enabled:
            self.telemetry.metrics.counter("integrity_repair_failures_total").inc()
            self.telemetry.event("integrity.repair_failed", digest=digest)
        return RepairOutcome(
            digest,
            repaired=False,
            detail="no source could supply a verified copy",
        )

    def repair_layout(self, layout, ctx=None) -> List[RepairOutcome]:
        """Repair every corrupt, quarantined-but-referenced, or missing
        referenced blob of *layout*; returns one outcome per target."""
        targets = {f.digest for f in layout.blobs.verify_integrity()}
        referenced = layout.referenced_digests()
        targets.update(
            f.digest for f in layout.blobs.quarantined() if f.digest in referenced
        )
        targets.update(
            d
            for d in referenced
            if d not in layout.blobs and layout.blobs.quarantined_blob(d) is None
        )
        return [
            self.repair_blob(layout.blobs, digest, ctx=ctx)
            for digest in sorted(targets)
        ]


__all__ = [
    "REWRITE_ATTEMPTS",
    "LayoutSource",
    "RegistrySource",
    "RegenerationSource",
    "RepairEngine",
    "RepairOutcome",
]
