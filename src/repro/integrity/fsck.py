"""``coMtainer fsck``: scan (and optionally repair) persisted image state.

Works on a live :class:`OCILayout` (:func:`fsck_layout`) or a saved
layout directory (:func:`fsck_directory`).  A scan never mutates
anything; with ``repair`` supplied, corrupt blobs are quarantined and
restored through the :class:`repro.integrity.repair.RepairEngine`, and a
repaired directory is atomically rewritten (fresh checksum manifest) and
re-verified before fsck reports success.

Exit codes (surfaced by the CLI): ``0`` — every object verified (possibly
after repair); ``1`` — unrepaired corruption, missing referenced blobs,
or failed repairs remain.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.integrity import (
    KIND_CHECKSUM_MISMATCH,
    KIND_MISSING,
    KIND_UNPARSEABLE,
    IntegrityError,
    IntegrityFinding,
)
from repro.integrity.repair import LayoutSource, RepairEngine, RepairOutcome
from repro.oci.digest import digest_bytes
from repro.oci.layout import CHECKSUM_MANIFEST, OCILayout
from repro.telemetry import NULL_TELEMETRY


@dataclass
class FsckReport:
    """Result of one fsck pass; all lists describe the *final* state."""

    target: str
    scanned: int = 0
    #: Problems found before any repair ran (for reporting).
    initial_findings: List[IntegrityFinding] = field(default_factory=list)
    #: Problems still present after the pass.
    findings: List[IntegrityFinding] = field(default_factory=list)
    quarantined: List[str] = field(default_factory=list)
    repaired: List[RepairOutcome] = field(default_factory=list)
    failed: List[RepairOutcome] = field(default_factory=list)
    missing: List[str] = field(default_factory=list)
    orphaned: List[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not (self.findings or self.missing or self.failed)

    @property
    def exit_code(self) -> int:
        return 0 if self.clean else 1

    def to_json(self) -> dict:
        return {
            "target": self.target,
            "scanned": self.scanned,
            "clean": self.clean,
            "initial_findings": [f.to_json() for f in self.initial_findings],
            "findings": [f.to_json() for f in self.findings],
            "quarantined": list(self.quarantined),
            "repaired": [o.to_json() for o in self.repaired],
            "failed": [o.to_json() for o in self.failed],
            "missing": list(self.missing),
            "orphaned": list(self.orphaned),
        }


def fsck_layout(
    layout: OCILayout,
    repair: Optional[RepairEngine] = None,
    ctx=None,
    telemetry=NULL_TELEMETRY,
    target: str = "<layout>",
) -> FsckReport:
    """Scan every blob of *layout*; with *repair*, restore what it can."""
    report = FsckReport(target=target)
    report.scanned = len(layout.blobs) + len(layout.blobs.quarantined())
    report.initial_findings = layout.blobs.verify_integrity()
    if repair is not None:
        for outcome in repair.repair_layout(layout, ctx=ctx):
            if outcome.detail == "already intact":
                continue
            (report.repaired if outcome.repaired else report.failed).append(outcome)
    report.findings = layout.blobs.verify_integrity()
    referenced = layout.referenced_digests()
    report.quarantined = [f.digest for f in layout.blobs.quarantined()]
    report.missing = sorted(
        d
        for d in referenced
        if d not in layout.blobs and layout.blobs.quarantined_blob(d) is None
    )
    report.orphaned = sorted(
        d for d in layout.blobs.digests() if d not in referenced
    )
    if telemetry.enabled:
        telemetry.metrics.counter("integrity_fsck_runs_total").inc()
        telemetry.event(
            "integrity.fsck",
            target=target,
            scanned=report.scanned,
            corrupt=len(report.initial_findings),
            repaired=len(report.repaired),
            clean=report.clean,
        )
    return report


def _scan_files(path: str) -> Tuple[List[IntegrityFinding], int]:
    """Check every file a save recorded in ``checksums.json``."""
    findings: List[IntegrityFinding] = []
    checksums = {}
    manifest_path = os.path.join(path, CHECKSUM_MANIFEST)
    if os.path.exists(manifest_path):
        try:
            with open(manifest_path, encoding="utf-8") as fh:
                checksums = dict(json.load(fh).get("files", {}))
        except (OSError, UnicodeDecodeError, json.JSONDecodeError) as exc:
            findings.append(
                IntegrityFinding(
                    digest=CHECKSUM_MANIFEST, kind=KIND_UNPARSEABLE, detail=str(exc)
                )
            )
    for rel in sorted(checksums):
        file_path = os.path.join(path, *rel.split("/"))
        if not os.path.exists(file_path):
            findings.append(
                IntegrityFinding(digest=rel, kind=KIND_MISSING, detail="file missing")
            )
            continue
        with open(file_path, "rb") as fh:
            actual = digest_bytes(fh.read())
        if actual != checksums[rel]:
            findings.append(
                IntegrityFinding(
                    digest=rel,
                    kind=KIND_CHECKSUM_MISMATCH,
                    detail=f"recorded {checksums[rel]}, content hashes to {actual}",
                )
            )
    return findings, len(checksums)


def fsck_directory(
    path: str,
    repair: Optional[RepairEngine] = None,
    ctx=None,
    telemetry=NULL_TELEMETRY,
) -> FsckReport:
    """Scan (and optionally repair + rewrite) a saved layout directory."""
    file_findings, files_checked = _scan_files(path)
    try:
        layout = OCILayout.load(path, verify=False)
    except (IntegrityError, OSError) as exc:
        # Not even loadable best-effort (e.g. unparseable index.json):
        # nothing to repair from, report and bail.
        report = FsckReport(target=path)
        report.scanned = files_checked
        if isinstance(exc, IntegrityError) and exc.finding is not None:
            file_findings.append(exc.finding)
        else:
            file_findings.append(
                IntegrityFinding(digest=path, kind=KIND_UNPARSEABLE, detail=str(exc))
            )
        report.initial_findings = list(file_findings)
        report.findings = list(file_findings)
        return report

    report = fsck_layout(
        layout, repair=repair, ctx=ctx, telemetry=telemetry, target=path
    )
    report.scanned += files_checked
    # Blob-file checksum mismatches are already covered as blob findings;
    # keep only the non-blob files (index.json, oci-layout, ...).
    meta_findings = [
        f for f in file_findings if not f.digest.startswith("blobs/")
    ]
    report.initial_findings = meta_findings + report.initial_findings

    dirty = bool(file_findings or report.repaired or not report.clean)
    if repair is not None and dirty and report.clean:
        # Everything repairable was repaired in memory; rewrite the
        # directory atomically (fresh checksums) and prove it loads back
        # verified before claiming success.
        layout.save(path)
        OCILayout.load(path, verify=True)
        for finding in meta_findings:
            report.repaired.append(
                RepairOutcome(digest=finding.digest, repaired=True, source="rewrite")
            )
    else:
        report.findings = meta_findings + report.findings
    return report


# ---------------------------------------------------------------------------
# federation mode: audit (and repair) replica divergence
# ---------------------------------------------------------------------------


@dataclass
class FederationFsckReport:
    """``coMtainer fsck --federation``: origin + per-replica integrity
    plus the cross-replica divergence audit."""

    origin: FsckReport
    replicas: Dict[str, FsckReport] = field(default_factory=dict)
    #: replica name -> human-readable divergences from the origin
    #: (missing/extra/divergent references, artifact caches, blobs).
    divergences: Dict[str, List[str]] = field(default_factory=dict)

    @property
    def clean(self) -> bool:
        return (
            self.origin.clean
            and all(r.clean for r in self.replicas.values())
            and not any(self.divergences.values())
        )

    @property
    def exit_code(self) -> int:
        return 0 if self.clean else 1

    def to_json(self) -> dict:
        return {
            "clean": self.clean,
            "origin": self.origin.to_json(),
            "replicas": {
                name: report.to_json()
                for name, report in sorted(self.replicas.items())
            },
            "divergences": {
                name: list(problems)
                for name, problems in sorted(self.divergences.items())
            },
        }


def fsck_federation(
    federation,
    repair: bool = False,
    ctx=None,
    telemetry=NULL_TELEMETRY,
) -> FederationFsckReport:
    """Audit a live :class:`~repro.federation.registry.FederatedRegistry`.

    Every member's blob store is scanned (:func:`fsck_layout` is
    duck-typed over ``.blobs`` + ``.referenced_digests()``, which
    registries share with layouts), then replica divergence from the
    origin is reported.  With ``repair=True`` each member self-heals
    from the *other* members: the origin from its mirrors (freshest
    first), each mirror from the origin.
    """
    origin_repair = federation.repair_engine(telemetry) if repair else None
    report = FederationFsckReport(
        origin=fsck_layout(
            federation.origin, repair=origin_repair, ctx=ctx,
            telemetry=telemetry, target="origin",
        )
    )
    for name in sorted(federation.mirrors):
        mirror = federation.mirrors[name]
        mirror_repair = None
        if repair:
            mirror_repair = RepairEngine(telemetry=telemetry)
            mirror_repair.add_registry(federation.origin, label="origin")
            for source in federation.repair_sources():
                if source.registry is not mirror.registry:
                    mirror_repair.sources.append(source)
        report.replicas[name] = fsck_layout(
            mirror.registry, repair=mirror_repair, ctx=ctx,
            telemetry=telemetry, target=f"mirror:{name}",
        )
    report.divergences = federation.audit()
    if telemetry.enabled:
        telemetry.event(
            "integrity.fsck_federation",
            replicas=len(report.replicas),
            divergent=sum(1 for p in report.divergences.values() if p),
            clean=report.clean,
        )
    return report


def _layout_divergences(origin, replica) -> List[str]:
    """Divergences of one saved replica layout from the origin layout
    (same shape as :meth:`FederatedRegistry.divergences`)."""
    problems: List[str] = []
    origin_map = origin.manifest_map()
    replica_map = replica.manifest_map()
    for ref in sorted(origin_map):
        theirs = replica_map.get(ref)
        if theirs is None:
            problems.append(f"missing reference {ref}")
        elif theirs != origin_map[ref]:
            problems.append(
                f"divergent reference {ref}: origin {origin_map[ref]},"
                f" replica {theirs}"
            )
    for ref in sorted(set(replica_map) - set(origin_map)):
        problems.append(f"extra reference {ref}")
    for digest in sorted(origin.referenced_digests()):
        ours = origin.blobs.try_get(digest)
        theirs = replica.blobs.try_get(digest)
        if ours is None:
            continue   # origin damage is its own fsck's finding
        if theirs is None:
            problems.append(f"missing blob {digest}")
        elif theirs.as_bytes() != ours.as_bytes():
            problems.append(f"divergent blob {digest}")
    return problems


def fsck_federation_directories(
    origin_path: str,
    replica_paths: List[str],
    repair: bool = False,
    ctx=None,
    telemetry=NULL_TELEMETRY,
) -> FederationFsckReport:
    """``coMtainer fsck <origin> --federation --source <replica>...`` on
    saved layout directories.

    Each directory is scanned like :func:`fsck_directory`; with repair,
    every member heals from the others (the origin from replicas in the
    given order, each replica from the origin first) and repaired
    directories are atomically rewritten and re-verified.  Divergence is
    then reported against the origin's post-repair state.
    """

    def best_effort_load(path: str):
        try:
            return OCILayout.load(path, verify=False)
        except (IntegrityError, OSError):
            return None

    replica_layouts = {path: best_effort_load(path) for path in replica_paths}

    origin_repair = None
    if repair:
        origin_repair = RepairEngine(telemetry=telemetry)
        for path, layout in replica_layouts.items():
            if layout is not None:
                origin_repair.add_layout(layout, label=f"replica:{path}")
    report = FederationFsckReport(
        origin=fsck_directory(
            origin_path, repair=origin_repair, ctx=ctx, telemetry=telemetry
        )
    )
    origin_layout = best_effort_load(origin_path)

    for path in replica_paths:
        replica_repair = None
        if repair:
            replica_repair = RepairEngine(telemetry=telemetry)
            if origin_layout is not None:
                replica_repair.add_layout(origin_layout, label="origin")
            for other, layout in replica_layouts.items():
                if other != path and layout is not None:
                    replica_repair.sources.append(
                        LayoutSource(layout, label=f"replica:{other}")
                    )
        report.replicas[path] = fsck_directory(
            path, repair=replica_repair, ctx=ctx, telemetry=telemetry
        )
        # Divergence against the (possibly just repaired) on-disk state.
        replica_layout = best_effort_load(path)
        if origin_layout is None:
            report.divergences[path] = ["origin layout unreadable"]
        elif replica_layout is None:
            report.divergences[path] = ["replica layout unreadable"]
        else:
            report.divergences[path] = _layout_divergences(
                origin_layout, replica_layout
            )
    return report


__all__ = [
    "FederationFsckReport",
    "FsckReport",
    "fsck_directory",
    "fsck_federation",
    "fsck_federation_directories",
    "fsck_layout",
]
