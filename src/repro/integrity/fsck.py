"""``coMtainer fsck``: scan (and optionally repair) persisted image state.

Works on a live :class:`OCILayout` (:func:`fsck_layout`) or a saved
layout directory (:func:`fsck_directory`).  A scan never mutates
anything; with ``repair`` supplied, corrupt blobs are quarantined and
restored through the :class:`repro.integrity.repair.RepairEngine`, and a
repaired directory is atomically rewritten (fresh checksum manifest) and
re-verified before fsck reports success.

Exit codes (surfaced by the CLI): ``0`` — every object verified (possibly
after repair); ``1`` — unrepaired corruption, missing referenced blobs,
or failed repairs remain.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.integrity import (
    KIND_CHECKSUM_MISMATCH,
    KIND_MISSING,
    KIND_UNPARSEABLE,
    IntegrityError,
    IntegrityFinding,
)
from repro.integrity.repair import RepairEngine, RepairOutcome
from repro.oci.digest import digest_bytes
from repro.oci.layout import CHECKSUM_MANIFEST, OCILayout
from repro.telemetry import NULL_TELEMETRY


@dataclass
class FsckReport:
    """Result of one fsck pass; all lists describe the *final* state."""

    target: str
    scanned: int = 0
    #: Problems found before any repair ran (for reporting).
    initial_findings: List[IntegrityFinding] = field(default_factory=list)
    #: Problems still present after the pass.
    findings: List[IntegrityFinding] = field(default_factory=list)
    quarantined: List[str] = field(default_factory=list)
    repaired: List[RepairOutcome] = field(default_factory=list)
    failed: List[RepairOutcome] = field(default_factory=list)
    missing: List[str] = field(default_factory=list)
    orphaned: List[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not (self.findings or self.missing or self.failed)

    @property
    def exit_code(self) -> int:
        return 0 if self.clean else 1

    def to_json(self) -> dict:
        return {
            "target": self.target,
            "scanned": self.scanned,
            "clean": self.clean,
            "initial_findings": [f.to_json() for f in self.initial_findings],
            "findings": [f.to_json() for f in self.findings],
            "quarantined": list(self.quarantined),
            "repaired": [o.to_json() for o in self.repaired],
            "failed": [o.to_json() for o in self.failed],
            "missing": list(self.missing),
            "orphaned": list(self.orphaned),
        }


def fsck_layout(
    layout: OCILayout,
    repair: Optional[RepairEngine] = None,
    ctx=None,
    telemetry=NULL_TELEMETRY,
    target: str = "<layout>",
) -> FsckReport:
    """Scan every blob of *layout*; with *repair*, restore what it can."""
    report = FsckReport(target=target)
    report.scanned = len(layout.blobs) + len(layout.blobs.quarantined())
    report.initial_findings = layout.blobs.verify_integrity()
    if repair is not None:
        for outcome in repair.repair_layout(layout, ctx=ctx):
            if outcome.detail == "already intact":
                continue
            (report.repaired if outcome.repaired else report.failed).append(outcome)
    report.findings = layout.blobs.verify_integrity()
    referenced = layout.referenced_digests()
    report.quarantined = [f.digest for f in layout.blobs.quarantined()]
    report.missing = sorted(
        d
        for d in referenced
        if d not in layout.blobs and layout.blobs.quarantined_blob(d) is None
    )
    report.orphaned = sorted(
        d for d in layout.blobs.digests() if d not in referenced
    )
    if telemetry.enabled:
        telemetry.metrics.counter("integrity_fsck_runs_total").inc()
        telemetry.event(
            "integrity.fsck",
            target=target,
            scanned=report.scanned,
            corrupt=len(report.initial_findings),
            repaired=len(report.repaired),
            clean=report.clean,
        )
    return report


def _scan_files(path: str) -> Tuple[List[IntegrityFinding], int]:
    """Check every file a save recorded in ``checksums.json``."""
    findings: List[IntegrityFinding] = []
    checksums = {}
    manifest_path = os.path.join(path, CHECKSUM_MANIFEST)
    if os.path.exists(manifest_path):
        try:
            with open(manifest_path, encoding="utf-8") as fh:
                checksums = dict(json.load(fh).get("files", {}))
        except (OSError, UnicodeDecodeError, json.JSONDecodeError) as exc:
            findings.append(
                IntegrityFinding(
                    digest=CHECKSUM_MANIFEST, kind=KIND_UNPARSEABLE, detail=str(exc)
                )
            )
    for rel in sorted(checksums):
        file_path = os.path.join(path, *rel.split("/"))
        if not os.path.exists(file_path):
            findings.append(
                IntegrityFinding(digest=rel, kind=KIND_MISSING, detail="file missing")
            )
            continue
        with open(file_path, "rb") as fh:
            actual = digest_bytes(fh.read())
        if actual != checksums[rel]:
            findings.append(
                IntegrityFinding(
                    digest=rel,
                    kind=KIND_CHECKSUM_MISMATCH,
                    detail=f"recorded {checksums[rel]}, content hashes to {actual}",
                )
            )
    return findings, len(checksums)


def fsck_directory(
    path: str,
    repair: Optional[RepairEngine] = None,
    ctx=None,
    telemetry=NULL_TELEMETRY,
) -> FsckReport:
    """Scan (and optionally repair + rewrite) a saved layout directory."""
    file_findings, files_checked = _scan_files(path)
    try:
        layout = OCILayout.load(path, verify=False)
    except (IntegrityError, OSError) as exc:
        # Not even loadable best-effort (e.g. unparseable index.json):
        # nothing to repair from, report and bail.
        report = FsckReport(target=path)
        report.scanned = files_checked
        if isinstance(exc, IntegrityError) and exc.finding is not None:
            file_findings.append(exc.finding)
        else:
            file_findings.append(
                IntegrityFinding(digest=path, kind=KIND_UNPARSEABLE, detail=str(exc))
            )
        report.initial_findings = list(file_findings)
        report.findings = list(file_findings)
        return report

    report = fsck_layout(
        layout, repair=repair, ctx=ctx, telemetry=telemetry, target=path
    )
    report.scanned += files_checked
    # Blob-file checksum mismatches are already covered as blob findings;
    # keep only the non-blob files (index.json, oci-layout, ...).
    meta_findings = [
        f for f in file_findings if not f.digest.startswith("blobs/")
    ]
    report.initial_findings = meta_findings + report.initial_findings

    dirty = bool(file_findings or report.repaired or not report.clean)
    if repair is not None and dirty and report.clean:
        # Everything repairable was repaired in memory; rewrite the
        # directory atomically (fresh checksums) and prove it loads back
        # verified before claiming success.
        layout.save(path)
        OCILayout.load(path, verify=True)
        for finding in meta_findings:
            report.repaired.append(
                RepairOutcome(digest=finding.digest, repaired=True, source="rewrite")
            )
    else:
        report.findings = meta_findings + report.findings
    return report


__all__ = ["FsckReport", "fsck_directory", "fsck_layout"]
