"""Time-series sampling of the metrics registry on simulated time.

A :class:`TimeSeriesSampler` turns the point-in-time metrics registry
into bounded ring-buffer *series*: every ``cadence`` simulated seconds
it snapshots a fixed set of :class:`SeriesSpec` readings — direct
instrument scalars plus derived rates (fleet utilization, cache hit
ratio, mirror staleness, retry-exhaustion ratio).

The sampler owns no clock of its own.  Hook sites that *advance*
simulated time — the worker fleet's heartbeat/lease timeline, the sync
engine's per-chunk transfer charge, the wavefront scheduler — feed it
relative increments via :meth:`TimeSeriesSampler.advance`; the fleet and
the sync engine each run their own :class:`SimulatedClock`, so only
relative progress is coherent across them.  Samples carry the sampler's
accumulated timeline, strictly increasing and deterministic for a given
run (no wall time anywhere, same rule as the rest of the telemetry
substrate).

A reading can be ``None`` — the instrument does not exist yet, or a
ratio's denominator is zero.  ``None`` means *no data*, not zero: the
rules engine skips such samples instead of alerting on a cold start.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.telemetry.metrics import Histogram

#: Default sampling cadence (simulated seconds between samples).
DEFAULT_CADENCE = 5.0

#: Default per-series ring capacity (samples retained).
DEFAULT_CAPACITY = 512

#: Ceiling on samples emitted by a single ``advance`` call: one huge
#: time jump (a long retry-backoff budget, a giant transfer) must not
#: emit thousands of identical samples.  Skipped ticks are counted.
MAX_CATCHUP = 128


@dataclass(frozen=True)
class Sample:
    """One reading: sampler-timeline seconds and the value (or None)."""

    t: float
    value: Optional[float]


class Series:
    """A bounded ring of :class:`Sample` readings for one series name.

    Internally two parallel deques (timestamps, values): an append on
    the sampling hot path is two deque pushes, and :class:`Sample`
    objects only materialise when a reader asks for them.
    """

    __slots__ = ("name", "capacity", "_t", "_v", "_nonnull")

    def __init__(self, name: str, capacity: int = DEFAULT_CAPACITY) -> None:
        self.name = name
        self.capacity = max(1, int(capacity))
        self._t: deque = deque(maxlen=self.capacity)
        self._v: deque = deque(maxlen=self.capacity)
        # Live count of non-None readings: an instrument that never
        # springs into existence keeps its series all-None, and the
        # burn-rate walk must not rescan a full ring of gaps per sample.
        self._nonnull = 0

    def append(self, t: float, value: Optional[float]) -> None:
        values = self._v
        if len(values) == self.capacity and values[0] is not None:
            self._nonnull -= 1
        self._t.append(t)
        values.append(value)
        if value is not None:
            self._nonnull += 1

    def latest(self) -> Optional[Sample]:
        if not self._t:
            return None
        return Sample(t=self._t[-1], value=self._v[-1])

    def latest_value(self) -> Optional[float]:
        """Newest reading; ``None`` for both *empty* and *no data*."""
        return self._v[-1] if self._v else None

    def values(self) -> List[Optional[float]]:
        return list(self._v)

    def nonnull_tail_values(self, count: int) -> List[float]:
        """Last *count* non-None values, oldest first (fewer if scarce).

        A backwards walk: burn-rate rules only ever need the newest
        ``window + 1`` readings, so this stays O(window) no matter how
        full the ring is.
        """
        if not self._nonnull:
            return []
        want = min(count, self._nonnull)
        out: List[float] = []
        for v in reversed(self._v):
            if v is not None:
                out.append(v)
                if len(out) == want:
                    break
        out.reverse()
        return out

    def tail(self, n: int) -> List[Sample]:
        if n <= 0:
            return []
        return [Sample(t=t, value=v)
                for t, v in zip(list(self._t)[-n:], list(self._v)[-n:])]

    def __len__(self) -> int:
        return len(self._t)

    def __iter__(self) -> Iterator[Sample]:
        return (Sample(t=t, value=v) for t, v in zip(self._t, self._v))


def _ratio(numerator: float, denominator: float) -> Optional[float]:
    if denominator <= 0:
        return None
    return numerator / denominator


def _instrument_value(metrics, name: str) -> Optional[float]:
    """Scalar of an instrument, ``None`` when it was never created."""
    instrument = metrics.get(name)
    if instrument is None:
        return None
    if isinstance(instrument, Histogram):
        return instrument.sum
    return instrument.value


def _fleet_utilization(metrics) -> Optional[float]:
    # Per-wave utilization when the fleet has reported one; the
    # schedule-level figure otherwise (set once per rebuild).
    value = _instrument_value(metrics, "fleet_wave_utilization")
    if value is not None:
        return value
    return _instrument_value(metrics, "rebuild_worker_utilization")


def _cache_hit_ratio(metrics) -> Optional[float]:
    hits = metrics.value("rebuild_artifact_cache_hits_total")
    misses = metrics.value("rebuild_artifact_cache_misses_total")
    return _ratio(hits, hits + misses)


def _mirror_staleness(metrics) -> Optional[float]:
    return _instrument_value(metrics, "federation_max_generations_behind")


def _retry_exhaustion_ratio(metrics) -> Optional[float]:
    retries = metrics.value("resilience_retries_total")
    exhausted = metrics.value("resilience_retries_exhausted_total")
    return _ratio(exhausted, retries)


@dataclass(frozen=True)
class SeriesSpec:
    """What one series samples: a raw instrument or a derived reading."""

    name: str
    metric: Optional[str] = None
    derive: Optional[Callable] = None
    description: str = ""

    def read(self, metrics) -> Optional[float]:
        return self.reader()(metrics)

    def reader(self) -> Callable:
        """The reading as a single callable of the metrics registry."""
        if self.derive is not None:
            return self.derive
        if self.metric is None:
            return lambda metrics: None
        name = self.metric
        return lambda metrics: _instrument_value(metrics, name)


#: The built-in series: the derived rates the SLO rules need, plus the
#: raw counters/gauges their burn-rate forms difference over.
DEFAULT_SERIES: Tuple[SeriesSpec, ...] = (
    SeriesSpec("fleet_utilization", derive=_fleet_utilization,
               description="busy seconds / (makespan * workers), per wave"),
    SeriesSpec("cache_hit_ratio", derive=_cache_hit_ratio,
               description="artifact-cache hits / lookups"),
    SeriesSpec("mirror_generations_behind", derive=_mirror_staleness,
               description="max origin generations any mirror lags"),
    SeriesSpec("retry_exhaustion_ratio", derive=_retry_exhaustion_ratio,
               description="exhausted retry budgets / retries"),
    SeriesSpec("fleet_workers_alive", metric="fleet_workers_alive"),
    SeriesSpec("fleet_blacklisted_workers", metric="fleet_blacklisted_workers"),
    SeriesSpec("fleet_worker_crashes_total", metric="fleet_worker_crashes_total"),
    SeriesSpec("resilience_retries_exhausted_total",
               metric="resilience_retries_exhausted_total"),
    SeriesSpec("rebuild_nodes_failed_total", metric="rebuild_nodes_failed_total"),
    SeriesSpec("federation_sync_failures_total",
               metric="federation_sync_failures_total"),
    SeriesSpec("rebuild_schedule_wavefronts",
               metric="rebuild_schedule_wavefronts"),
    # Adaptation-service tier (absent — all-None — outside `serve` runs).
    SeriesSpec("service_queue_depth", metric="service_queue_depth"),
    SeriesSpec("service_queue_occupancy", metric="service_queue_occupancy",
               description="admission queue depth / capacity"),
    SeriesSpec("service_workers_in_use", metric="service_workers_in_use"),
    SeriesSpec("service_breakers_open", metric="service_breakers_open",
               description="circuit breakers currently open"),
    SeriesSpec("service_requests_rejected_total",
               metric="service_requests_rejected_total"),
    SeriesSpec("service_requests_deadline_total",
               metric="service_requests_deadline_total"),
    SeriesSpec("service_dedup_ratio", metric="service_dedup_ratio",
               description="rebuild node-work served from the shared cache"),
    # Durability tier (absent outside durable serve / federation runs).
    SeriesSpec("service_wal_records_total",
               metric="service_wal_records_total"),
    SeriesSpec("service_wal_open_requests",
               metric="service_wal_open_requests",
               description="admitted requests without a terminal WAL "
                           "record yet (restart exposure)"),
    SeriesSpec("service_recoveries_total",
               metric="service_recoveries_total"),
    SeriesSpec("federation_failovers_total",
               metric="federation_failovers_total"),
    SeriesSpec("federation_fenced_writes_rejected_total",
               metric="federation_fenced_writes_rejected_total"),
)


class TimeSeriesSampler:
    """Cadence-driven snapshots of the registry into bounded series."""

    def __init__(
        self,
        telemetry,
        cadence: float = DEFAULT_CADENCE,
        capacity: int = DEFAULT_CAPACITY,
        specs: Sequence[SeriesSpec] = DEFAULT_SERIES,
        max_catchup: int = MAX_CATCHUP,
    ) -> None:
        if cadence <= 0:
            raise ValueError(f"sampler cadence must be positive, got {cadence}")
        self.telemetry = telemetry
        self.cadence = float(cadence)
        self.specs: Tuple[SeriesSpec, ...] = tuple(specs)
        self.series: Dict[str, Series] = {
            spec.name: Series(spec.name, capacity=capacity)
            for spec in self.specs
        }
        self.max_catchup = max(1, int(max_catchup))
        # (series, reader) pairs prebound for the sampling hot path.
        self._sampled = [(self.series[spec.name], spec.reader())
                         for spec in self.specs]
        #: Accumulated sampler timeline (simulated seconds of progress
        #: reported by the hook sites, NOT any one substrate clock).
        self.now = 0.0
        self._next_due = self.cadence
        self.samples_taken = 0
        self.samples_skipped = 0
        #: Called after each sample: ``listener(sampler, t)``.  The rules
        #: engine registers itself here.
        self.listeners: List[Callable] = []

    def advance(self, seconds: float) -> int:
        """Report *seconds* of simulated progress; returns samples taken."""
        if seconds <= 0:
            return 0
        self.now += seconds
        return self._emit_due()

    def poll(self) -> int:
        """Emit any overdue samples without advancing the timeline."""
        return self._emit_due()

    def force_sample(self) -> None:
        """Take one sample at the current timeline unconditionally.

        Used by :meth:`ControlPlane.finalize`: a fully-cached adaptation
        can advance (almost) zero simulated time, and the rules must
        still evaluate at least once per run.
        """
        self._sample_at(self.now)

    # ------------------------------------------------------------------

    def _emit_due(self) -> int:
        emitted = 0
        while self._next_due <= self.now and emitted < self.max_catchup:
            self._sample_at(self._next_due)
            self._next_due += self.cadence
            emitted += 1
        if self._next_due <= self.now:
            # One jump crossed more cadence boundaries than the catch-up
            # budget: count the skipped ticks and realign to the future.
            skipped = int((self.now - self._next_due) // self.cadence) + 1
            self.samples_skipped += skipped
            self._next_due += skipped * self.cadence
        return emitted

    def _sample_at(self, t: float) -> None:
        metrics = self.telemetry.metrics
        for series, read in self._sampled:
            series.append(t, read(metrics))
        self.samples_taken += 1
        for listener in self.listeners:
            listener(self, t)


__all__ = [
    "DEFAULT_CADENCE",
    "DEFAULT_CAPACITY",
    "DEFAULT_SERIES",
    "MAX_CATCHUP",
    "Sample",
    "Series",
    "SeriesSpec",
    "TimeSeriesSampler",
]
