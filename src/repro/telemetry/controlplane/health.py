"""Health scoring: alerts + fsck/federation audits -> component statuses.

The scorer folds three evidence sources into per-component statuses:

* **SLO alerts** (the rules engine): a firing ``warning`` degrades its
  component, a firing ``critical`` makes it critical; ``info`` alerts
  and resolved alerts annotate without escalating.
* **fsck findings**: an unclean :class:`FsckReport` makes the engine
  critical; an unclean federation fsck maps origin findings to the
  engine and replica findings/divergences to their mirrors.
* **federation state**: each mirror is its own component
  (``mirror:<name>``); lagging more than
  :data:`STALENESS_DEGRADED` generations degrades it, and (with
  ``audit=True``) a divergence audit failure makes it critical.

Components: ``engine``, ``fleet``, ``cache``, ``federation``, plus one
``mirror:<name>`` per mirror.  Statuses rank
``healthy < unknown < degraded < critical``; the overall status is the
worst *known* component (all-unknown stays unknown).  Exit-code policy
matches fsck: healthy/unknown -> 0, degraded/critical -> 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.telemetry.controlplane.rules import (
    SEVERITY_CRITICAL,
    SEVERITY_WARNING,
)

STATUS_HEALTHY = "healthy"
STATUS_UNKNOWN = "unknown"
STATUS_DEGRADED = "degraded"
STATUS_CRITICAL = "critical"

_RANK = {
    STATUS_HEALTHY: 0,
    STATUS_UNKNOWN: 1,
    STATUS_DEGRADED: 2,
    STATUS_CRITICAL: 3,
}

COMPONENT_ENGINE = "engine"
COMPONENT_FLEET = "fleet"
COMPONENT_CACHE = "cache"
COMPONENT_FEDERATION = "federation"
COMPONENT_SERVICE_WAL = "service-wal"

#: Mirrors lagging more than this many origin generations degrade.
STALENESS_DEGRADED = 2

#: Open (non-terminal) requests in the WAL beyond this degrade the
#: service-wal component: a crash now would replay a deep backlog.
WAL_LAG_DEGRADED = 8


@dataclass
class ComponentHealth:
    """One component's folded status and the evidence behind it."""

    name: str
    status: str = STATUS_HEALTHY
    reasons: List[str] = field(default_factory=list)

    def escalate(self, status: str, reason: str) -> None:
        if _RANK[status] > _RANK[self.status]:
            self.status = status
        if reason:
            self.reasons.append(reason)

    def note(self, reason: str) -> None:
        self.reasons.append(reason)

    def to_json(self) -> dict:
        return {
            "name": self.name,
            "status": self.status,
            "reasons": list(self.reasons),
        }


@dataclass
class HealthReport:
    """Per-component statuses plus the fold-up."""

    components: List[ComponentHealth] = field(default_factory=list)
    samples_taken: int = 0
    rules_evaluated: int = 0

    @property
    def overall(self) -> str:
        known = [c.status for c in self.components if c.status != STATUS_UNKNOWN]
        if not known:
            return STATUS_UNKNOWN
        return max(known, key=lambda s: _RANK[s])

    @property
    def healthy(self) -> bool:
        return _RANK[self.overall] <= _RANK[STATUS_UNKNOWN]

    @property
    def exit_code(self) -> int:
        return 0 if self.healthy else 1

    def component(self, name: str) -> Optional[ComponentHealth]:
        for comp in self.components:
            if comp.name == name:
                return comp
        return None

    def status_rows(self) -> List[Tuple[str, str, str]]:
        """(component, status, evidence) rows for ``render_table``."""
        rows = [
            (c.name, c.status, "; ".join(c.reasons) if c.reasons else "-")
            for c in self.components
        ]
        rows.append(("overall", self.overall,
                     f"{self.samples_taken} samples, "
                     f"{self.rules_evaluated} rule evaluations"))
        return rows

    def to_json(self) -> dict:
        return {
            "overall": self.overall,
            "components": [c.to_json() for c in self.components],
            "samples_taken": self.samples_taken,
            "rules_evaluated": self.rules_evaluated,
        }


def _severity_status(severity: str) -> str:
    if severity == SEVERITY_CRITICAL:
        return STATUS_CRITICAL
    if severity == SEVERITY_WARNING:
        return STATUS_DEGRADED
    return STATUS_HEALTHY   # info: annotate, never escalate


def _apply_fsck(comp: ComponentHealth, report) -> None:
    if report.clean:
        if report.repaired:
            comp.note(f"fsck: {len(report.repaired)} blob(s) repaired")
        return
    problems = []
    if report.findings:
        problems.append(f"{len(report.findings)} corrupt")
    if report.missing:
        problems.append(f"{len(report.missing)} missing")
    if report.failed:
        problems.append(f"{len(report.failed)} repair failure(s)")
    comp.escalate(STATUS_CRITICAL, "fsck: " + ", ".join(problems))


def score_health(
    controlplane=None,
    fsck=None,
    federation=None,
    audit: bool = False,
    failures: Optional[Dict[str, str]] = None,
    wal=None,
) -> HealthReport:
    """Fold alerts + fsck + federation state into a :class:`HealthReport`.

    *fsck* may be an :class:`~repro.integrity.fsck.FsckReport` or a
    :class:`~repro.integrity.fsck.FederationFsckReport`.  *federation*
    is a :class:`~repro.federation.registry.FederatedRegistry`; with
    ``audit=True`` its (more expensive) divergence audit also runs —
    stale-fence write rejections and completed failovers it carries are
    scored into the federation component either way.  *failures* maps
    component names to hard-failure evidence the caller observed out of
    band (an exhausted fleet, a crashed adaptation); each makes its
    component critical.  *wal* is a
    :class:`~repro.service.wal.ServiceWAL` (or its :meth:`stats` dict):
    torn records and a deep open-request backlog degrade the
    ``service-wal`` component.
    """
    components: Dict[str, ComponentHealth] = {
        name: ComponentHealth(name=name)
        for name in (COMPONENT_ENGINE, COMPONENT_FLEET, COMPONENT_CACHE,
                     COMPONENT_FEDERATION)
    }

    def component(name: str) -> ComponentHealth:
        if name not in components:
            components[name] = ComponentHealth(name=name)
        return components[name]

    report = HealthReport()
    if controlplane is None or controlplane.sampler.samples_taken == 0:
        for comp in components.values():
            comp.status = STATUS_UNKNOWN
            comp.note("no samples taken")
    else:
        report.samples_taken = controlplane.sampler.samples_taken
        report.rules_evaluated = (
            controlplane.rules.evaluations * len(controlplane.rules.rules)
        )
        for alert in controlplane.rules.history:
            comp = component(alert.component)
            if alert.firing:
                comp.escalate(
                    _severity_status(alert.severity),
                    f"alert {alert.rule}: {alert.expression}",
                )
            else:
                comp.note(f"recovered: {alert.rule}")

    for name, reason in sorted((failures or {}).items()):
        component(name).escalate(STATUS_CRITICAL, reason)

    if fsck is not None:
        if hasattr(fsck, "replicas"):   # FederationFsckReport
            _apply_fsck(component(COMPONENT_ENGINE), fsck.origin)
            for name in sorted(fsck.replicas):
                _apply_fsck(component(f"mirror:{name}"), fsck.replicas[name])
            for name, problems in sorted(fsck.divergences.items()):
                if problems:
                    component(f"mirror:{name}").escalate(
                        STATUS_CRITICAL,
                        f"divergent from origin ({len(problems)} problem(s))",
                    )
                    component(COMPONENT_FEDERATION).escalate(
                        STATUS_DEGRADED, f"mirror {name} divergent"
                    )
        else:
            _apply_fsck(component(COMPONENT_ENGINE), fsck)

    if wal is not None:
        stats = wal.stats() if hasattr(wal, "stats") else dict(wal)
        comp = component(COMPONENT_SERVICE_WAL)
        if comp.status == STATUS_UNKNOWN:
            comp.status = STATUS_HEALTHY
        comp.note(
            f"{stats.get('records', 0)} records, "
            f"{stats.get('restarts', 0)} restart(s) survived"
        )
        open_requests = stats.get("open_requests", 0)
        if open_requests > WAL_LAG_DEGRADED:
            comp.escalate(
                STATUS_DEGRADED,
                f"{open_requests} admitted request(s) without terminal "
                f"records (deep replay on crash)",
            )
        torn = stats.get("torn_records_dropped", 0)
        if torn:
            comp.escalate(
                STATUS_DEGRADED, f"{torn} torn record(s) dropped by salvage"
            )

    if federation is not None:
        fenced = getattr(federation, "fenced_rejections", 0)
        if fenced:
            component(COMPONENT_FEDERATION).escalate(
                STATUS_CRITICAL,
                f"{fenced} stale-fence write(s) rejected "
                f"(demoted origin still writing)",
            )
        failovers = getattr(federation, "failovers", 0)
        if failovers:
            component(COMPONENT_FEDERATION).escalate(
                STATUS_DEGRADED,
                f"{failovers} origin failover(s) "
                f"(fence epoch {getattr(federation, 'fence_token', 0)})",
            )
        if getattr(federation, "origin_offline", False):
            component(COMPONENT_FEDERATION).escalate(
                STATUS_CRITICAL, "origin offline with no promoted successor"
            )
        problems = federation.audit() if audit else {}
        for name in sorted(federation.mirrors):
            mirror = federation.mirrors[name]
            comp = component(f"mirror:{name}")
            if comp.status == STATUS_UNKNOWN:
                comp.status = STATUS_HEALTHY
            behind = federation.generations_behind(mirror)
            if behind > STALENESS_DEGRADED:
                comp.escalate(
                    STATUS_DEGRADED, f"{behind} generations behind origin"
                )
                component(COMPONENT_FEDERATION).escalate(
                    STATUS_DEGRADED, f"mirror {name} stale"
                )
            divergent = problems.get(name) or []
            if divergent:
                comp.escalate(
                    STATUS_CRITICAL,
                    f"audit: {len(divergent)} divergence(s)",
                )
                component(COMPONENT_FEDERATION).escalate(
                    STATUS_DEGRADED, f"mirror {name} divergent"
                )

    # Stable order: the four fixed components, then mirrors by name.
    fixed = [COMPONENT_ENGINE, COMPONENT_FLEET, COMPONENT_CACHE,
             COMPONENT_FEDERATION]
    ordered = [components[name] for name in fixed]
    ordered.extend(
        components[name] for name in sorted(components)
        if name not in fixed
    )
    report.components = ordered
    return report


__all__ = [
    "COMPONENT_CACHE",
    "COMPONENT_ENGINE",
    "COMPONENT_FEDERATION",
    "COMPONENT_FLEET",
    "COMPONENT_SERVICE_WAL",
    "STALENESS_DEGRADED",
    "WAL_LAG_DEGRADED",
    "STATUS_CRITICAL",
    "STATUS_DEGRADED",
    "STATUS_HEALTHY",
    "STATUS_UNKNOWN",
    "ComponentHealth",
    "HealthReport",
    "score_health",
]
