"""Declarative SLO rules over sampled series, with alert lifecycle.

Rule syntax (parsed by :meth:`SloRule.parse`)::

    <series> <op> <threshold> [for <N> samples]
    rate(<series>) <op> <threshold> [over <W> samples] [for <N> samples]

The threshold form compares the latest sample of a series; the
burn-rate form compares the per-sample increase over a window of ``W``
samples (so a cumulative counter alert *resolves* once the counter
stops moving — a plain threshold on a counter could never un-fire).
``for N samples`` requires ``N`` consecutive breaching samples before
the alert fires (streak evaluation), damping one-sample blips.

Samples whose value is ``None`` (instrument absent, denominator zero)
are *skipped*: they neither extend nor reset a streak, so a cold start
never alerts and a gap in data never resolves a real problem.

Alerts are typed (:class:`Alert`) and carry a firing/resolved
lifecycle.  Each transition emits a telemetry event (``alert.firing`` /
``alert.resolved``) and bumps the ``controlplane_alerts_*`` counters;
:meth:`RulesEngine.alerts_text` renders the current state in the
Prometheus exposition style so it can ride alongside
:func:`repro.telemetry.export.prometheus_text`.
"""

from __future__ import annotations

import operator
import re
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

SEVERITY_INFO = "info"
SEVERITY_WARNING = "warning"
SEVERITY_CRITICAL = "critical"

KIND_THRESHOLD = "threshold"
KIND_BURN_RATE = "burn_rate"

STATE_FIRING = "firing"
STATE_RESOLVED = "resolved"

_OPS: Dict[str, Callable[[float, float], bool]] = {
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
    "==": operator.eq,
    "!=": operator.ne,
}

_RULE_RE = re.compile(
    r"^\s*(?:(?P<rate>rate)\(\s*(?P<rseries>\w+)\s*\)|(?P<series>\w+))"
    r"\s*(?P<op><=|>=|==|!=|<|>)\s*(?P<threshold>-?\d+(?:\.\d+)?)"
    r"(?:\s+over\s+(?P<window>\d+)\s+samples?)?"
    r"(?:\s+for\s+(?P<streak>\d+)\s+samples?)?\s*$"
)


class RuleError(Exception):
    pass


@dataclass(frozen=True)
class SloRule:
    """One declarative rule: expression + component + severity."""

    name: str
    series: str
    op: str
    threshold: float
    kind: str = KIND_THRESHOLD
    for_samples: int = 1
    window: int = 1
    component: str = "engine"
    severity: str = SEVERITY_WARNING
    description: str = ""

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise RuleError(f"rule {self.name!r}: unknown operator {self.op!r}")
        if self.kind not in (KIND_THRESHOLD, KIND_BURN_RATE):
            raise RuleError(f"rule {self.name!r}: unknown kind {self.kind!r}")
        if self.for_samples < 1:
            raise RuleError(f"rule {self.name!r}: for_samples must be >= 1")
        if self.window < 1:
            raise RuleError(f"rule {self.name!r}: window must be >= 1")

    @classmethod
    def parse(
        cls,
        name: str,
        text: str,
        component: str = "engine",
        severity: str = SEVERITY_WARNING,
        description: str = "",
    ) -> "SloRule":
        match = _RULE_RE.match(text)
        if match is None:
            raise RuleError(f"rule {name!r}: cannot parse {text!r}")
        is_rate = match.group("rate") is not None
        return cls(
            name=name,
            series=match.group("rseries") if is_rate else match.group("series"),
            op=match.group("op"),
            threshold=float(match.group("threshold")),
            kind=KIND_BURN_RATE if is_rate else KIND_THRESHOLD,
            window=int(match.group("window") or 1),
            for_samples=int(match.group("streak") or 1),
            component=component,
            severity=severity,
            description=description,
        )

    def render(self) -> str:
        """The rule back in its canonical declarative syntax."""
        num = (
            str(int(self.threshold))
            if float(self.threshold).is_integer()
            else repr(self.threshold)
        )
        if self.kind == KIND_BURN_RATE:
            text = f"rate({self.series}) {self.op} {num}"
            if self.window != 1:
                text += f" over {self.window} samples"
        else:
            text = f"{self.series} {self.op} {num}"
        if self.for_samples != 1:
            text += f" for {self.for_samples} samples"
        return text

    def evaluate(self, series) -> Tuple[Optional[bool], Optional[float]]:
        """(breaching?, evaluated value) against one series.

        ``(None, None)`` means no data: the latest sample is None (or,
        for burn rates, no non-None sample exists yet).
        """
        if self.kind == KIND_THRESHOLD:
            value = series.latest_value()
            if value is None:
                return None, None
            return _OPS[self.op](value, self.threshold), value
        values = series.nonnull_tail_values(self.window + 1)
        if not values:
            return None, None
        latest = values[-1]
        # Counters spring into existence mid-run: with fewer than
        # window+1 readings the baseline is 0, so the very first reading
        # of a non-zero counter still registers as an increase.
        baseline = values[-1 - self.window] if len(values) > self.window else 0.0
        rate = (latest - baseline) / self.window
        return _OPS[self.op](rate, self.threshold), rate


#: The built-in rule set `coMtainer health` scores components with.
DEFAULT_RULES: Tuple[SloRule, ...] = (
    SloRule.parse(
        "fleet-utilization-low", "fleet_utilization < 0.5 for 3 samples",
        component="fleet", severity=SEVERITY_WARNING,
        description="rebuild workers mostly idle (crash/straggler drag)",
    ),
    SloRule.parse(
        "fleet-worker-crashes", "rate(fleet_worker_crashes_total) > 0 over 2 samples",
        component="fleet", severity=SEVERITY_WARNING,
        description="rebuild workers are dying",
    ),
    SloRule.parse(
        "fleet-workers-blacklisted", "fleet_blacklisted_workers > 0",
        component="fleet", severity=SEVERITY_CRITICAL,
        description="flaky workers were removed from rotation",
    ),
    SloRule.parse(
        "mirror-staleness", "mirror_generations_behind > 2",
        component="federation", severity=SEVERITY_WARNING,
        description="a mirror lags the origin by >2 generations",
    ),
    SloRule.parse(
        "cache-hit-ratio-low", "cache_hit_ratio < 0.2 for 3 samples",
        component="cache", severity=SEVERITY_INFO,
        description="the artifact cache is not absorbing recompiles",
    ),
    SloRule.parse(
        "retry-exhaustion", "rate(resilience_retries_exhausted_total) > 0 over 2 samples",
        component="engine", severity=SEVERITY_CRITICAL,
        description="retry budgets are running out",
    ),
    SloRule.parse(
        "rebuild-node-failures", "rate(rebuild_nodes_failed_total) > 0 over 2 samples",
        component="engine", severity=SEVERITY_WARNING,
        description="rebuild nodes are failing into fallback",
    ),
    SloRule.parse(
        "federation-sync-failures", "rate(federation_sync_failures_total) > 0 over 2 samples",
        component="federation", severity=SEVERITY_WARNING,
        description="mirror syncs are aborting",
    ),
    SloRule.parse(
        "service-queue-saturated", "service_queue_occupancy >= 0.9 for 3 samples",
        component="service", severity=SEVERITY_WARNING,
        description="admission queue near capacity; shedding imminent",
    ),
    SloRule.parse(
        "service-rejections", "rate(service_requests_rejected_total) > 0 over 2 samples",
        component="service", severity=SEVERITY_WARNING,
        description="the service is rejecting admissions",
    ),
    SloRule.parse(
        "service-breaker-open", "service_breakers_open > 0",
        component="service", severity=SEVERITY_CRITICAL,
        description="a shared-dependency circuit breaker is open",
    ),
    SloRule.parse(
        "service-deadlines-blown", "rate(service_requests_deadline_total) > 0 over 2 samples",
        component="service", severity=SEVERITY_WARNING,
        description="requests are blowing their deadlines",
    ),
    SloRule.parse(
        "service-wal-backlog", "service_wal_open_requests > 8 for 3 samples",
        component="service", severity=SEVERITY_WARNING,
        description="many admitted requests lack terminal WAL records; "
                    "a crash now would replay a deep backlog",
    ),
    SloRule.parse(
        "service-crash-recovery", "rate(service_recoveries_total) > 0 over 2 samples",
        component="service", severity=SEVERITY_WARNING,
        description="the service restarted from its WAL",
    ),
    SloRule.parse(
        "federation-failover", "rate(federation_failovers_total) > 0 over 2 samples",
        component="federation", severity=SEVERITY_WARNING,
        description="the origin failed over to a promoted mirror",
    ),
    SloRule.parse(
        "federation-fenced-writes",
        "rate(federation_fenced_writes_rejected_total) > 0 over 2 samples",
        component="federation", severity=SEVERITY_CRITICAL,
        description="a demoted origin is still trying to write "
                    "(split-brain attempt fenced off)",
    ),
)


@dataclass
class Alert:
    """One rule transition with a firing/resolved lifecycle."""

    rule: str
    component: str
    severity: str
    value: Optional[float]
    fired_at: float
    state: str = STATE_FIRING
    resolved_at: Optional[float] = None
    expression: str = ""

    @property
    def firing(self) -> bool:
        return self.state == STATE_FIRING

    def describe(self) -> str:
        tail = (
            f"resolved at {self.resolved_at:.3f}s"
            if self.resolved_at is not None
            else f"firing since {self.fired_at:.3f}s"
        )
        value = "-" if self.value is None else f"{self.value:.3f}"
        return (
            f"{self.rule} [{self.severity}] {self.component}: "
            f"{self.expression} (value {value}, {tail})"
        )

    def to_json(self) -> dict:
        return {
            "rule": self.rule,
            "component": self.component,
            "severity": self.severity,
            "value": self.value,
            "state": self.state,
            "fired_at": self.fired_at,
            "resolved_at": self.resolved_at,
            "expression": self.expression,
        }


class RulesEngine:
    """Evaluates rules on every sample; owns the alert lifecycle."""

    def __init__(
        self,
        sampler,
        rules: Sequence[SloRule] = DEFAULT_RULES,
        telemetry=None,
    ) -> None:
        names = [r.name for r in rules]
        if len(set(names)) != len(names):
            raise RuleError(f"duplicate rule names: {sorted(names)}")
        self.sampler = sampler
        self.rules: Tuple[SloRule, ...] = tuple(rules)
        self.telemetry = telemetry if telemetry is not None else sampler.telemetry
        self._streaks: Dict[str, int] = {r.name: 0 for r in self.rules}
        #: rule name -> currently-firing alert.
        self.active: Dict[str, Alert] = {}
        #: every alert ever fired, in firing order (resolved in place).
        self.history: List[Alert] = []
        self.evaluations = 0
        # (rule, series) prebound: the sampler's series set is fixed at
        # construction, so the per-sample dict lookups can go.
        self._bound = [
            (rule, sampler.series[rule.series])
            for rule in self.rules
            if rule.series in sampler.series
        ]
        sampler.listeners.append(self.on_sample)

    # ------------------------------------------------------------------

    def on_sample(self, sampler, t: float) -> None:
        self.evaluations += 1
        streaks = self._streaks
        for rule, series in self._bound:
            breaching, value = rule.evaluate(series)
            if breaching is None:
                continue   # no data: hold streaks and alert state
            if breaching:
                streaks[rule.name] += 1
                if (
                    streaks[rule.name] >= rule.for_samples
                    and rule.name not in self.active
                ):
                    self._fire(rule, value, t)
            else:
                streaks[rule.name] = 0
                if rule.name in self.active:
                    self._resolve(rule, value, t)

    def _fire(self, rule: SloRule, value: Optional[float], t: float) -> None:
        alert = Alert(
            rule=rule.name, component=rule.component, severity=rule.severity,
            value=value, fired_at=t, expression=rule.render(),
        )
        self.active[rule.name] = alert
        self.history.append(alert)
        telemetry = self.telemetry
        if telemetry is not None and telemetry.enabled:
            telemetry.event(
                "alert.firing", rule=rule.name, component=rule.component,
                severity=rule.severity, value=value,
            )
            m = telemetry.metrics
            m.counter("controlplane_alerts_fired_total").inc()
            m.gauge("controlplane_alerts_firing").set(len(self.active))

    def _resolve(self, rule: SloRule, value: Optional[float], t: float) -> None:
        alert = self.active.pop(rule.name)
        alert.state = STATE_RESOLVED
        alert.resolved_at = t
        alert.value = value
        telemetry = self.telemetry
        if telemetry is not None and telemetry.enabled:
            telemetry.event(
                "alert.resolved", rule=rule.name, component=rule.component,
                severity=rule.severity, value=value,
            )
            m = telemetry.metrics
            m.counter("controlplane_alerts_resolved_total").inc()
            m.gauge("controlplane_alerts_firing").set(len(self.active))

    # ------------------------------------------------------------------

    def firing(self) -> List[Alert]:
        return sorted(self.active.values(), key=lambda a: (a.component, a.rule))

    def alert_rows(self) -> List[Tuple]:
        """(rule, component, severity, state, value, fired, resolved)."""
        rows = []
        for alert in self.history:
            rows.append((
                alert.rule, alert.component, alert.severity, alert.state,
                "-" if alert.value is None else f"{alert.value:.3f}",
                f"{alert.fired_at:.3f}",
                "-" if alert.resolved_at is None else f"{alert.resolved_at:.3f}",
            ))
        return rows

    def alerts_text(self) -> str:
        """Latest per-rule alert state, Prometheus exposition style."""
        latest: Dict[str, Alert] = {}
        for alert in self.history:
            latest[alert.rule] = alert
        if not latest:
            return "# (no alerts fired)\n"
        lines = ["# TYPE comtainer_alert gauge"]
        for name in sorted(latest):
            alert = latest[name]
            lines.append(
                f'comtainer_alert{{rule="{alert.rule}",'
                f'component="{alert.component}",'
                f'severity="{alert.severity}"}} '
                f"{1 if alert.firing else 0}"
            )
        return "\n".join(lines) + "\n"


__all__ = [
    "DEFAULT_RULES",
    "KIND_BURN_RATE",
    "KIND_THRESHOLD",
    "SEVERITY_CRITICAL",
    "SEVERITY_INFO",
    "SEVERITY_WARNING",
    "STATE_FIRING",
    "STATE_RESOLVED",
    "Alert",
    "RuleError",
    "RulesEngine",
    "SloRule",
]
