"""Span-boundary cost profiler: phase x site attribution, collapsed stacks.

Every span start/end is a boundary (the recorder calls
:meth:`CostProfiler.enter` / :meth:`CostProfiler.exit` from
``start_span`` / ``end_span``).  The simulated time elapsed since the
previous boundary is attributed to the span stack that was active
*during* that interval, classified into a pipeline **phase** —
frontend / compile / link / transfer / verify / workload — from the
innermost span's ``phase`` attribute, a span-name map, or the parent
frame's phase (children inherit unless they say otherwise).  Time
outside any span lands in a synthetic ``(idle)`` frame.

Accounting is in **integer nanoseconds** (``round(seconds * 1e9)``), so
interval sums telescope exactly: the total attributed time equals the
recorder clock's elapsed time to the nanosecond, which is what lets the
reconciliation tests assert equality with zero tolerance.

Exports:

* :meth:`collapsed_stack` — ``frame;frame;phase <nanoseconds>`` lines,
  the flamegraph-compatible collapsed format (`flamegraph.pl`,
  `inferno`, speedscope all read it).
* :meth:`hot_rows` — the top-K stacks by attributed cost, with shares.
* :meth:`phase_totals` — seconds per phase, the measurement substrate
  the ROADMAP's profiling-driven optimization pass starts from.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

PHASE_FRONTEND = "frontend"
PHASE_COMPILE = "compile"
PHASE_LINK = "link"
PHASE_TRANSFER = "transfer"
PHASE_VERIFY = "verify"
PHASE_WORKLOAD = "workload"
PHASE_OTHER = "other"
PHASE_IDLE = "idle"

PHASES = (
    PHASE_FRONTEND, PHASE_COMPILE, PHASE_LINK, PHASE_TRANSFER,
    PHASE_VERIFY, PHASE_WORKLOAD, PHASE_OTHER, PHASE_IDLE,
)

#: Span-name -> phase, for spans that do not carry a ``phase`` attribute.
SPAN_PHASES: Dict[str, str] = {
    "build": PHASE_FRONTEND,
    "transfer": PHASE_TRANSFER,
    "registry.push": PHASE_TRANSFER,
    "registry.pull": PHASE_TRANSFER,
    "mirror.sync": PHASE_TRANSFER,
    "rebuild": PHASE_COMPILE,
    "rebuild.wavefront": PHASE_COMPILE,
    "fleet.worker": PHASE_COMPILE,
    "redirect": PHASE_LINK,
    "workload": PHASE_WORKLOAD,
    "fsck": PHASE_VERIFY,
    "repair": PHASE_VERIFY,
}

_IDLE_FRAME = "(idle)"


def classify_phase(
    name: str, attributes: Optional[dict], parent_phase: Optional[str] = None
) -> str:
    """Phase of one span: explicit attribute > name map > inherited."""
    if attributes:
        explicit = attributes.get("phase")
        if isinstance(explicit, str) and explicit:
            return explicit
    mapped = SPAN_PHASES.get(name)
    if mapped is not None:
        return mapped
    return parent_phase or PHASE_OTHER


def _ns(seconds: float) -> int:
    return round(seconds * 1e9)


class _Frame:
    __slots__ = ("name", "span_id", "phase")

    def __init__(self, name: str, span_id: int, phase: str) -> None:
        self.name = name
        self.span_id = span_id
        self.phase = phase


class CostProfiler:
    """Attributes simulated-clock charge to span-stack x phase."""

    def __init__(self, origin: float = 0.0) -> None:
        self._stack: List[_Frame] = []
        #: last boundary, integer nanoseconds on the recorder clock.
        self._mark_ns = _ns(origin)
        self._origin_ns = self._mark_ns
        #: (frame names..., phase) -> attributed nanoseconds.
        self._costs: Dict[Tuple[str, ...], int] = {}

    # -- recorder hooks --------------------------------------------------

    def enter(self, span, now: float) -> None:
        self._attribute(now)
        parent_phase = self._stack[-1].phase if self._stack else None
        phase = classify_phase(
            span.name, getattr(span, "attributes", None), parent_phase
        )
        self._stack.append(_Frame(span.name, span.span_id, phase))

    def exit(self, span, now: float) -> None:
        self._attribute(now)
        # end_span pops dangling children ended by an exception in one
        # sweep; mirror that by unwinding to (and including) this span.
        while self._stack:
            if self._stack.pop().span_id == span.span_id:
                break

    def finish(self, now: float) -> None:
        """Flush the trailing interval (call once, at the clock's end)."""
        self._attribute(now)

    def _attribute(self, now: float) -> None:
        now_ns = _ns(now)
        dt = now_ns - self._mark_ns
        self._mark_ns = now_ns
        if dt <= 0:
            return
        if self._stack:
            key = tuple(f.name for f in self._stack) + (self._stack[-1].phase,)
        else:
            key = (_IDLE_FRAME, PHASE_IDLE)
        self._costs[key] = self._costs.get(key, 0) + dt

    # -- exports ---------------------------------------------------------

    def total_ns(self) -> int:
        """Attributed nanoseconds; equals the clock elapsed exactly."""
        return sum(self._costs.values())

    def total_seconds(self) -> float:
        return self.total_ns() / 1e9

    def phase_totals_ns(self) -> Dict[str, int]:
        totals: Dict[str, int] = {}
        for key, cost in self._costs.items():
            phase = key[-1]
            totals[phase] = totals.get(phase, 0) + cost
        return totals

    def phase_totals(self) -> Dict[str, float]:
        return {p: ns / 1e9 for p, ns in self.phase_totals_ns().items()}

    def collapsed_stack(self) -> str:
        """Flamegraph-collapsed text: ``a;b;phase <ns>`` per line.

        The phase rides as the leaf frame, so two executions of the same
        span stack under different phases (a ``rebuild.node`` compiling
        vs linking) stay distinguishable in the flamegraph.
        """
        lines = [
            ";".join(key) + f" {cost}"
            for key, cost in sorted(self._costs.items())
        ]
        return "\n".join(lines) + ("\n" if lines else "")

    def hot_rows(self, k: int = 10) -> List[Tuple[str, str, float, float]]:
        """Top-*k* ``(stack, phase, seconds, share)`` by attributed cost."""
        total = self.total_ns()
        ranked = sorted(self._costs.items(), key=lambda kv: (-kv[1], kv[0]))
        rows = []
        for key, cost in ranked[: max(0, int(k))]:
            rows.append((
                ";".join(key[:-1]),
                key[-1],
                cost / 1e9,
                cost / total if total else 0.0,
            ))
        return rows


__all__ = [
    "PHASES",
    "PHASE_COMPILE",
    "PHASE_FRONTEND",
    "PHASE_IDLE",
    "PHASE_LINK",
    "PHASE_OTHER",
    "PHASE_TRANSFER",
    "PHASE_VERIFY",
    "PHASE_WORKLOAD",
    "SPAN_PHASES",
    "CostProfiler",
    "classify_phase",
]
