"""The fleet-wide observability control plane (docs/OBSERVABILITY.md).

Composes the PR 2 telemetry primitives into continuous observability:

* :class:`TimeSeriesSampler` — cadence-driven ring-buffer series over
  the metrics registry, advanced by simulated time (fleet heartbeat
  timeline, sync-engine chunk charges, the wavefront scheduler).
* :class:`RulesEngine` — declarative SLO threshold/burn-rate rules over
  those series, with a typed firing/resolved :class:`Alert` lifecycle.
* :func:`score_health` — alerts + fsck/federation audit findings folded
  into per-component statuses (``coMtainer health``).
* :class:`CostProfiler` — span-boundary attribution of simulated-clock
  charge to phase x site, exported as collapsed stacks and hot-path
  tables.

Install by constructing :class:`ControlPlane` over an *active*
:class:`~repro.telemetry.Telemetry`: it registers itself as
``telemetry.controlplane`` (and its profiler as ``telemetry.profiler``),
which is the only state the hook sites check — with the default
:class:`~repro.telemetry.NullTelemetry` both attributes are ``None`` and
every hook is inert, so untraced runs stay byte-identical.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.telemetry.controlplane.health import (
    COMPONENT_CACHE,
    COMPONENT_ENGINE,
    COMPONENT_FEDERATION,
    COMPONENT_FLEET,
    COMPONENT_SERVICE_WAL,
    STATUS_CRITICAL,
    STATUS_DEGRADED,
    STATUS_HEALTHY,
    STATUS_UNKNOWN,
    ComponentHealth,
    HealthReport,
    score_health,
)
from repro.telemetry.controlplane.profiler import (
    PHASES,
    SPAN_PHASES,
    CostProfiler,
    classify_phase,
)
from repro.telemetry.controlplane.rules import (
    DEFAULT_RULES,
    Alert,
    RuleError,
    RulesEngine,
    SloRule,
)
from repro.telemetry.controlplane.sampling import (
    DEFAULT_CADENCE,
    DEFAULT_CAPACITY,
    DEFAULT_SERIES,
    Sample,
    Series,
    SeriesSpec,
    TimeSeriesSampler,
)


class ControlPlane:
    """Sampler + rules + profiler bound to one active recorder."""

    def __init__(
        self,
        telemetry,
        cadence: float = DEFAULT_CADENCE,
        capacity: int = DEFAULT_CAPACITY,
        series: Sequence[SeriesSpec] = DEFAULT_SERIES,
        rules: Sequence[SloRule] = DEFAULT_RULES,
        profile: bool = True,
    ) -> None:
        if not getattr(telemetry, "enabled", False):
            # Attaching to the shared NULL_TELEMETRY singleton would
            # leak a control plane into every untraced run; refuse.
            raise ValueError(
                "ControlPlane requires an active Telemetry recorder "
                "(NullTelemetry stays inert by design)"
            )
        self.telemetry = telemetry
        self.sampler = TimeSeriesSampler(
            telemetry, cadence=cadence, capacity=capacity, specs=series
        )
        self.rules = RulesEngine(self.sampler, rules=rules, telemetry=telemetry)
        self.profiler: Optional[CostProfiler] = (
            CostProfiler(origin=telemetry.clock.now) if profile else None
        )
        self._finalized = False
        telemetry.controlplane = self
        if self.profiler is not None:
            telemetry.profiler = self.profiler

    # ------------------------------------------------------------------

    def advance(self, seconds: float) -> int:
        """Report simulated progress from a hook site; samples if due."""
        return self.sampler.advance(seconds)

    def poll(self) -> int:
        """Emit overdue samples without claiming any time."""
        return self.sampler.poll()

    def finalize(self) -> None:
        """End-of-run flush: one forced sample (so rules always evaluate
        at least once, even for a fully-cached zero-cost run) and the
        profiler's trailing interval.  Idempotent."""
        if self._finalized:
            return
        self._finalized = True
        self.sampler.force_sample()
        if self.profiler is not None:
            self.profiler.finish(self.telemetry.clock.now)

    def health(self, fsck=None, federation=None, audit: bool = False,
               failures=None, wal=None) -> HealthReport:
        return score_health(
            self, fsck=fsck, federation=federation, audit=audit,
            failures=failures, wal=wal,
        )

    def uninstall(self) -> None:
        """Detach from the recorder (hooks go inert again)."""
        if self.telemetry.controlplane is self:
            self.telemetry.controlplane = None
        if self.telemetry.profiler is self.profiler:
            self.telemetry.profiler = None
        if self.rules.on_sample in self.sampler.listeners:
            self.sampler.listeners.remove(self.rules.on_sample)


def install_controlplane(telemetry, **kwargs) -> ControlPlane:
    """Convenience constructor mirroring :func:`install_telemetry`."""
    return ControlPlane(telemetry, **kwargs)


__all__ = [
    "COMPONENT_CACHE",
    "COMPONENT_ENGINE",
    "COMPONENT_FEDERATION",
    "COMPONENT_FLEET",
    "COMPONENT_SERVICE_WAL",
    "DEFAULT_CADENCE",
    "DEFAULT_CAPACITY",
    "DEFAULT_RULES",
    "DEFAULT_SERIES",
    "PHASES",
    "SPAN_PHASES",
    "STATUS_CRITICAL",
    "STATUS_DEGRADED",
    "STATUS_HEALTHY",
    "STATUS_UNKNOWN",
    "Alert",
    "ComponentHealth",
    "ControlPlane",
    "CostProfiler",
    "HealthReport",
    "RuleError",
    "RulesEngine",
    "Sample",
    "Series",
    "SeriesSpec",
    "SloRule",
    "TimeSeriesSampler",
    "classify_phase",
    "install_controlplane",
    "score_health",
]
