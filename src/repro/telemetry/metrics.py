"""The metrics registry: counters, gauges and bounded-bucket histograms.

Names follow the Prometheus convention (``snake_case``, ``_total`` suffix
for counters, ``_bytes``/``_seconds`` unit suffixes) so the text export in
:mod:`repro.telemetry.export` is a straight serialization.  Instruments
are created on first use and live for the registry's lifetime; histogram
buckets are fixed at creation (bounded — observing can never allocate).
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

#: Default histogram buckets, tuned for blob/layer byte sizes.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    1 << 10, 1 << 14, 1 << 18, 1 << 22, 1 << 26,
)

#: Buckets for attempt-count histograms (e.g. the per-site
#: ``resilience_retry_exhaustion_attempts_*`` family): powers of two up
#: to well past any configured :class:`RetryPolicy.max_attempts`.
ATTEMPT_BUCKETS: Tuple[float, ...] = (1, 2, 4, 8, 16, 32, 64, 128)


#: folded name -> the first site that claimed it (collision detection).
_FOLDED_OWNERS: Dict[str, str] = {}
#: site -> its resolved metric name part (stable for a site's lifetime).
_RESOLVED_SITES: Dict[str, str] = {}


def metric_site(site: str) -> str:
    """Fold an injector site name into a Prometheus-legal name part
    (``registry.pull`` -> ``registry_pull``).

    Folding is lossy: ``mirror.sync`` and ``mirror_sync`` both fold to
    ``mirror_sync``, which would silently merge two distinct sites into
    one instrument family.  The first site to claim a folded name keeps
    it; any *different* site folding to the same name gets a short
    content-hash suffix, so the two can never merge.  The mapping is
    stable per site for the process lifetime.
    """
    resolved = _RESOLVED_SITES.get(site)
    if resolved is not None:
        return resolved
    folded = site.replace(".", "_").replace("-", "_").replace("/", "_")
    owner = _FOLDED_OWNERS.setdefault(folded, site)
    if owner == site:
        name = folded
    else:
        digest = hashlib.sha256(site.encode("utf-8")).hexdigest()[:6]
        name = f"{folded}_{digest}"
    _RESOLVED_SITES[site] = name
    return name


class MetricError(Exception):
    pass


class Counter:
    """Monotonically increasing value."""

    kind = "counter"
    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise MetricError(f"counter {self.name} cannot decrease")
        self.value += amount


class Gauge:
    """A value that can go up and down (queue depths, store sizes)."""

    kind = "gauge"
    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Cumulative histogram over a fixed, bounded bucket list."""

    kind = "histogram"
    __slots__ = ("name", "buckets", "counts", "sum", "count")

    def __init__(self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        if not buckets:
            raise MetricError(f"histogram {name} needs at least one bucket")
        bounds = tuple(sorted(float(b) for b in buckets))
        if len(set(bounds)) != len(bounds):
            raise MetricError(f"histogram {name} has duplicate buckets")
        self.name = name
        self.buckets = bounds
        #: counts[i] observations <= buckets[i]; counts[-1] is +Inf overflow.
        self.counts: List[int] = [0] * (len(bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.sum += value
        self.count += 1
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    def cumulative(self) -> List[Tuple[float, int]]:
        """(upper_bound, cumulative_count) pairs, +Inf last."""
        out: List[Tuple[float, int]] = []
        running = 0
        for bound, n in zip(self.buckets, self.counts):
            running += n
            out.append((bound, running))
        out.append((float("inf"), running + self.counts[-1]))
        return out


class MetricsRegistry:
    """Name-keyed instrument store; instruments are created on first use."""

    def __init__(self) -> None:
        self._metrics: Dict[str, object] = {}

    def _get_or_create(self, name: str, kind: str, factory):
        metric = self._metrics.get(name)
        if metric is None:
            metric = factory()
            self._metrics[name] = metric
        elif metric.kind != kind:
            raise MetricError(
                f"metric {name!r} is a {metric.kind}, requested as {kind}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, "counter", lambda: Counter(name))

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, "gauge", lambda: Gauge(name))

    def histogram(
        self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS
    ) -> Histogram:
        return self._get_or_create(
            name, "histogram", lambda: Histogram(name, buckets)
        )

    def get(self, name: str) -> Optional[object]:
        return self._metrics.get(name)

    def value(self, name: str, default: float = 0.0) -> float:
        """Scalar value of a counter/gauge (histograms report their sum)."""
        metric = self._metrics.get(name)
        if metric is None:
            return default
        if isinstance(metric, Histogram):
            return metric.sum
        return metric.value

    def __iter__(self) -> Iterator[object]:
        return iter(self._metrics[name] for name in sorted(self._metrics))

    def __len__(self) -> int:
        return len(self._metrics)

    def snapshot(self) -> Dict[str, object]:
        """JSON-friendly dump of every instrument."""
        out: Dict[str, object] = {}
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if isinstance(metric, Histogram):
                out[name] = {
                    "sum": metric.sum,
                    "count": metric.count,
                    "buckets": {
                        ("+Inf" if bound == float("inf") else str(int(bound))): n
                        for bound, n in metric.cumulative()
                    },
                }
            else:
                out[name] = metric.value
        return out


class _NullInstrument:
    """Shared inert counter/gauge/histogram."""

    __slots__ = ()
    kind = "null"
    name = ""
    value = 0.0
    sum = 0.0
    count = 0

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


_NULL_INSTRUMENT = _NullInstrument()


class NullMetricsRegistry:
    """No-op registry used by :class:`repro.telemetry.NullTelemetry`."""

    def counter(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, name: str, buckets=DEFAULT_BUCKETS) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def get(self, name: str) -> None:
        return None

    def value(self, name: str, default: float = 0.0) -> float:
        return default

    def __iter__(self) -> Iterator[object]:
        return iter(())

    def __len__(self) -> int:
        return 0

    def snapshot(self) -> Dict[str, object]:
        return {}
