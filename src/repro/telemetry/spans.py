"""Hierarchical spans and the structured event log.

The telemetry substrate mirrors how the paper attributes adaptation cost
per pipeline stage (frontend recording, rebuild, redirect — Figures 9-11,
Tables 2-3): every stage opens a **span**, spans nest into a tree, and
cross-cutting layers (resilience, fault injection) attach **events** to
whatever span is active.

Time is simulated, exactly like the resilience layer's backoff clock:
tier-1 must run in seconds, so nothing ever calls ``time.time``.  Every
structural event (span start/end, event emission) advances the clock by
one tick so ordering is strict and durations are non-zero; operations
that know their simulated cost (retry backoff, workload execution time)
add it explicitly via :meth:`Telemetry.charge`, which is what makes the
exported traces show *where the simulated seconds went*.

:class:`NullTelemetry` is the default everywhere: same API, no recording,
no clock — untraced runs stay byte-identical and fast.
"""

from __future__ import annotations

import itertools
import logging
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from repro.telemetry.metrics import MetricsRegistry, NullMetricsRegistry

logger = logging.getLogger("repro.telemetry")

#: Clock advance per structural event (span start/end, event emission).
CLOCK_TICK = 1e-6

#: The central event log is bounded; a traced chaos sweep can arm fault
#: sites thousands of times and must not grow memory without bound.
EVENT_LOG_CAP = 65536

STATUS_OK = "ok"
STATUS_ERROR = "error"


@dataclass
class TelemetryClock:
    """Monotonic simulated time for span timestamps."""

    now: float = 0.0
    tick: float = CLOCK_TICK

    def advance(self, seconds: float) -> float:
        self.now += seconds
        return self.now

    def step(self) -> float:
        return self.advance(self.tick)


@dataclass
class Event:
    """One structured log entry, attributed to the span it occurred in."""

    ts: float
    name: str
    span_id: Optional[int] = None
    attributes: Dict[str, object] = field(default_factory=dict)

    def to_json(self) -> dict:
        return {
            "ts": self.ts,
            "name": self.name,
            "span_id": self.span_id,
            "attributes": dict(self.attributes),
        }


@dataclass
class Span:
    """One timed pipeline stage, with attributes, status and children."""

    name: str
    span_id: int
    parent_id: Optional[int]
    start: float
    end: Optional[float] = None
    status: str = STATUS_OK
    attributes: Dict[str, object] = field(default_factory=dict)
    children: List["Span"] = field(default_factory=list)

    @property
    def duration(self) -> float:
        return (self.end if self.end is not None else self.start) - self.start

    @property
    def finished(self) -> bool:
        return self.end is not None

    def set(self, key: str, value: object) -> None:
        self.attributes[key] = value

    def to_json(self) -> dict:
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "end": self.end,
            "status": self.status,
            "attributes": dict(self.attributes),
            "children": [c.to_json() for c in self.children],
        }


class _SpanContext:
    """Context manager for one span; error status is set on exception."""

    __slots__ = ("_telemetry", "_span")

    def __init__(self, telemetry: "Telemetry", span: Span) -> None:
        self._telemetry = telemetry
        self._span = span

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc is not None:
            self._span.status = STATUS_ERROR
            self._span.attributes.setdefault("error", str(exc))
        self._telemetry.end_span(self._span)
        return False


class Telemetry:
    """An active recorder: span tree + metrics registry + event log."""

    enabled = True

    #: The observability control plane attached to this recorder, if any
    #: (:class:`repro.telemetry.controlplane.ControlPlane` installs
    #: itself here).  Hook sites in the fleet, sync engine and scheduler
    #: guard on this being non-None, so a bare recorder stays cheap.
    controlplane = None
    #: Span-boundary cost profiler (also installed by the control plane).
    profiler = None

    def __init__(self, clock: Optional[TelemetryClock] = None) -> None:
        self.clock = clock or TelemetryClock()
        self.metrics = MetricsRegistry()
        self.roots: List[Span] = []
        self.events: List[Event] = []
        self._stack: List[Span] = []
        self._ids = itertools.count(1)

    # -- spans ----------------------------------------------------------

    @property
    def current(self) -> Optional[Span]:
        return self._stack[-1] if self._stack else None

    def start_span(self, name: str, **attributes: object) -> Span:
        parent = self.current
        span = Span(
            name=name,
            span_id=next(self._ids),
            parent_id=parent.span_id if parent is not None else None,
            start=self.clock.step(),
            attributes=attributes,
        )
        if parent is not None:
            parent.children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)
        if self.profiler is not None:
            self.profiler.enter(span, span.start)
        return span

    def end_span(self, span: Span, status: Optional[str] = None) -> None:
        if status is not None:
            span.status = status
        span.end = self.clock.step()
        if self.profiler is not None:
            self.profiler.exit(span, span.end)
        # Tolerate mis-nested ends (an abandoned child after an exception):
        # pop everything above the span being ended.
        while self._stack and self._stack[-1] is not span:
            dangling = self._stack.pop()
            if dangling.end is None:
                dangling.end = span.end
        if self._stack and self._stack[-1] is span:
            self._stack.pop()
        logger.debug("span %s (%s) %.6fs", span.name, span.status, span.duration)

    def span(self, name: str, **attributes: object) -> _SpanContext:
        return _SpanContext(self, self.start_span(name, **attributes))

    # -- events and time ------------------------------------------------

    def event(self, name: str, **attributes: object) -> Optional[Event]:
        current = self.current
        evt = Event(
            ts=self.clock.step(),
            name=name,
            span_id=current.span_id if current is not None else None,
            attributes=attributes,
        )
        self.events.append(evt)
        if len(self.events) > EVENT_LOG_CAP:
            del self.events[: len(self.events) - EVENT_LOG_CAP]
        return evt

    def charge(self, seconds: float) -> None:
        """Attribute *seconds* of simulated time to the active span."""
        if seconds > 0.0:
            self.clock.advance(seconds)

    # -- introspection ---------------------------------------------------

    def iter_spans(self) -> Iterator[Span]:
        """All spans, depth-first in start order."""
        stack = list(reversed(self.roots))
        while stack:
            span = stack.pop()
            yield span
            stack.extend(reversed(span.children))

    def find_spans(self, name: str) -> List[Span]:
        return [s for s in self.iter_spans() if s.name == name]

    def events_for(self, span: Span) -> List[Event]:
        return [e for e in self.events if e.span_id == span.span_id]

    def reset(self) -> None:
        self.roots.clear()
        self.events.clear()
        self._stack.clear()
        self.metrics = MetricsRegistry()
        self.clock = TelemetryClock()
        # A fresh clock invalidates any attached control plane's marks.
        self.controlplane = None
        self.profiler = None


class _NullSpan:
    """Shared inert span: accepts writes, records nothing."""

    __slots__ = ()
    name = ""
    span_id = 0
    parent_id = None
    status = STATUS_OK
    start = 0.0
    end = 0.0
    duration = 0.0
    children: List[Span] = []

    def set(self, key: str, value: object) -> None:
        pass


class _NullSpanContext:
    __slots__ = ()

    def __enter__(self) -> _NullSpan:
        return _NULL_SPAN

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()
_NULL_SPAN_CONTEXT = _NullSpanContext()


class NullTelemetry:
    """The default no-op recorder: same surface, nothing stored."""

    enabled = False
    current = None
    controlplane = None
    profiler = None

    def __init__(self) -> None:
        self.metrics = NullMetricsRegistry()
        self.roots: List[Span] = []
        self.events: List[Event] = []

    def start_span(self, name: str, **attributes: object) -> _NullSpan:
        return _NULL_SPAN

    def end_span(self, span, status: Optional[str] = None) -> None:
        pass

    def span(self, name: str, **attributes: object) -> _NullSpanContext:
        return _NULL_SPAN_CONTEXT

    def event(self, name: str, **attributes: object) -> None:
        return None

    def charge(self, seconds: float) -> None:
        pass

    def iter_spans(self) -> Iterator[Span]:
        return iter(())

    def find_spans(self, name: str) -> List[Span]:
        return []

    def events_for(self, span) -> List[Event]:
        return []

    def reset(self) -> None:
        pass


#: The process-wide default telemetry sink; installed on every engine,
#: registry and blob store until a real :class:`Telemetry` replaces it.
NULL_TELEMETRY = NullTelemetry()
