"""Exporters: span-tree text, Chrome trace-event JSON, Prometheus text.

Three consumers, three formats:

* ``render_span_tree`` — the CLI's human view (``comtainer-demo --trace``).
* ``chrome_trace`` / ``chrome_trace_json`` — ``chrome://tracing`` /
  Perfetto-loadable ``traceEvents`` JSON (``comtainer-demo trace --out``).
  Spans become complete (``"ph": "X"``) events, log events become
  instants (``"ph": "i"``); timestamps are simulated-clock microseconds.
* ``prometheus_text`` — the metrics registry in the Prometheus exposition
  format (``comtainer-demo --metrics``).
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from repro.telemetry.metrics import Histogram, MetricsRegistry
from repro.telemetry.spans import Span, Telemetry

_US = 1e6   # seconds -> microseconds


def _format_attrs(attributes: Dict[str, object]) -> str:
    return " ".join(f"{k}={v}" for k, v in attributes.items())


def render_span_tree(telemetry: Telemetry, max_events: int = 3) -> str:
    """The span forest as an indented text tree with durations."""
    lines: List[str] = []

    def visit(span: Span, depth: int) -> None:
        attrs = _format_attrs(span.attributes)
        status = "" if span.status == "ok" else f" !{span.status}"
        lines.append(
            f"{'  ' * depth}{span.name}  [{span.duration:.6f}s]{status}"
            + (f"  {attrs}" if attrs else "")
        )
        events = telemetry.events_for(span)
        for evt in events[:max_events]:
            lines.append(
                f"{'  ' * (depth + 1)}* {evt.name}"
                + (f"  {_format_attrs(evt.attributes)}" if evt.attributes else "")
            )
        if len(events) > max_events:
            lines.append(
                f"{'  ' * (depth + 1)}* ... {len(events) - max_events} more events"
            )
        for child in span.children:
            visit(child, depth + 1)

    for root in telemetry.roots:
        visit(root, 0)
    if not lines:
        return "(no spans recorded)"
    return "\n".join(lines)


def chrome_trace(telemetry: Telemetry) -> dict:
    """The whole recording as a Chrome trace-event document (a dict)."""
    events: List[dict] = []
    for span in telemetry.iter_spans():
        end = span.end if span.end is not None else span.start
        args: Dict[str, object] = dict(span.attributes)
        args["status"] = span.status
        events.append({
            "name": span.name,
            "ph": "X",
            "ts": span.start * _US,
            "dur": (end - span.start) * _US,
            "pid": 1,
            "tid": 1,
            "cat": "comtainer",
            "args": args,
        })
    for evt in telemetry.events:
        events.append({
            "name": evt.name,
            "ph": "i",
            "ts": evt.ts * _US,
            "pid": 1,
            "tid": 1,
            "s": "t",
            "cat": "comtainer",
            "args": dict(evt.attributes),
        })
    events.sort(key=lambda e: e["ts"])
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def chrome_trace_json(telemetry: Telemetry, indent: Optional[int] = None) -> str:
    return json.dumps(chrome_trace(telemetry), indent=indent, default=str)


def prometheus_text(metrics: MetricsRegistry) -> str:
    """Prometheus exposition-format dump of every registered instrument."""
    def num(value: float) -> str:
        if value == float("inf"):
            return "+Inf"
        if float(value).is_integer():
            return str(int(value))
        return repr(float(value))

    lines: List[str] = []
    for metric in metrics:
        lines.append(f"# TYPE {metric.name} {metric.kind}")
        if isinstance(metric, Histogram):
            for bound, count in metric.cumulative():
                lines.append(
                    f'{metric.name}_bucket{{le="{num(bound)}"}} {count}'
                )
            lines.append(f"{metric.name}_sum {num(metric.sum)}")
            lines.append(f"{metric.name}_count {metric.count}")
        else:
            lines.append(f"{metric.name} {num(metric.value)}")
    if not lines:
        return "# (no metrics recorded)\n"
    return "\n".join(lines) + "\n"
