"""End-to-end telemetry: spans, metrics, events and their exporters.

See ``docs/OBSERVABILITY.md`` for the span model, the metric name
catalogue and the export formats.  Installation mirrors the resilience
layer: substrates (engines, registries, blob stores) carry a
``telemetry`` attribute that defaults to the shared no-op
:data:`NULL_TELEMETRY`; :func:`install_telemetry` swaps a live recorder
in and :func:`uninstall_telemetry` restores the default.
"""

from repro.telemetry.controlplane import (
    DEFAULT_RULES,
    Alert,
    ControlPlane,
    CostProfiler,
    HealthReport,
    RulesEngine,
    SloRule,
    TimeSeriesSampler,
    install_controlplane,
    score_health,
)
from repro.telemetry.export import (
    chrome_trace,
    chrome_trace_json,
    prometheus_text,
    render_span_tree,
)
from repro.telemetry.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
    NullMetricsRegistry,
)
from repro.telemetry.spans import (
    EVENT_LOG_CAP,
    NULL_TELEMETRY,
    Event,
    NullTelemetry,
    Span,
    Telemetry,
    TelemetryClock,
)


def install_telemetry(telemetry, registry=None, engines=()) -> None:
    """Attach a recorder to a registry (and its blob store) and engines.

    Passing a :class:`NullTelemetry` is equivalent to uninstalling.
    """
    if registry is not None:
        registry.telemetry = telemetry
        registry.blobs.telemetry = telemetry
    for engine in engines:
        engine.telemetry = telemetry
        if engine.fault_injector is not None:
            engine.fault_injector.telemetry = telemetry


def uninstall_telemetry(registry=None, engines=()) -> None:
    """Restore the no-op default on a registry and engines."""
    install_telemetry(NULL_TELEMETRY, registry=registry, engines=engines)


__all__ = [
    "DEFAULT_BUCKETS",
    "DEFAULT_RULES",
    "EVENT_LOG_CAP",
    "NULL_TELEMETRY",
    "Alert",
    "ControlPlane",
    "CostProfiler",
    "Counter",
    "Event",
    "Gauge",
    "HealthReport",
    "Histogram",
    "MetricError",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "NullTelemetry",
    "RulesEngine",
    "SloRule",
    "Span",
    "Telemetry",
    "TelemetryClock",
    "TimeSeriesSampler",
    "chrome_trace",
    "chrome_trace_json",
    "install_controlplane",
    "install_telemetry",
    "prometheus_text",
    "render_span_tree",
    "score_health",
    "uninstall_telemetry",
]
