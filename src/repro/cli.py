"""``comtainer-demo``: a small CLI over the reproduction.

Subcommands::

    comtainer-demo schemes  <workload> [--system x86|arm]   # Figure 9 row
    comtainer-demo adapt    <app>      [--system ...] [--lto] [--pgo WKLD]
                                       [--jobs N] [--no-speculate]
                                       [--max-worker-failures N]
    comtainer-demo trace    <app>      [--out trace.json]  # traced adapt
    comtainer-demo analyze  <app>                          # process models
    comtainer-demo crossisa <app>      [--target aarch64]  # Figure 11 row
    comtainer-demo inspect  <app>      [--extended]        # layer stack
    comtainer-demo fsck     <dir>      [--repair] [--source DIR] [--app APP]
                                       [--federation]
    comtainer-demo mirror   sync|status <app> [--mirrors N] [--fault-rate R]
                                       [--seed S] [--chunk-size BYTES]
    comtainer-demo health   <app>      [--system ...] [--jobs N]
                                       [--mirrors N] [--stale-mirrors N]
                                       [--fault-rate R] [--seed S]
                                       [--cadence S] [--top K]
    comtainer-demo serve    [--tenants N] [--requests N] [--workers N]
                            [--noisy] [--fault-rate R] [--seed S]
                            [--deadline S] [--mirrors N]   # service demo
    comtainer-demo tables                                  # Tables 1 & 2

Global flags: ``--trace`` prints the span tree after the command,
``--trace-out FILE`` writes Chrome trace-event JSON, ``--metrics`` dumps
the Prometheus-style metrics registry (plus alert states when the
control plane ran), ``--slo`` samples metrics and evaluates the built-in
SLO rules during any command, ``--profile-out FILE`` writes the cost
profiler's collapsed-stack text, and ``-v``/``-q`` raise/lower the
stdlib-logging level (default WARNING).
"""

from __future__ import annotations

import argparse
import json
import logging
import sys
from typing import List, Optional

from repro.sysmodel import SYSTEMS


def configure_logging(verbose: int = 0, quiet: int = 0) -> int:
    """Map ``-v``/``-q`` counts onto a stdlib-logging level (default WARNING)."""
    level = logging.WARNING + 10 * quiet - 10 * verbose
    level = max(logging.DEBUG, min(logging.CRITICAL, level))
    logging.basicConfig(level=level,
                        format="%(levelname)s %(name)s: %(message)s")
    logging.getLogger("repro").setLevel(level)
    return level


def _wants_telemetry(args: argparse.Namespace) -> bool:
    return bool(args.trace or args.trace_out or args.metrics
                or args.slo or args.profile_out
                or args.command in ("trace", "health"))


def _wants_controlplane(args: argparse.Namespace) -> bool:
    return bool(args.slo or args.profile_out or args.command == "health")


def _session(system_key: str, telemetry=None, jobs: int = 1,
             speculate: bool = True, max_worker_failures: int = 3):
    from repro.core.workflow import ComtainerSession

    return ComtainerSession(system=SYSTEMS[system_key], telemetry=telemetry,
                            jobs=jobs, speculate=speculate,
                            max_worker_failures=max_worker_failures)


def cmd_schemes(args: argparse.Namespace) -> int:
    from repro.core.workflow import measure_schemes
    from repro.reporting import render_table

    session = _session(args.system, telemetry=args.telemetry)
    times = measure_schemes(session, args.workload)
    rows = [(scheme, seconds) for scheme, seconds in times.items()]
    print(render_table(["scheme", "time (s)"], rows))
    return 0


def cmd_adapt(args: argparse.Namespace) -> int:
    from repro.apps import get_app
    from repro.core.workflow import build_extended_image, system_side_adapt
    from repro.containers import ContainerEngine
    from repro.perf import attach_perf
    from repro.reporting import render_resilience_report
    from repro.resilience import find_deadline_exceeded
    from repro.resilience.degrade import (
        RUNG_DEADLINE_EXCEEDED,
        ResilienceReport,
    )
    from repro.telemetry import install_telemetry

    system = SYSTEMS[args.system]
    user = ContainerEngine(arch=system.arch)
    engine = ContainerEngine(arch=system.arch)
    install_telemetry(args.telemetry, engines=[user, engine])
    layout, dist_tag = build_extended_image(user, get_app(args.app))
    recorder = attach_perf(engine, system)
    # With a deadline the rebuild runs journaled, so a cancellation
    # leaves a resumable checkpoint instead of lost work.
    extra = ["--journal"] if args.deadline is not None else None
    try:
        ref = system_side_adapt(
            engine, layout, system, recorder=recorder,
            lto=args.lto, pgo_workload=args.pgo, ref=f"{args.app}:adapted",
            jobs=args.jobs, speculate=args.speculate,
            max_worker_failures=args.max_worker_failures,
            extra_rebuild_args=extra, deadline=args.deadline,
            incremental=args.incremental,
        )
    except Exception as exc:
        blown = find_deadline_exceeded(exc)
        if blown is None:
            raise
        report = ResilienceReport(
            tag=dist_tag, rung=RUNG_DEADLINE_EXCEEDED, ref=None,
            deadline_exceeded=str(blown),
            reasons=[f"adaptation cancelled: {blown}"],
        )
        print(render_resilience_report(report, telemetry=args.telemetry))
        print("journal checkpoint kept: re-run to resume the rebuild")
        return 1
    print(f"adapted image: {ref}")
    print(f"layout tags  : {layout.tags()}")
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    """A traced end-to-end adaptation plus the measured stage breakdown."""
    from repro.reporting import render_table, telemetry_stage_rows

    session = _session(args.system, telemetry=args.telemetry, jobs=args.jobs,
                       speculate=args.speculate,
                       max_worker_failures=args.max_worker_failures)
    ref = session.adapt(args.app, workload=args.workload)
    print(f"adapted image: {ref}")
    print()
    print(render_table(["stage", "spans", "simulated s"],
                       telemetry_stage_rows(args.telemetry)))
    return 0


def cmd_analyze(args: argparse.Namespace) -> int:
    from repro.apps import get_app
    from repro.containers import ContainerEngine
    from repro.core.cache.storage import decode_cache
    from repro.core.workflow import build_extended_image
    from repro.telemetry import install_telemetry

    user = ContainerEngine(arch="amd64")
    install_telemetry(args.telemetry, engines=[user])
    layout, dist_tag = build_extended_image(user, get_app(args.app))
    models, sources, _ = decode_cache(layout, dist_tag)
    print(json.dumps(models.summary(), indent=2, default=str))
    print(f"cached sources: {len(sources)}")
    return 0


def cmd_crossisa(args: argparse.Namespace) -> int:
    from repro.apps import get_app
    from repro.containers import ContainerEngine
    from repro.core.cache.storage import decode_cache
    from repro.core.crossisa import analyze_cross_isa
    from repro.core.workflow import build_extended_image

    user = ContainerEngine(arch="amd64")
    layout, dist_tag = build_extended_image(user, get_app(args.app))
    models, sources, _ = decode_cache(layout, dist_tag)
    report = analyze_cross_isa(models, sources, args.target, app=args.app)
    c_add, c_del = report.comtainer_changes
    x_add, x_del = report.xbuild_changes
    print(f"app              : {report.app}")
    print(f"can cross        : {report.can_cross}")
    print(f"ISA-flag commands: {report.flag_lines}")
    print(f"inline asm       : {report.asm_guarded} guarded, "
          f"{report.asm_unguarded} unguarded")
    print(f"coMtainer changes: +{c_add}/-{c_del}")
    print(f"xbuild changes   : +{x_add}/-{x_del}")
    return 0 if report.can_cross else 1


def cmd_inspect(args: argparse.Namespace) -> int:
    from repro.apps import get_app
    from repro.containers import ContainerEngine
    from repro.core.cache.storage import extended_tag
    from repro.core.workflow import build_extended_image
    from repro.oci.inspect import inspect_image

    user = ContainerEngine(arch="amd64")
    layout, dist_tag = build_extended_image(user, get_app(args.app))
    tag = extended_tag(dist_tag) if args.extended else dist_tag
    summary = inspect_image(layout.resolve(tag))
    print(f"image: {tag}")
    print(summary.render())
    return 0


def cmd_fsck(args: argparse.Namespace) -> int:
    """Verify a saved OCI layout directory; with ``--repair``, heal it.

    With ``--federation`` the path is treated as the origin and every
    ``--source`` directory as a replica: each member is scanned (and,
    with ``--repair``, healed from the others) and replica divergence
    from the origin is audited.

    Exit code 0 means every object verified (possibly after repair);
    1 means unrepaired corruption or divergence remains.
    """
    from repro.integrity.fsck import fsck_directory
    from repro.integrity.repair import RepairEngine
    from repro.oci.layout import OCILayout
    from repro.reporting import render_fsck_report

    if args.federation:
        from repro.integrity.fsck import fsck_federation_directories
        from repro.reporting import render_federation_fsck_report

        report = fsck_federation_directories(
            args.path, list(args.source), repair=args.repair,
            telemetry=args.telemetry,
        )
        print(render_federation_fsck_report(report))
        return report.exit_code

    repair = None
    if args.repair:
        repair = RepairEngine(telemetry=args.telemetry)
        for source in args.source:
            repair.add_layout(
                OCILayout.load(source, verify=False), label=source
            )
        if args.app:
            from repro.apps import get_app
            from repro.containers import ContainerEngine
            from repro.core.workflow import build_extended_image

            repair.add_regenerator(
                lambda: build_extended_image(
                    ContainerEngine(arch="amd64"), get_app(args.app)
                )[0],
                label=f"regenerate:{args.app}",
            )
    report = fsck_directory(args.path, repair=repair, telemetry=args.telemetry)
    print(render_fsck_report(report))
    return report.exit_code


def cmd_mirror(args: argparse.Namespace) -> int:
    """``mirror sync``/``mirror status``/``mirror promote``: fan an
    app's extended image out to N edge mirrors through the incremental
    sync engine.

    With ``--fault-rate`` the transfer path runs under seeded chaos
    (transient aborts + in-flight chunk corruption); syncs are retried
    until every mirror converges, exercising the resumable ledger.
    ``promote`` additionally fails the origin, elects the freshest
    converged mirror under a new fence epoch, demonstrates a stale-fence
    write being rejected, and reconciles the demoted origin back in as a
    mirror.  Exit code 0 means every mirror ended digest-identical with
    the (possibly promoted) origin.
    """
    from repro.apps import get_app
    from repro.containers import ContainerEngine
    from repro.core.workflow import build_extended_image
    from repro.federation import DEFAULT_CHUNK_SIZE, FederatedRegistry
    from repro.reporting import render_federation_status, render_sync_reports
    from repro.resilience.faults import FaultInjector

    user = ContainerEngine(arch="amd64")
    layout, dist_tag = build_extended_image(user, get_app(args.app))
    injector = None
    if args.fault_rate > 0:
        injector = FaultInjector(
            seed=args.seed, rate=args.fault_rate,
            corruption_rate=args.fault_rate / 2,
            sites=frozenset({"mirror.sync", "transfer.chunk"}),
            corruption_sites=frozenset({"transfer.chunk"}),
        )
    fed = FederatedRegistry(
        injector=injector, telemetry=args.telemetry,
        chunk_size=args.chunk_size or DEFAULT_CHUNK_SIZE,
    )
    fed.push_layout(f"{args.app}:dist", layout, tag=dist_tag)
    for i in range(args.mirrors):
        fed.add_mirror(f"edge-{i}")

    if args.action in ("sync", "promote"):
        reports = {}
        for name in sorted(fed.mirrors):
            for _ in range(200):
                try:
                    reports[name] = fed.sync_mirror(name)
                    break
                except Exception as exc:
                    logging.getLogger("repro.cli").info(
                        "sync of %s interrupted, resuming: %s", name, exc)
        print(render_sync_reports(reports.values()))
        print()
    if args.action == "promote":
        from repro.federation import FencedWriteError

        reference = f"{args.app}:dist"
        fed.pull(reference)   # pre-failure pull must work
        before = fed.origin.manifest_digest(reference)
        stale_writer = fed.fenced_writer()
        promotion = fed.fail_over()
        print(f"origin failed; promoted {promotion.elected} at "
              f"generation {promotion.generation} "
              f"(fence epoch {promotion.fence_token})")
        for note in promotion.notes:
            print(f"  {note}")
        try:
            stale_writer.push_layout(reference, layout, tag=dist_tag)
            print("  ERROR: stale-fence write was accepted")
            return 1
        except FencedWriteError as exc:
            print(f"  stale-fence write rejected: {exc}")
        fed.pull(reference)   # post-promotion pull must work too
        after = fed.origin.manifest_digest(reference)
        print(f"  promoted-origin pull digest-identical: {before == after}")
        fed.rejoin_demoted()
        print(f"  demoted origin rejoined as mirror "
              f"({len(fed.mirrors)} mirrors)")
        print()
    print(render_federation_status(fed))
    problems = {n: p for n, p in fed.audit().items() if p}
    if args.action in ("sync", "promote"):
        if problems:
            for name in sorted(problems):
                for problem in problems[name]:
                    print(f"  {name}: {problem}")
            return 1
        print(f"all {len(fed.mirrors)} mirrors converged "
              f"(origin generation {fed.generation})")
    return 0


def cmd_health(args: argparse.Namespace) -> int:
    """``coMtainer health``: one adaptation + mirror fan-out under the
    observability control plane, scored into per-component statuses.

    The run adapts *app* on ``--jobs`` rebuild workers (optionally under
    seeded worker chaos via ``--fault-rate``), then pushes the extended
    image through a federated registry with ``--mirrors`` edges of which
    ``--stale-mirrors`` are deliberately left behind the origin.  The
    sampled series drive the built-in SLO rules; alerts, component
    health, and the hot-path cost profile are printed.  Exit code 0
    means every component scored healthy (or unknown), 1 otherwise.
    """
    from repro.apps import get_app
    from repro.containers import ContainerEngine
    from repro.core.workflow import build_extended_image, system_side_adapt
    from repro.federation import FederatedRegistry
    from repro.perf import attach_perf
    from repro.reporting import (
        render_alerts,
        render_health_report,
        render_hot_paths,
    )
    from repro.resilience.faults import FaultInjector
    from repro.resilience.fleet import FleetExhaustedError
    from repro.telemetry import install_telemetry

    system = SYSTEMS[args.system]
    user = ContainerEngine(arch=system.arch)
    engine = ContainerEngine(arch=system.arch)
    if args.fault_rate > 0:
        engine.fault_injector = FaultInjector(
            seed=args.seed,
            worker_crash_rate=args.fault_rate,
            worker_flaky_rate=args.fault_rate,
        )
    install_telemetry(args.telemetry, engines=[user, engine])
    layout, dist_tag = build_extended_image(user, get_app(args.app))
    recorder = attach_perf(engine, system)
    failures = {}
    ref = None
    try:
        ref = system_side_adapt(
            engine, layout, system, recorder=recorder,
            ref=f"{args.app}:adapted", jobs=args.jobs,
        )
    except FleetExhaustedError as exc:
        # Chaos killed every rebuild worker: that IS a health finding,
        # not a crash — score it and keep reporting.
        failures["fleet"] = f"rebuild aborted: {exc}"

    fed = FederatedRegistry(telemetry=args.telemetry)
    fed.push_layout(f"{args.app}:dist", layout, tag=dist_tag)
    for i in range(args.mirrors):
        fed.add_mirror(f"edge-{i}")
    stale = {f"edge-{i}" for i in range(min(args.stale_mirrors, args.mirrors))}
    if stale:
        # Extra origin generations the stale mirrors will never see, so
        # they land past the staleness SLO (never-synced lag is
        # generation+1).
        for _ in range(2):
            fed.push_layout(f"{args.app}:dist", layout, tag=dist_tag)
    for name in sorted(fed.mirrors):
        if name not in stale:
            fed.sync_mirror(name)

    controlplane = args.telemetry.controlplane
    controlplane.finalize()
    report = controlplane.health(federation=fed, audit=True,
                                 failures=failures)
    print(f"adapted image: {ref if ref else '(rebuild failed)'}")
    print()
    print(render_health_report(report))
    print()
    print(render_alerts(controlplane.rules))
    print()
    print(render_hot_paths(controlplane.profiler, k=args.top))
    return report.exit_code


def cmd_serve(args: argparse.Namespace) -> int:
    """``coMtainer serve``: a seeded multi-tenant chaos workload through
    the adaptation service.

    ``--tenants`` tenants submit ``--requests`` requests each, arrival
    times and priorities drawn deterministically from ``--seed``, over
    an app pool small enough to exercise the shared cache's single-
    flight dedup.  ``--noisy`` makes tenant 0 submit at 10x the fair
    rate (the WFQ scheduler contains the damage); ``--fault-rate``
    arms seeded transfer/worker faults so the circuit breakers and the
    degradation ladder have something to do.  ``--durable`` backs the
    service with a write-ahead log; ``--crash-at T`` (implies
    ``--durable``) kills the simulated process at T seconds and restarts
    it from the WAL — recovered/resumed requests show in the report.
    Exit code 1 when any admitted request is lost (never expected),
    else 0.
    """
    import random as _random

    from repro.reporting import render_service_report
    from repro.resilience import FaultInjector
    from repro.service import (
        PRIORITY_BATCH,
        PRIORITY_HIGH,
        PRIORITY_NORMAL,
        AdaptationService,
        ServiceCrash,
        TERMINAL_STATUSES,
    )

    system = SYSTEMS[args.system]
    injector = None
    if args.fault_rate > 0:
        injector = FaultInjector(
            seed=args.seed,
            rate=args.fault_rate,
            worker_crash_rate=args.fault_rate / 2,
            worker_flaky_rate=args.fault_rate / 2,
        )
    durable = args.durable or args.crash_at is not None
    service = AdaptationService(
        system=system,
        workers=args.workers,
        seed=args.seed,
        injector=injector,
        queue_capacity=args.queue_capacity,
        telemetry=args.telemetry if args.telemetry.enabled else None,
        durable=durable,
        crash_at=args.crash_at,
    )
    apps = [a.strip() for a in args.apps.split(",") if a.strip()]
    rng = _random.Random(f"comtainer-serve:{args.seed}")
    for i in range(args.tenants):
        service.add_tenant(
            f"tenant-{i}",
            weight=2.0 if i == 0 else 1.0,
            max_workers=max(1, args.workers // 2),
        )
    if args.mirrors:
        for i in range(args.mirrors):
            service.add_mirror(f"edge-{i}")
    priorities = (PRIORITY_HIGH, PRIORITY_NORMAL, PRIORITY_NORMAL,
                  PRIORITY_BATCH)
    for i in range(args.tenants):
        count = args.requests * (10 if args.noisy and i == 0 else 1)
        for _ in range(count):
            service.submit(
                f"tenant-{i}",
                rng.choice(apps),
                at=rng.uniform(0.0, args.duration),
                priority=rng.choice(priorities),
                deadline=args.deadline,
            )
    try:
        report = service.run()
    except ServiceCrash as crash:
        print(f"{crash} at t={service.clock.now:.1f}s; "
              f"restarting from the WAL...")
        service = service.restart(
            telemetry=args.telemetry if args.telemetry.enabled else None)
        report = service.run()
    print(render_service_report(report, telemetry=service.telemetry))
    submitted = sum(t["submitted"] for t in report.tenants.values())
    lost = submitted - len(report.outcomes)
    untyped = [o for o in report.outcomes if o.status not in TERMINAL_STATUSES]
    if lost or untyped:
        print(f"LOST REQUESTS: {lost} unaccounted, {len(untyped)} untyped")
        return 1
    print(f"\nall {submitted} admitted requests accounted for "
          f"({report.summary()})")
    return 0


def cmd_tables(args: argparse.Namespace) -> int:
    from repro.reporting import render_table, table1_rows, table2_rows

    print(render_table(["", "x86_64", "aarch64"], table1_rows()))
    print()
    print(render_table(["App", "Wkld", "LoC"], table2_rows()))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="comtainer-demo",
        description="coMtainer (SC'25) reproduction demo CLI",
    )
    parser.add_argument("-v", "--verbose", action="count", default=0,
                        help="more logging (-v INFO, -vv DEBUG)")
    parser.add_argument("-q", "--quiet", action="count", default=0,
                        help="less logging (-q ERROR, -qq CRITICAL)")
    parser.add_argument("--trace", action="store_true",
                        help="record telemetry and print the span tree")
    parser.add_argument("--trace-out", metavar="FILE", default=None,
                        help="write Chrome trace-event JSON to FILE")
    parser.add_argument("--metrics", action="store_true",
                        help="print the Prometheus-style metrics dump")
    parser.add_argument("--slo", action="store_true",
                        help="sample metrics on the control-plane cadence "
                             "and evaluate the built-in SLO rules")
    parser.add_argument("--profile-out", metavar="FILE", default=None,
                        help="write the cost profiler's collapsed-stack "
                             "text (phase as leaf frame, ns values) to FILE")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("schemes", help="measure a workload under all schemes")
    p.add_argument("workload")
    p.add_argument("--system", choices=sorted(SYSTEMS), default="x86")
    p.set_defaults(fn=cmd_schemes)

    p = sub.add_parser("adapt", help="run the coMtainer workflow for an app")
    p.add_argument("app")
    p.add_argument("--system", choices=sorted(SYSTEMS), default="x86")
    p.add_argument("--lto", action="store_true")
    p.add_argument("--pgo", metavar="WORKLOAD", default=None)
    p.add_argument("--jobs", type=int, default=1, metavar="N",
                   help="parallel rebuild workers (simulated makespan)")
    p.add_argument("--speculate", dest="speculate", action="store_true",
                   default=True,
                   help="speculatively duplicate straggler groups (default)")
    p.add_argument("--no-speculate", dest="speculate", action="store_false",
                   help="disable speculative re-execution of stragglers")
    p.add_argument("--max-worker-failures", type=int, default=3, metavar="N",
                   help="flaky strikes before a rebuild worker is blacklisted")
    p.add_argument("--incremental", dest="incremental", action="store_true",
                   default=True,
                   help="prune unchanged command groups against the previous "
                        "rebuild before scheduling (default)")
    p.add_argument("--no-incremental", dest="incremental",
                   action="store_false",
                   help="force full re-execution even when a previous "
                        "rebuild exists")
    p.add_argument("--deadline", type=float, default=None, metavar="SECONDS",
                   help="simulated-seconds budget per rebuild; a miss is "
                        "reported as deadline_exceeded (journal resumable), "
                        "not a traceback")
    p.set_defaults(fn=cmd_adapt)

    p = sub.add_parser("trace", help="traced adaptation + stage breakdown")
    p.add_argument("app")
    p.add_argument("--system", choices=sorted(SYSTEMS), default="x86")
    p.add_argument("--workload", metavar="WORKLOAD", default=None,
                   help="run the optimized (LTO+PGO) pipeline for WORKLOAD")
    p.add_argument("--out", metavar="FILE", default=None,
                   help="write Chrome trace-event JSON to FILE")
    p.add_argument("--jobs", type=int, default=1, metavar="N",
                   help="parallel rebuild workers (simulated makespan)")
    p.add_argument("--speculate", dest="speculate", action="store_true",
                   default=True,
                   help="speculatively duplicate straggler groups (default)")
    p.add_argument("--no-speculate", dest="speculate", action="store_false",
                   help="disable speculative re-execution of stragglers")
    p.add_argument("--max-worker-failures", type=int, default=3, metavar="N",
                   help="flaky strikes before a rebuild worker is blacklisted")
    p.set_defaults(fn=cmd_trace)

    p = sub.add_parser("analyze", help="show an app's process models")
    p.add_argument("app")
    p.set_defaults(fn=cmd_analyze)

    p = sub.add_parser("crossisa", help="cross-ISA feasibility analysis")
    p.add_argument("app")
    p.add_argument("--target", choices=["x86-64", "aarch64"], default="aarch64")
    p.set_defaults(fn=cmd_crossisa)

    p = sub.add_parser("inspect", help="inspect an app image's layer stack")
    p.add_argument("app")
    p.add_argument("--extended", action="store_true",
                   help="inspect the +coM extended image instead")
    p.set_defaults(fn=cmd_inspect)

    p = sub.add_parser("fsck", help="verify (and repair) a saved OCI layout")
    p.add_argument("path", help="layout directory written by OCILayout.save")
    p.add_argument("--repair", action="store_true",
                   help="quarantine corrupt blobs, repair from the given "
                        "sources, and atomically rewrite the directory")
    p.add_argument("--source", action="append", metavar="DIR", default=[],
                   help="replica layout directory to repair from (repeatable)")
    p.add_argument("--app", default=None,
                   help="app whose extended image is regenerated as a "
                        "last-resort repair source")
    p.add_argument("--federation", action="store_true",
                   help="treat PATH as the origin and every --source as a "
                        "replica; audit (and with --repair, heal) replica "
                        "divergence")
    p.set_defaults(fn=cmd_fsck)

    p = sub.add_parser(
        "mirror",
        help="federated registry demo: sync N edge mirrors and show status",
    )
    p.add_argument("action", choices=["sync", "status", "promote"])
    p.add_argument("app")
    p.add_argument("--mirrors", type=int, default=3, metavar="N",
                   help="edge mirrors to fan the origin out to (default 3)")
    p.add_argument("--seed", type=int, default=0,
                   help="fault-injection seed (with --fault-rate)")
    p.add_argument("--fault-rate", type=float, default=0.0, metavar="R",
                   help="transient fault rate at mirror.sync/transfer.chunk "
                        "(corruption injected at R/2)")
    p.add_argument("--chunk-size", type=int, default=None, metavar="BYTES",
                   help="transfer chunk size (default 64 KiB)")
    p.set_defaults(fn=cmd_mirror)

    p = sub.add_parser(
        "health",
        help="adaptation + mirror fan-out scored into component health",
    )
    p.add_argument("app")
    p.add_argument("--system", choices=sorted(SYSTEMS), default="x86")
    p.add_argument("--jobs", type=int, default=2, metavar="N",
                   help="parallel rebuild workers (default 2)")
    p.add_argument("--mirrors", type=int, default=2, metavar="N",
                   help="edge mirrors to fan the origin out to (default 2)")
    p.add_argument("--stale-mirrors", type=int, default=0, metavar="N",
                   help="mirrors deliberately left behind the origin")
    p.add_argument("--fault-rate", type=float, default=0.0, metavar="R",
                   help="seeded rebuild-worker crash/flake rate")
    p.add_argument("--seed", type=int, default=0,
                   help="fault-injection seed (with --fault-rate)")
    p.add_argument("--cadence", type=float, default=None, metavar="S",
                   help="sampling cadence in simulated seconds")
    p.add_argument("--top", type=int, default=10, metavar="K",
                   help="hot-path rows to print (default 10)")
    p.set_defaults(fn=cmd_health)

    p = sub.add_parser(
        "serve",
        help="multi-tenant adaptation service under a seeded chaos workload",
    )
    p.add_argument("--system", choices=sorted(SYSTEMS), default="x86")
    p.add_argument("--tenants", type=int, default=3, metavar="N",
                   help="tenants submitting work (default 3)")
    p.add_argument("--requests", type=int, default=4, metavar="N",
                   help="requests per tenant (default 4)")
    p.add_argument("--workers", type=int, default=8, metavar="N",
                   help="global rebuild worker pool (default 8)")
    p.add_argument("--queue-capacity", type=int, default=16, metavar="N",
                   help="admission queue capacity (default 16)")
    p.add_argument("--duration", type=float, default=60.0, metavar="S",
                   help="arrival window in simulated seconds (default 60)")
    p.add_argument("--deadline", type=float, default=None, metavar="S",
                   help="per-request deadline in simulated seconds")
    p.add_argument("--apps", default="minimd,hpccg,comd", metavar="A,B,...",
                   help="app pool arrivals draw from")
    p.add_argument("--noisy", action="store_true",
                   help="tenant 0 submits at 10x the fair rate")
    p.add_argument("--mirrors", type=int, default=0, metavar="N",
                   help="federation mirrors synced after completions")
    p.add_argument("--fault-rate", type=float, default=0.0, metavar="R",
                   help="seeded transient transfer/worker fault rate")
    p.add_argument("--seed", type=int, default=0,
                   help="workload and fault-injection seed")
    p.add_argument("--durable", action="store_true",
                   help="back the service with a write-ahead log")
    p.add_argument("--crash-at", type=float, default=None, metavar="T",
                   help="crash the simulated process at T seconds and "
                        "restart it from the WAL (implies --durable)")
    p.set_defaults(fn=cmd_serve)

    p = sub.add_parser("tables", help="print Tables 1 and 2")
    p.set_defaults(fn=cmd_tables)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    from repro.telemetry import (
        NULL_TELEMETRY,
        Telemetry,
        chrome_trace_json,
        prometheus_text,
        render_span_tree,
    )

    args = build_parser().parse_args(argv)
    configure_logging(verbose=args.verbose, quiet=args.quiet)
    args.telemetry = Telemetry() if _wants_telemetry(args) else NULL_TELEMETRY
    if _wants_controlplane(args):
        from repro.telemetry import ControlPlane

        cadence = getattr(args, "cadence", None)
        if cadence is None and args.command == "health":
            cadence = 0.5
        kwargs = {} if cadence is None else {"cadence": cadence}
        ControlPlane(args.telemetry, **kwargs)
    rc = args.fn(args)
    controlplane = args.telemetry.controlplane
    if controlplane is not None:
        controlplane.finalize()
    if args.trace:
        print()
        print(render_span_tree(args.telemetry))
    trace_out = args.trace_out or getattr(args, "out", None)
    if trace_out:
        with open(trace_out, "w", encoding="utf-8") as fh:
            fh.write(chrome_trace_json(args.telemetry))
        print(f"trace written: {trace_out}")
    if args.profile_out:
        with open(args.profile_out, "w", encoding="utf-8") as fh:
            fh.write(controlplane.profiler.collapsed_stack())
        print(f"profile written: {args.profile_out}")
    if args.slo and args.command != "health":
        from repro.reporting import render_alerts

        print()
        print(render_alerts(controlplane.rules))
    if args.metrics:
        print()
        print(prometheus_text(args.telemetry.metrics), end="")
        if controlplane is not None:
            print(controlplane.rules.alerts_text(), end="")
    return rc


if __name__ == "__main__":
    sys.exit(main())
