"""``comtainer-demo``: a small CLI over the reproduction.

Subcommands::

    comtainer-demo schemes  <workload> [--system x86|arm]   # Figure 9 row
    comtainer-demo adapt    <app>      [--system ...] [--lto] [--pgo WKLD]
    comtainer-demo analyze  <app>                          # process models
    comtainer-demo crossisa <app>      [--target aarch64]  # Figure 11 row
    comtainer-demo inspect  <app>      [--extended]        # layer stack
    comtainer-demo tables                                  # Tables 1 & 2
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.sysmodel import SYSTEMS


def _session(system_key: str):
    from repro.core.workflow import ComtainerSession

    return ComtainerSession(system=SYSTEMS[system_key])


def cmd_schemes(args: argparse.Namespace) -> int:
    from repro.core.workflow import measure_schemes
    from repro.reporting import render_table

    session = _session(args.system)
    times = measure_schemes(session, args.workload)
    rows = [(scheme, seconds) for scheme, seconds in times.items()]
    print(render_table(["scheme", "time (s)"], rows))
    return 0


def cmd_adapt(args: argparse.Namespace) -> int:
    from repro.apps import get_app
    from repro.core.workflow import build_extended_image, system_side_adapt
    from repro.containers import ContainerEngine
    from repro.perf import attach_perf

    system = SYSTEMS[args.system]
    user = ContainerEngine(arch=system.arch)
    layout, dist_tag = build_extended_image(user, get_app(args.app))
    engine = ContainerEngine(arch=system.arch)
    recorder = attach_perf(engine, system)
    ref = system_side_adapt(
        engine, layout, system, recorder=recorder,
        lto=args.lto, pgo_workload=args.pgo, ref=f"{args.app}:adapted",
    )
    print(f"adapted image: {ref}")
    print(f"layout tags  : {layout.tags()}")
    return 0


def cmd_analyze(args: argparse.Namespace) -> int:
    from repro.apps import get_app
    from repro.containers import ContainerEngine
    from repro.core.cache.storage import decode_cache
    from repro.core.workflow import build_extended_image

    user = ContainerEngine(arch="amd64")
    layout, dist_tag = build_extended_image(user, get_app(args.app))
    models, sources, _ = decode_cache(layout, dist_tag)
    print(json.dumps(models.summary(), indent=2, default=str))
    print(f"cached sources: {len(sources)}")
    return 0


def cmd_crossisa(args: argparse.Namespace) -> int:
    from repro.apps import get_app
    from repro.containers import ContainerEngine
    from repro.core.cache.storage import decode_cache
    from repro.core.crossisa import analyze_cross_isa
    from repro.core.workflow import build_extended_image

    user = ContainerEngine(arch="amd64")
    layout, dist_tag = build_extended_image(user, get_app(args.app))
    models, sources, _ = decode_cache(layout, dist_tag)
    report = analyze_cross_isa(models, sources, args.target, app=args.app)
    c_add, c_del = report.comtainer_changes
    x_add, x_del = report.xbuild_changes
    print(f"app              : {report.app}")
    print(f"can cross        : {report.can_cross}")
    print(f"ISA-flag commands: {report.flag_lines}")
    print(f"inline asm       : {report.asm_guarded} guarded, "
          f"{report.asm_unguarded} unguarded")
    print(f"coMtainer changes: +{c_add}/-{c_del}")
    print(f"xbuild changes   : +{x_add}/-{x_del}")
    return 0 if report.can_cross else 1


def cmd_inspect(args: argparse.Namespace) -> int:
    from repro.apps import get_app
    from repro.containers import ContainerEngine
    from repro.core.cache.storage import extended_tag
    from repro.core.workflow import build_extended_image
    from repro.oci.inspect import inspect_image

    user = ContainerEngine(arch="amd64")
    layout, dist_tag = build_extended_image(user, get_app(args.app))
    tag = extended_tag(dist_tag) if args.extended else dist_tag
    summary = inspect_image(layout.resolve(tag))
    print(f"image: {tag}")
    print(summary.render())
    return 0


def cmd_tables(args: argparse.Namespace) -> int:
    from repro.reporting import render_table, table1_rows, table2_rows

    print(render_table(["", "x86_64", "aarch64"], table1_rows()))
    print()
    print(render_table(["App", "Wkld", "LoC"], table2_rows()))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="comtainer-demo",
        description="coMtainer (SC'25) reproduction demo CLI",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("schemes", help="measure a workload under all schemes")
    p.add_argument("workload")
    p.add_argument("--system", choices=sorted(SYSTEMS), default="x86")
    p.set_defaults(fn=cmd_schemes)

    p = sub.add_parser("adapt", help="run the coMtainer workflow for an app")
    p.add_argument("app")
    p.add_argument("--system", choices=sorted(SYSTEMS), default="x86")
    p.add_argument("--lto", action="store_true")
    p.add_argument("--pgo", metavar="WORKLOAD", default=None)
    p.set_defaults(fn=cmd_adapt)

    p = sub.add_parser("analyze", help="show an app's process models")
    p.add_argument("app")
    p.set_defaults(fn=cmd_analyze)

    p = sub.add_parser("crossisa", help="cross-ISA feasibility analysis")
    p.add_argument("app")
    p.add_argument("--target", choices=["x86-64", "aarch64"], default="aarch64")
    p.set_defaults(fn=cmd_crossisa)

    p = sub.add_parser("inspect", help="inspect an app image's layer stack")
    p.add_argument("app")
    p.add_argument("--extended", action="store_true",
                   help="inspect the +coM extended image instead")
    p.set_defaults(fn=cmd_inspect)

    p = sub.add_parser("tables", help="print Tables 1 and 2")
    p.set_defaults(fn=cmd_tables)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
