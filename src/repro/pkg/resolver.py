"""Dependency resolution (the ``apt-get install`` closure).

Given requested package names and a repository pool, compute an install
order: breadth-first over Depends, choosing the newest candidate that
satisfies each version restriction, honouring alternatives (first
satisfiable alternative wins, preferring already-installed packages) and
virtual packages via Provides.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.pkg.depends import Dependency, DependencyClause
from repro.pkg.package import Package
from repro.pkg.repository import RepositoryPool
from repro.pkg.version import version_key


class DependencyError(Exception):
    """A requested package or one of its dependencies cannot be satisfied."""


def _best_candidate(pool: RepositoryPool, dep: Dependency) -> Optional[Package]:
    candidates = [
        pkg
        for pkg in pool.candidates(dep.name)
        if dep.matches(pkg.name, pkg.version)
    ]
    if candidates:
        return max(candidates, key=lambda p: version_key(p.version))
    # Fall back to virtual providers (version restrictions cannot apply
    # to virtual packages, as in dpkg).
    if dep.relation is None:
        providers = pool.providers(dep.name)
        if providers:
            return max(providers, key=lambda p: (p.quality, version_key(p.version)))
    return None


def _pick_alternative(
    pool: RepositoryPool,
    clause: DependencyClause,
    installed: Dict[str, Package],
) -> Optional[Package]:
    # An already-installed package satisfying any alternative wins outright.
    for dep in clause:
        pkg = installed.get(dep.name)
        if pkg is not None and dep.matches(pkg.name, pkg.version):
            return pkg
        for provider in installed.values():
            if dep.relation is None and dep.name in provider.provides_names():
                return provider
    for dep in clause:
        candidate = _best_candidate(pool, dep)
        if candidate is not None:
            return candidate
    return None


def resolve_install(
    names: List[str],
    pool: RepositoryPool,
    installed: Optional[Dict[str, Package]] = None,
) -> List[Package]:
    """Return the packages to install (dependency-ordered, deduplicated).

    Already-installed packages are skipped.  Raises
    :class:`DependencyError` when anything is unsatisfiable.
    """
    installed = dict(installed or {})
    plan: List[Package] = []
    planned: Set[str] = set()

    def visit_package(candidate: Package, chain: List[str]) -> None:
        if candidate.name in chain:
            return  # dependency cycle: already being handled higher up
        if candidate.name in planned or candidate.name in installed:
            return
        planned.add(candidate.name)
        for clause in candidate.depends:
            chosen = _pick_alternative(pool, clause, installed)
            if chosen is None:
                raise DependencyError(
                    f"unsatisfiable dependency of {candidate.name}: {clause.render()}"
                )
            visit_package(chosen, chain + [candidate.name])
        plan.append(candidate)

    for name in names:
        dep = Dependency(name=name)
        existing = installed.get(name)
        if existing is not None:
            continue
        candidate = _best_candidate(pool, dep)
        if candidate is None:
            raise DependencyError(f"unsatisfiable dependency: {dep.render()}")
        visit_package(candidate, [])
    return plan
