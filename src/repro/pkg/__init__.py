"""Debian-style package management substrate.

coMtainer's image model classifies files by consulting the base image's
package manager ("coMtainer currently relies on the package manager of the
base image to analyze the application software stack", §4.6) and its
backend plans *package replacement*: swapping generic dependencies for
system-optimized equivalents.  This package provides the substrate:
Debian version ordering, package/dependency metadata, the dpkg status
database (written into and parsed back out of image filesystems),
synthetic repositories (generic distro + vendor-optimized), a dependency
resolver, and an apt facade that installs packages into a virtual
filesystem.
"""

from repro.pkg.apt import AptFacade
from repro.pkg.database import DpkgDatabase
from repro.pkg.depends import Dependency, DependencyClause, parse_depends
from repro.pkg.package import PackagedFile, Package
from repro.pkg.repository import Repository, RepositoryPool
from repro.pkg.resolver import DependencyError, resolve_install
from repro.pkg.version import compare_versions, version_key

__all__ = [
    "AptFacade",
    "Dependency",
    "DependencyClause",
    "DependencyError",
    "DpkgDatabase",
    "Package",
    "PackagedFile",
    "Repository",
    "RepositoryPool",
    "compare_versions",
    "parse_depends",
    "resolve_install",
    "version_key",
]
