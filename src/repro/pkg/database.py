"""The dpkg installed-package database inside an image filesystem.

State lives where dpkg keeps it: ``/var/lib/dpkg/status`` (control stanzas
of every installed package) and ``/var/lib/dpkg/info/<name>.list`` (the
file list of each package).  coMtainer's front-end parses these paths out
of the *image* to recover the dependency list and the file→package mapping
its image model needs.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.pkg.package import Package
from repro.vfs import VirtualFilesystem

STATUS_PATH = "/var/lib/dpkg/status"
INFO_DIR = "/var/lib/dpkg/info"


class DpkgDatabase:
    """In-memory view of installed packages + their file lists."""

    def __init__(self) -> None:
        self._packages: Dict[str, Package] = {}
        self._file_lists: Dict[str, List[str]] = {}
        # Incremental persistence state: control stanzas are cached per
        # package and ``.list`` files are only rewritten for packages
        # touched since the last write_to on the same filesystem.
        self._control_cache: Dict[str, str] = {}
        self._dirty_lists: set = set()
        self._lists_fs: Optional[VirtualFilesystem] = None

    def __len__(self) -> int:
        return len(self._packages)

    def __contains__(self, name: str) -> bool:
        return name in self._packages

    def names(self) -> List[str]:
        return sorted(self._packages)

    def get(self, name: str) -> Package:
        return self._packages[name]

    def try_get(self, name: str) -> Optional[Package]:
        return self._packages.get(name)

    def packages(self) -> List[Package]:
        return [self._packages[name] for name in self.names()]

    def file_list(self, name: str) -> List[str]:
        return list(self._file_lists.get(name, []))

    def add(self, package: Package, file_paths: Optional[List[str]] = None) -> None:
        self._packages[package.name] = package
        if file_paths is None:
            file_paths = [f.path for f in package.files]
        self._file_lists[package.name] = sorted(file_paths)
        self._control_cache.pop(package.name, None)
        self._dirty_lists.add(package.name)

    def remove(self, name: str) -> None:
        self._packages.pop(name, None)
        self._file_lists.pop(name, None)
        self._control_cache.pop(name, None)
        self._dirty_lists.discard(name)

    def owner_of(self, path: str) -> Optional[str]:
        for name, files in self._file_lists.items():
            if path in files:
                return name
        return None

    def file_index(self) -> Dict[str, str]:
        """Map every packaged path to its owning package name."""
        index: Dict[str, str] = {}
        for name in self.names():
            for path in self._file_lists.get(name, []):
                index[path] = name
        return index

    def provides_index(self) -> Dict[str, str]:
        """Map every provided (virtual or real) name to the provider."""
        index: Dict[str, str] = {}
        for pkg in self.packages():
            for provided in pkg.provides_names():
                index.setdefault(provided, pkg.name)
        return index

    # ------------------------------------------------------------------
    # filesystem persistence
    # ------------------------------------------------------------------

    def write_to(self, fs: VirtualFilesystem) -> None:
        stanzas = []
        for name in self.names():
            text = self._control_cache.get(name)
            if text is None:
                text = self._packages[name].to_control()
                self._control_cache[name] = text
            stanzas.append(text)
        fs.write_file(STATUS_PATH, "\n\n".join(stanzas) + "\n", create_parents=True)
        fs.makedirs(INFO_DIR)
        # A filesystem seen before only needs the lists touched since the
        # last write; any other target gets the full set.
        if fs is self._lists_fs:
            to_write = sorted(n for n in self._dirty_lists if n in self._packages)
        else:
            to_write = self.names()
            self._lists_fs = fs
        for name in to_write:
            listing = "\n".join(self._file_lists.get(name, [])) + "\n"
            fs.write_file(f"{INFO_DIR}/{name}.list", listing, create_parents=True)
        self._dirty_lists.clear()

    @staticmethod
    def read_from(fs: VirtualFilesystem) -> "DpkgDatabase":
        db = DpkgDatabase()
        if not fs.exists(STATUS_PATH):
            return db
        text = fs.read_text(STATUS_PATH)
        for stanza in text.split("\n\n"):
            if not stanza.strip():
                continue
            package = Package.from_control(stanza)
            list_path = f"{INFO_DIR}/{package.name}.list"
            files: List[str] = []
            if fs.exists(list_path):
                files = [
                    line for line in fs.read_text(list_path).splitlines() if line.strip()
                ]
            db.add(package, file_paths=files)
        return db
