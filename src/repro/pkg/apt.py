"""The apt facade: install/remove packages in a virtual filesystem.

Materializes package payloads into the filesystem (program markers for
executables, deterministic synthetic content for libraries and data) and
keeps the dpkg database inside the filesystem up to date — so images built
on top carry a parseable package manifest, exactly what coMtainer's image
model consumes.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro import simbin
from repro.pkg.rpm import read_package_database
from repro.pkg.package import Package, PackagedFile
from repro.pkg.repository import RepositoryPool
from repro.pkg.resolver import resolve_install
from repro.vfs import SyntheticContent, VirtualFilesystem
from repro.vfs import paths as vpath


class AptFacade:
    """Binds a repository pool to a filesystem and mutates both coherently."""

    def __init__(self, fs: VirtualFilesystem, pool: RepositoryPool) -> None:
        self.fs = fs
        self.pool = pool
        self.db = read_package_database(fs)

    # ------------------------------------------------------------------

    def installed(self) -> Dict[str, Package]:
        return {name: self.db.get(name) for name in self.db.names()}

    def is_installed(self, name: str) -> bool:
        return name in self.db

    def install(self, names: List[str]) -> List[Package]:
        """Install *names* plus their dependency closure; returns what was added."""
        plan = resolve_install(names, self.pool, installed=self.installed())
        for package in plan:
            self._materialize(package)
            self.db.add(package)
        if plan:
            self.db.write_to(self.fs)
        return plan

    def remove(self, name: str) -> None:
        if name not in self.db:
            return
        for path in self.db.file_list(name):
            self.fs.remove(path, recursive=True, missing_ok=True)
        self.db.remove(name)
        self.db.write_to(self.fs)

    def replace(self, old_name: str, new_package: Package) -> None:
        """Swap an installed package for an equivalent (optimized) one.

        This is the primitive behind coMtainer's library replacement
        (`libo` in the paper's Figure 3): the generic package's files are
        removed, the optimized package's files are laid down, and compat
        symlinks are created so paths recorded in binaries keep resolving.
        """
        old_files = self.db.file_list(old_name) if old_name in self.db else []
        self.remove(old_name)
        self._materialize(new_package)
        self.db.add(new_package)
        # Compatibility links: generic library paths -> optimized libraries.
        new_libs = [f for f in new_package.files if f.kind == "library"]
        for old_path in old_files:
            if self.fs.lexists(old_path):
                continue
            base = vpath.basename(old_path)
            for new_file in new_libs:
                if _library_stem(vpath.basename(new_file.path)) == _library_stem(base):
                    self.fs.symlink(new_file.path, old_path, create_parents=True)
                    break
        self.db.write_to(self.fs)

    # ------------------------------------------------------------------

    def _materialize(self, package: Package) -> None:
        for pfile in package.files:
            self._write_file(package, pfile)

    def _write_file(self, package: Package, pfile: PackagedFile) -> None:
        if pfile.symlink_to is not None:
            self.fs.remove(pfile.path, recursive=True, missing_ok=True)
            self.fs.symlink(pfile.symlink_to, pfile.path, create_parents=True)
            return
        if pfile.program is not None:
            meta = dict(pfile.program_meta)
            meta.setdefault("package", package.name)
            data = simbin.program_marker(pfile.program, **meta)
            self.fs.write_file(pfile.path, data, mode=pfile.mode, create_parents=True)
            return
        seed = f"{package.name}:{package.version}:{pfile.path}"
        content = SyntheticContent(seed, max(pfile.size, 16))
        self.fs.write_file(pfile.path, content, mode=pfile.mode, create_parents=True)


def _library_stem(filename: str) -> str:
    """``libopenblas.so.0`` -> ``libopenblas`` (grouping key for compat links)."""
    stem = filename
    while True:
        base, _, ext = stem.rpartition(".")
        if not base or not (ext == "so" or ext.isdigit()):
            return stem
        stem = base
