"""Package metadata and packaged file records."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.pkg.depends import DependencyClause, parse_depends, render_depends

# File kinds; the image model uses these to understand what a package put
# where (libraries are replacement candidates, binaries may be toolchain
# entry points, etc.).
FILE_BINARY = "binary"
FILE_LIBRARY = "library"
FILE_HEADER = "header"
FILE_CONFIG = "config"
FILE_DATA = "data"
FILE_DOC = "doc"


@dataclass(frozen=True)
class PackagedFile:
    """One file shipped by a package.

    ``program`` names a simulated program implementation (see
    :mod:`repro.simbin`) for executable payloads; ``program_meta`` carries
    its metadata (e.g. the toolchain a compiler driver belongs to).
    Non-program payloads get deterministic synthetic content of ``size``.
    """

    path: str
    size: int = 0
    kind: str = FILE_DATA
    mode: int = 0o644
    program: Optional[str] = None
    program_meta: Dict[str, Any] = field(default_factory=dict)
    symlink_to: Optional[str] = None

    def __post_init__(self) -> None:
        if self.program is not None and self.kind != FILE_BINARY:
            object.__setattr__(self, "kind", FILE_BINARY)
        if self.program is not None and self.mode == 0o644:
            object.__setattr__(self, "mode", 0o755)


@dataclass
class Package:
    """A binary package: identity, relationships, payload, coMtainer hints.

    ``equivalent_of`` names the generic package this (vendor-optimized)
    package can substitute — the key input to coMtainer's package
    replacement planning.  ``quality`` is the relative performance factor
    of its code versus the generic implementation (1.0 = generic); the
    analytic performance model consumes it.  ``tags`` mark functional
    roles ("blas", "mpi", "toolchain", "hsn-plugin", ...).
    """

    name: str
    version: str
    architecture: str = "amd64"
    section: str = "libs"
    priority: str = "optional"
    description: str = ""
    depends: List[DependencyClause] = field(default_factory=list)
    provides: List[str] = field(default_factory=list)
    files: List[PackagedFile] = field(default_factory=list)
    equivalent_of: Optional[str] = None
    quality: float = 1.0
    tags: Tuple[str, ...] = ()

    @property
    def key(self) -> Tuple[str, str, str]:
        return (self.name, self.version, self.architecture)

    @property
    def installed_size(self) -> int:
        return sum(f.size for f in self.files)

    def provides_names(self) -> List[str]:
        return [self.name] + list(self.provides)

    def has_tag(self, tag: str) -> bool:
        return tag in self.tags

    # -- control-file rendering (dpkg status format) ------------------------

    def to_control(self) -> str:
        lines = [
            f"Package: {self.name}",
            "Status: install ok installed",
            f"Priority: {self.priority}",
            f"Section: {self.section}",
            f"Installed-Size: {max(1, self.installed_size // 1024)}",
            f"Architecture: {self.architecture}",
            f"Version: {self.version}",
        ]
        if self.depends:
            lines.append(f"Depends: {render_depends(self.depends)}")
        if self.provides:
            lines.append("Provides: " + ", ".join(self.provides))
        if self.equivalent_of:
            lines.append(f"X-Comtainer-Equivalent-Of: {self.equivalent_of}")
        if self.quality != 1.0:
            lines.append(f"X-Comtainer-Quality: {self.quality}")
        if self.tags:
            lines.append("X-Comtainer-Tags: " + ", ".join(self.tags))
        desc = self.description or f"{self.name} (synthetic package)"
        lines.append(f"Description: {desc}")
        return "\n".join(lines)

    @staticmethod
    def from_control(text: str) -> "Package":
        fields: Dict[str, str] = {}
        for line in text.splitlines():
            if not line.strip() or line.startswith(" "):
                continue
            key, _, value = line.partition(":")
            fields[key.strip()] = value.strip()
        return Package(
            name=fields["Package"],
            version=fields.get("Version", "0"),
            architecture=fields.get("Architecture", "amd64"),
            section=fields.get("Section", "libs"),
            priority=fields.get("Priority", "optional"),
            description=fields.get("Description", ""),
            depends=parse_depends(fields.get("Depends", "")),
            provides=[
                p.strip() for p in fields.get("Provides", "").split(",") if p.strip()
            ],
            equivalent_of=fields.get("X-Comtainer-Equivalent-Of") or None,
            quality=float(fields.get("X-Comtainer-Quality", "1.0")),
            tags=tuple(
                t.strip() for t in fields.get("X-Comtainer-Tags", "").split(",") if t.strip()
            ),
        )
