"""RPM package database support.

The paper's prototype "only implements parsing for dpkg/apt and supports
Debian-based distributions only.  However, our approach is equally
applicable to other package managers, such as RPM" (§4.6).  This module
provides that: an :class:`RpmDatabase` with the same interface as
:class:`~repro.pkg.database.DpkgDatabase`, persisted in RPM's home
(``/var/lib/rpm``) as header stanzas plus embedded file lists — so
images from RPM-based distributions (the AArch64 testbed runs Kylin, an
RPM-based distro) flow through coMtainer's analysis unchanged.

:func:`read_package_database` auto-detects which database an image
carries; all coMtainer consumers go through it.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Union

from repro.pkg.database import STATUS_PATH, DpkgDatabase
from repro.pkg.package import Package
from repro.vfs import VirtualFilesystem

RPM_DB_PATH = "/var/lib/rpm/Packages.json"


class RpmDatabase(DpkgDatabase):
    """Installed-package database in RPM layout.

    Inherits all in-memory behaviour from :class:`DpkgDatabase`; only the
    on-image persistence format differs (one JSON document holding header
    fields and file lists, standing in for the BDB/ndb Packages file).
    """

    # -- persistence ---------------------------------------------------

    def write_to(self, fs: VirtualFilesystem) -> None:  # type: ignore[override]
        headers = []
        for name in self.names():
            pkg = self.get(name)
            headers.append({
                "Name": pkg.name,
                "Version": pkg.version,
                "Architecture": _rpm_arch(pkg.architecture),
                "Group": pkg.section,
                "Requires": [c.render() for c in pkg.depends],
                "Provides": list(pkg.provides),
                "Summary": pkg.description,
                "X-Comtainer-Equivalent-Of": pkg.equivalent_of,
                "X-Comtainer-Quality": pkg.quality,
                "X-Comtainer-Tags": list(pkg.tags),
                "Files": self.file_list(name),
            })
        fs.write_file(
            RPM_DB_PATH,
            json.dumps({"headers": headers}, sort_keys=True, indent=1),
            create_parents=True,
        )

    @staticmethod
    def read_from(fs: VirtualFilesystem) -> "RpmDatabase":  # type: ignore[override]
        db = RpmDatabase()
        if not fs.exists(RPM_DB_PATH):
            return db
        from repro.pkg.depends import parse_depends

        doc = json.loads(fs.read_text(RPM_DB_PATH))
        for header in doc.get("headers", []):
            package = Package(
                name=header["Name"],
                version=header.get("Version", "0"),
                architecture=_deb_arch(header.get("Architecture", "x86_64")),
                section=header.get("Group", "libs"),
                description=header.get("Summary", ""),
                depends=parse_depends(", ".join(header.get("Requires", []))),
                provides=list(header.get("Provides", [])),
                equivalent_of=header.get("X-Comtainer-Equivalent-Of"),
                quality=float(header.get("X-Comtainer-Quality", 1.0)),
                tags=tuple(header.get("X-Comtainer-Tags", [])),
            )
            db.add(package, file_paths=list(header.get("Files", [])))
        return db


_RPM_ARCH = {"amd64": "x86_64", "arm64": "aarch64", "all": "noarch"}
_DEB_ARCH = {v: k for k, v in _RPM_ARCH.items()}


def _rpm_arch(deb: str) -> str:
    return _RPM_ARCH.get(deb, deb)


def _deb_arch(rpm: str) -> str:
    return _DEB_ARCH.get(rpm, rpm)


PackageDatabase = Union[DpkgDatabase, RpmDatabase]


def detect_database_format(fs: VirtualFilesystem) -> Optional[str]:
    """``"dpkg"`` / ``"rpm"`` / None for an image filesystem."""
    if fs.exists(STATUS_PATH):
        return "dpkg"
    if fs.exists(RPM_DB_PATH):
        return "rpm"
    return None


def read_package_database(fs: VirtualFilesystem) -> PackageDatabase:
    """Read whichever package database the image carries (empty dpkg DB
    when it has none)."""
    fmt = detect_database_format(fs)
    if fmt == "rpm":
        return RpmDatabase.read_from(fs)
    return DpkgDatabase.read_from(fs)


def database_for_format(fmt: str) -> PackageDatabase:
    if fmt == "rpm":
        return RpmDatabase()
    if fmt == "dpkg":
        return DpkgDatabase()
    raise ValueError(f"unknown package database format: {fmt!r}")
