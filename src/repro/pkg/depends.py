"""Parsing and evaluating dpkg dependency fields.

A ``Depends:`` field is a comma-separated list of clauses; each clause is a
``|``-separated list of alternatives; each alternative is a package name
with an optional parenthesized version restriction, e.g.::

    libc6 (>= 2.34), libblas3 | libopenblas0, mpi-runtime
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import List, Optional

from repro.pkg.version import satisfies

_DEP_RE = re.compile(
    r"^\s*(?P<name>[a-z0-9][a-z0-9.+-]*)\s*"
    r"(?:\(\s*(?P<rel><<|<=|=|>=|>>)\s*(?P<ver>[^\s)]+)\s*\))?\s*$"
)


@dataclass(frozen=True)
class Dependency:
    """A single alternative: package name + optional version restriction."""

    name: str
    relation: Optional[str] = None
    version: Optional[str] = None

    def matches(self, name: str, version: str) -> bool:
        if name != self.name:
            return False
        if self.relation is None or self.version is None:
            return True
        return satisfies(version, self.relation, self.version)

    def render(self) -> str:
        if self.relation:
            return f"{self.name} ({self.relation} {self.version})"
        return self.name


@dataclass(frozen=True)
class DependencyClause:
    """A group of alternatives; satisfied when any alternative is."""

    alternatives: tuple

    def render(self) -> str:
        return " | ".join(dep.render() for dep in self.alternatives)

    def __iter__(self):
        return iter(self.alternatives)


def parse_dependency(text: str) -> Dependency:
    match = _DEP_RE.match(text)
    if not match:
        raise ValueError(f"malformed dependency: {text!r}")
    return Dependency(
        name=match.group("name"),
        relation=match.group("rel"),
        version=match.group("ver"),
    )


def parse_depends(text: str) -> List[DependencyClause]:
    """Parse a full Depends: field into clauses."""
    clauses: List[DependencyClause] = []
    text = text.strip()
    if not text:
        return clauses
    for clause_text in text.split(","):
        alts = tuple(parse_dependency(alt) for alt in clause_text.split("|"))
        clauses.append(DependencyClause(alternatives=alts))
    return clauses


def render_depends(clauses: List[DependencyClause]) -> str:
    return ", ".join(clause.render() for clause in clauses)
