"""Package repositories and repository pools."""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.pkg.package import Package
from repro.pkg.version import version_key


class Repository:
    """A named collection of packages for one architecture."""

    def __init__(self, name: str, architecture: str) -> None:
        self.name = name
        self.architecture = architecture
        self._packages: Dict[str, List[Package]] = {}

    def add(self, package: Package) -> Package:
        if package.architecture not in (self.architecture, "all"):
            raise ValueError(
                f"package {package.name} is {package.architecture}, "
                f"repository {self.name} is {self.architecture}"
            )
        versions = self._packages.setdefault(package.name, [])
        versions.append(package)
        versions.sort(key=lambda p: version_key(p.version))
        return package

    def names(self) -> List[str]:
        return sorted(self._packages)

    def candidates(self, name: str) -> List[Package]:
        """All versions of *name*, oldest to newest."""
        return list(self._packages.get(name, []))

    def latest(self, name: str) -> Optional[Package]:
        versions = self._packages.get(name)
        return versions[-1] if versions else None

    def providers(self, virtual_name: str) -> List[Package]:
        """Packages that provide *virtual_name* (including themselves)."""
        found: List[Package] = []
        for versions in self._packages.values():
            for pkg in versions:
                if virtual_name in pkg.provides_names():
                    found.append(pkg)
        return sorted(found, key=lambda p: (p.name, version_key(p.version)))

    def optimized_equivalents(self, generic_name: str) -> List[Package]:
        """Packages declaring themselves substitutes for *generic_name*."""
        found: List[Package] = []
        for versions in self._packages.values():
            for pkg in versions:
                if pkg.equivalent_of == generic_name:
                    found.append(pkg)
        return sorted(found, key=lambda p: -p.quality)

    def __len__(self) -> int:
        return sum(len(v) for v in self._packages.values())


class RepositoryPool:
    """An ordered list of repositories; earlier repositories win ties."""

    def __init__(self, repositories: Optional[List[Repository]] = None) -> None:
        self.repositories: List[Repository] = list(repositories or [])

    def add_repository(self, repository: Repository) -> None:
        self.repositories.append(repository)

    def latest(self, name: str) -> Optional[Package]:
        best: Optional[Package] = None
        for repo in self.repositories:
            candidate = repo.latest(name)
            if candidate is None:
                continue
            if best is None or version_key(candidate.version) > version_key(best.version):
                best = candidate
        return best

    def candidates(self, name: str) -> List[Package]:
        out: List[Package] = []
        for repo in self.repositories:
            out.extend(repo.candidates(name))
        return sorted(out, key=lambda p: version_key(p.version))

    def providers(self, virtual_name: str) -> List[Package]:
        out: List[Package] = []
        for repo in self.repositories:
            out.extend(repo.providers(virtual_name))
        return out

    def optimized_equivalents(self, generic_name: str) -> List[Package]:
        out: List[Package] = []
        for repo in self.repositories:
            out.extend(repo.optimized_equivalents(generic_name))
        return sorted(out, key=lambda p: -p.quality)
