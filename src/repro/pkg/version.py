"""Debian version comparison (dpkg's ``verrevcmp`` algorithm).

A version is ``[epoch:]upstream[-revision]``.  Comparison: numeric epoch,
then upstream, then revision, where the string comparison alternates
non-digit runs (compared character-wise with ``~`` < end-of-string <
letters < everything else) and digit runs (compared numerically).
"""

from __future__ import annotations

import functools
from typing import Tuple


def split_version(version: str) -> Tuple[int, str, str]:
    """Split into (epoch, upstream, revision)."""
    epoch = 0
    rest = version
    if ":" in rest:
        head, _, tail = rest.partition(":")
        if head.isdigit():
            epoch = int(head)
            rest = tail
    upstream, _, revision = rest.rpartition("-")
    if not upstream:  # no hyphen at all
        return epoch, rest, ""
    return epoch, upstream, revision


def _char_order(char: str) -> int:
    if char == "~":
        return -1
    if char.isalpha():
        return ord(char)
    # Non-alphabetic, non-digit characters sort after all letters.
    return ord(char) + 256


def _verrevcmp(a: str, b: str) -> int:
    ia, ib = 0, 0
    while ia < len(a) or ib < len(b):
        # Non-digit part.
        first_diff = 0
        while (ia < len(a) and not a[ia].isdigit()) or (
            ib < len(b) and not b[ib].isdigit()
        ):
            ac = _char_order(a[ia]) if ia < len(a) and not a[ia].isdigit() else 0
            bc = _char_order(b[ib]) if ib < len(b) and not b[ib].isdigit() else 0
            if ac != bc:
                return -1 if ac < bc else 1
            if ia < len(a) and not a[ia].isdigit():
                ia += 1
            if ib < len(b) and not b[ib].isdigit():
                ib += 1
        # Digit part: skip leading zeros, then compare numerically.
        while ia < len(a) and a[ia] == "0":
            ia += 1
        while ib < len(b) and b[ib] == "0":
            ib += 1
        na = ia
        while na < len(a) and a[na].isdigit():
            na += 1
        nb = ib
        while nb < len(b) and b[nb].isdigit():
            nb += 1
        da, db = a[ia:na], b[ib:nb]
        if len(da) != len(db):
            first_diff = -1 if len(da) < len(db) else 1
        elif da != db:
            first_diff = -1 if da < db else 1
        if first_diff:
            return first_diff
        ia, ib = na, nb
    return 0


def compare_versions(a: str, b: str) -> int:
    """Return -1/0/1 for a<b, a==b, a>b under Debian ordering."""
    ea, ua, ra = split_version(a)
    eb, ub, rb = split_version(b)
    if ea != eb:
        return -1 if ea < eb else 1
    cmp_upstream = _verrevcmp(ua, ub)
    if cmp_upstream:
        return cmp_upstream
    return _verrevcmp(ra, rb)


def version_key(version: str):
    """``sorted(..., key=version_key)`` sorts by Debian ordering."""
    return _VersionKey(version)


@functools.total_ordering
class _VersionKey:
    __slots__ = ("version",)

    def __init__(self, version: str) -> None:
        self.version = version

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, _VersionKey):
            return NotImplemented
        return compare_versions(self.version, other.version) == 0

    def __lt__(self, other: "_VersionKey") -> bool:
        return compare_versions(self.version, other.version) < 0

    def __hash__(self) -> int:  # pragma: no cover - keys are not hashed today
        return hash(self.version)


_RELATION_TESTS = {
    "<<": lambda c: c < 0,
    "<=": lambda c: c <= 0,
    "=": lambda c: c == 0,
    ">=": lambda c: c >= 0,
    ">>": lambda c: c > 0,
}


def satisfies(candidate: str, relation: str, bound: str) -> bool:
    """Test ``candidate <relation> bound`` for a dpkg relation operator."""
    try:
        test = _RELATION_TESTS[relation]
    except KeyError:
        raise ValueError(f"unknown version relation: {relation!r}") from None
    return test(compare_versions(candidate, bound))
