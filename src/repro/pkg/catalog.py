"""Synthetic package ecosystems.

Three repository families, mirroring the paper's setting:

* ``ubuntu-generic`` — the mainstream distro repo a user-side base image
  draws from: core system packages, the GNU toolchain, and generic HPC
  runtime libraries (reference BLAS-ish ``libopenblas0``, plugin-less
  ``libopenmpi3``).
* vendor repos — the system-side optimized stacks: ``intel-hpc`` for the
  x86-64 cluster (icx compilers, MKL-like BLAS, Intel-MPI-like MPI with a
  high-speed-network plugin) and ``phytium-hpc`` for the AArch64 cluster
  (FT compiler kit, FT-tuned BLAS, ftmpi with an HSN plugin).
* ``llvm-generic`` — the freely redistributable alternative the paper's
  artifact ships (Sysenv/Rebase images based on LLVM instead of the
  proprietary vendor toolchains).

Package sizes are calibrated so that the *original* application images
reproduce Table 3: ~170 MiB bases on x86-64, ~95 MiB on AArch64 ("x86-64
has a more bloated software stack").  A computed filler package absorbs
rounding so the targets are hit exactly.
"""

from __future__ import annotations

from typing import Dict, List

from repro.pkg.depends import parse_depends
from repro.pkg.package import (
    FILE_BINARY,
    FILE_DATA,
    FILE_HEADER,
    FILE_LIBRARY,
    Package,
    PackagedFile,
)
from repro.pkg.repository import Repository

MIB = 1024 * 1024

# Final size (bytes) of base system + generic HPC runtime, per architecture.
# Small-app original images in Table 3 are this plus the app's own payload.
BASE_PLUS_RUNTIME_TARGET = {"amd64": int(169.0 * MIB), "arm64": int(93.8 * MIB)}

ARCH_TRIPLE = {"amd64": "x86_64-linux-gnu", "arm64": "aarch64-linux-gnu"}

#: Default ISA names used across the substrate.
ARCH_ISA = {"amd64": "x86-64", "arm64": "aarch64"}


def _lib(arch: str, name: str, size_mib: float, soname_version: str = "0") -> PackagedFile:
    triple = ARCH_TRIPLE[arch]
    return PackagedFile(
        path=f"/usr/lib/{triple}/{name}.so.{soname_version}",
        size=int(size_mib * MIB),
        kind=FILE_LIBRARY,
    )


def _bin(path: str, program: str, **meta) -> PackagedFile:
    return PackagedFile(path=path, size=0, kind=FILE_BINARY, program=program, program_meta=meta)


def _data(path: str, size_mib: float) -> PackagedFile:
    return PackagedFile(path=path, size=int(size_mib * MIB), kind=FILE_DATA)


def _hdr(path: str) -> PackagedFile:
    return PackagedFile(path=path, size=4096, kind=FILE_HEADER)


# ---------------------------------------------------------------------------
# base system
# ---------------------------------------------------------------------------

# (name, amd64 MiB, arm64 MiB) for bulk payload packages.
_BASE_SIZES = [
    ("base-files", 0.4, 0.4),
    ("bash", 1.6, 1.4),
    ("coreutils", 7.2, 5.6),
    ("dpkg", 6.8, 5.2),
    ("apt", 4.2, 3.4),
    ("perl-base", 8.0, 6.5),
    ("libc6", 13.2, 9.8),
    ("libstdc++6", 2.8, 2.3),
    ("libgcc-s1", 0.9, 0.5),
    ("zlib1g", 0.3, 0.2),
    ("libssl3", 5.8, 4.2),
    ("ca-certificates", 1.4, 1.4),
    ("locales", 38.0, 12.0),
    ("ubuntu-meta-data", 52.0, 18.0),
    ("util-linux", 9.5, 7.0),
    ("tar", 1.2, 1.0),
    ("gzip", 0.6, 0.5),
    ("findutils", 1.9, 1.5),
    ("grep", 1.1, 0.9),
    ("sed", 0.9, 0.8),
]

# Shell built-ins and simulated coreutils shipped as program markers.
_CORE_PROGRAMS = {
    "bash": ["/bin/bash", "/bin/sh"],
    "coreutils": [
        "/bin/cp", "/bin/mv", "/bin/rm", "/bin/mkdir", "/bin/ln",
        "/bin/cat", "/bin/echo", "/bin/touch", "/bin/chmod",
        "/usr/bin/install", "/usr/bin/true", "/usr/bin/env",
    ],
    "apt": ["/usr/bin/apt-get", "/usr/bin/apt"],
    "dpkg": ["/usr/bin/dpkg", "/usr/bin/dpkg-query"],
    "tar": ["/bin/tar"],
}


def base_system_packages(arch: str) -> List[Package]:
    """The minimal distro rootfs: Table 3's common image bulk."""
    packages: List[Package] = []
    for name, amd64_mib, arm64_mib in _BASE_SIZES:
        size_mib = amd64_mib if arch == "amd64" else arm64_mib
        files: List[PackagedFile] = []
        for prog_path in _CORE_PROGRAMS.get(name, []):
            prog = prog_path.rsplit("/", 1)[-1]
            files.append(_bin(prog_path, prog))
        remaining = int(size_mib * MIB) - sum(f.size for f in files)
        if remaining > 0:
            files.append(_data(f"/usr/share/{name}/payload.bin", remaining / MIB))
        section = "libs" if name.startswith(("lib", "zlib")) else "admin"
        packages.append(
            Package(
                name=name,
                version="2.38-1ubuntu1" if name != "libc6" else "2.39-0ubuntu8",
                architecture=arch,
                section=section,
                priority="required",
                description=f"{name} (synthetic base package)",
                files=files,
            )
        )
    return packages


def generic_hpc_runtime_packages(arch: str) -> List[Package]:
    """Generic (quality 1.0) HPC runtime libraries of the default stack."""
    triple = ARCH_TRIPLE[arch]
    return [
        Package(
            name="libgfortran5",
            version="12.3.0-1ubuntu1",
            architecture=arch,
            depends=parse_depends("libc6 (>= 2.34)"),
            files=[_lib(arch, "libgfortran", 0.6 if arch == "amd64" else 0.5, "5")],
            tags=("fortran-runtime",),
        ),
        Package(
            name="libopenblas0",
            version="0.3.26+ds-1",
            architecture=arch,
            depends=parse_depends("libc6 (>= 2.34), libgfortran5"),
            provides=["libblas.so.3", "liblapack.so.3"],
            files=[_lib(arch, "libopenblas", 3.2 if arch == "amd64" else 2.8)],
            tags=("blas", "lapack"),
        ),
        Package(
            name="libopenmpi3",
            version="4.1.6-5ubuntu1",
            architecture=arch,
            depends=parse_depends("libc6 (>= 2.34)"),
            provides=["mpi-runtime"],
            files=[
                _lib(arch, "libmpi", 1.4 if arch == "amd64" else 1.2, "40"),
                _bin("/usr/bin/mpirun", "mpirun", mpi="openmpi-generic"),
                _bin("/usr/bin/mpiexec", "mpirun", mpi="openmpi-generic"),
            ],
            tags=("mpi",),
        ),
        Package(
            name="libfftw3-3",
            version="3.3.10-1ubuntu1",
            architecture=arch,
            depends=parse_depends("libc6 (>= 2.34)"),
            files=[_lib(arch, "libfftw3", 2.1 if arch == "amd64" else 1.8, "3")],
            tags=("fft",),
        ),
        Package(
            name="libscalapack-openmpi2",
            version="2.2.1-1",
            architecture=arch,
            depends=parse_depends("libopenmpi3, libopenblas0"),
            files=[_lib(arch, "libscalapack-openmpi", 4.6 if arch == "amd64" else 4.0, "2")],
            tags=("scalapack",),
        ),
        Package(
            name="libjpeg8",
            version="8c-2ubuntu11",
            architecture=arch,
            depends=parse_depends("libc6 (>= 2.34)"),
            files=[_lib(arch, "libjpeg", 0.5 if arch == "amd64" else 0.4, "8")],
        ),
        Package(
            name="libpng16-16",
            version="1.6.43-5",
            architecture=arch,
            depends=parse_depends("libc6 (>= 2.34), zlib1g"),
            files=[_lib(arch, "libpng16", 0.4 if arch == "amd64" else 0.3, "16")],
        ),
    ]


def _filler_package(arch: str, present: List[Package]) -> Package:
    """Absorb rounding so base+core-runtime hits the Table 3 calibration."""
    counted = {name for name, _, _ in _BASE_SIZES}
    counted.update(default_runtime_install())
    accounted = sum(p.installed_size for p in present if p.name in counted)
    fill = max(0, BASE_PLUS_RUNTIME_TARGET[arch] - accounted)
    return Package(
        name="distro-fill",
        version="1.0",
        architecture=arch,
        section="admin",
        priority="required",
        description="calibration filler (icon caches, docs, terminfo, ...)",
        files=[_data("/usr/share/distro-fill/blob.bin", fill / MIB)],
    )


# ---------------------------------------------------------------------------
# toolchains
# ---------------------------------------------------------------------------

def gnu_toolchain_packages(arch: str, version: str = "12") -> List[Package]:
    """The distro GNU toolchain (build-stage only; never in dist images)."""
    size = 1.0
    tc = f"gnu-{version}"
    driver_meta = {"toolchain": tc}
    return [
        Package(
            name=f"gcc-{version}",
            version=f"{version}.3.0-1ubuntu1",
            architecture=arch,
            section="devel",
            depends=parse_depends(f"libc6 (>= 2.34), binutils, cpp-{version}"),
            files=[
                _bin(f"/usr/bin/gcc-{version}", "compiler-driver", role="cc", **driver_meta),
                PackagedFile(path="/usr/bin/gcc", symlink_to=f"gcc-{version}"),
                PackagedFile(path="/usr/bin/cc", symlink_to=f"gcc-{version}"),
                _data(f"/usr/libexec/gcc-{version}/cc1.bin", 28.0 if arch == "amd64" else 24.0),
            ],
            tags=("toolchain", "cc"),
        ),
        Package(
            name=f"g++-{version}",
            version=f"{version}.3.0-1ubuntu1",
            architecture=arch,
            section="devel",
            depends=parse_depends(f"gcc-{version}"),
            files=[
                _bin(f"/usr/bin/g++-{version}", "compiler-driver", role="cxx", **driver_meta),
                PackagedFile(path="/usr/bin/g++", symlink_to=f"g++-{version}"),
                PackagedFile(path="/usr/bin/c++", symlink_to=f"g++-{version}"),
                _data(f"/usr/libexec/gcc-{version}/cc1plus.bin", 30.0 if arch == "amd64" else 26.0),
            ],
            tags=("toolchain", "cxx"),
        ),
        Package(
            name=f"gfortran-{version}",
            version=f"{version}.3.0-1ubuntu1",
            architecture=arch,
            section="devel",
            depends=parse_depends(f"gcc-{version}, libgfortran5"),
            files=[
                _bin(f"/usr/bin/gfortran-{version}", "compiler-driver", role="fc", **driver_meta),
                PackagedFile(path="/usr/bin/gfortran", symlink_to=f"gfortran-{version}"),
                _data(f"/usr/libexec/gcc-{version}/f951.bin", 26.0 if arch == "amd64" else 22.0),
            ],
            tags=("toolchain", "fc"),
        ),
        Package(
            name=f"cpp-{version}",
            version=f"{version}.3.0-1ubuntu1",
            architecture=arch,
            section="devel",
            files=[_bin(f"/usr/bin/cpp-{version}", "compiler-driver", role="cpp", **driver_meta)],
        ),
        Package(
            name="binutils",
            version="2.42-4ubuntu2",
            architecture=arch,
            section="devel",
            files=[
                _bin("/usr/bin/ar", "ar"),
                _bin("/usr/bin/ld", "ld", **driver_meta),
                _bin("/usr/bin/ranlib", "ranlib"),
                _bin("/usr/bin/strip", "strip"),
                _data("/usr/lib/binutils/payload.bin", 14.0 if arch == "amd64" else 12.0),
            ],
            tags=("toolchain",),
        ),
        Package(
            name="make",
            version="4.3-4.1",
            architecture=arch,
            section="devel",
            files=[_bin("/usr/bin/make", "make")],
        ),
        Package(
            name="libc6-dev",
            version="2.39-0ubuntu8",
            architecture=arch,
            section="devel",
            depends=parse_depends("libc6 (= 2.39-0ubuntu8)"),
            files=[_hdr("/usr/include/stdio.h"), _hdr("/usr/include/stdlib.h"),
                   _hdr("/usr/include/math.h"), _hdr("/usr/include/string.h")],
        ),
        Package(
            name="libopenblas-dev",
            version="0.3.26+ds-1",
            architecture=arch,
            section="devel",
            depends=parse_depends("libopenblas0"),
            files=[
                _hdr("/usr/include/cblas.h"),
                _hdr("/usr/include/lapacke.h"),
                PackagedFile(
                    path=f"/usr/lib/{ARCH_TRIPLE[arch]}/libopenblas.so",
                    symlink_to="libopenblas.so.0",
                ),
            ],
        ),
        Package(
            name="libopenmpi-dev",
            version="4.1.6-5ubuntu1",
            architecture=arch,
            section="devel",
            depends=parse_depends("libopenmpi3"),
            files=[
                _hdr("/usr/include/mpi.h"),
                _bin("/usr/bin/mpicc", "compiler-driver", role="cc", toolchain="gnu-12", mpi_wrapper=True),
                _bin("/usr/bin/mpicxx", "compiler-driver", role="cxx", toolchain="gnu-12", mpi_wrapper=True),
                _bin("/usr/bin/mpif90", "compiler-driver", role="fc", toolchain="gnu-12", mpi_wrapper=True),
                PackagedFile(
                    path=f"/usr/lib/{ARCH_TRIPLE[arch]}/libmpi.so",
                    symlink_to="libmpi.so.40",
                ),
            ],
        ),
        Package(
            name="libfftw3-dev",
            version="3.3.10-1ubuntu1",
            architecture=arch,
            section="devel",
            depends=parse_depends("libfftw3-3"),
            files=[
                _hdr("/usr/include/fftw3.h"),
                PackagedFile(
                    path=f"/usr/lib/{ARCH_TRIPLE[arch]}/libfftw3.so",
                    symlink_to="libfftw3.so.3",
                ),
            ],
        ),
    ]


def llvm_toolchain_packages(arch: str, version: str = "17") -> List[Package]:
    """The artifact's freely redistributable LLVM toolchain."""
    tc = f"llvm-{version}"
    return [
        Package(
            name=f"clang-{version}",
            version=f"1:{version}.0.6-1",
            architecture=arch,
            section="devel",
            depends=parse_depends("libc6 (>= 2.34), binutils"),
            files=[
                _bin(f"/usr/bin/clang-{version}", "compiler-driver", role="cc", toolchain=tc),
                _bin(f"/usr/bin/clang++-{version}", "compiler-driver", role="cxx", toolchain=tc),
                _bin(f"/usr/bin/flang-{version}", "compiler-driver", role="fc", toolchain=tc),
                PackagedFile(path="/usr/bin/clang", symlink_to=f"clang-{version}"),
                PackagedFile(path="/usr/bin/clang++", symlink_to=f"clang++-{version}"),
                PackagedFile(path="/usr/bin/flang", symlink_to=f"flang-{version}"),
                _data(f"/usr/lib/llvm-{version}/payload.bin", 96.0),
            ],
            tags=("toolchain", "cc", "cxx", "fc"),
        ),
        Package(
            name=f"llvm-{version}-linker-tools",
            version=f"1:{version}.0.6-1",
            architecture=arch,
            section="devel",
            files=[_bin("/usr/bin/lld", "ld", toolchain=tc)],
        ),
    ]


# ---------------------------------------------------------------------------
# vendor (system-side) repositories
# ---------------------------------------------------------------------------

def intel_hpc_packages() -> List[Package]:
    """Optimized stack of the x86-64 cluster (Intel Xeon 8358P, Table 1)."""
    arch = "amd64"
    tc = "intel-2024"
    return [
        Package(
            name="intel-oneapi-compilers",
            version="2024.1.0-819",
            architecture=arch,
            section="devel",
            depends=parse_depends("libc6 (>= 2.34), binutils"),
            files=[
                _bin("/opt/intel/bin/icx", "compiler-driver", role="cc", toolchain=tc),
                _bin("/opt/intel/bin/icpx", "compiler-driver", role="cxx", toolchain=tc),
                _bin("/opt/intel/bin/ifx", "compiler-driver", role="fc", toolchain=tc),
                _data("/opt/intel/compiler/payload.bin", 310.0),
            ],
            tags=("toolchain", "vendor"),
        ),
        Package(
            name="intel-mkl",
            version="2024.1.0-691",
            architecture=arch,
            depends=parse_depends("libc6 (>= 2.34)"),
            provides=["libblas.so.3", "liblapack.so.3"],
            equivalent_of="libopenblas0",
            quality=1.60,
            files=[
                _lib(arch, "libmkl_core", 58.0),
                _lib(arch, "libmkl_avx512", 44.0),
            ],
            tags=("blas", "lapack", "vendor"),
        ),
        Package(
            name="intel-mpi",
            version="2021.12.0-539",
            architecture=arch,
            depends=parse_depends("libc6 (>= 2.34)"),
            provides=["mpi-runtime"],
            equivalent_of="libopenmpi3",
            quality=1.03,
            files=[
                _lib(arch, "libmpi-intel", 22.0, "12"),
                _lib(arch, "libmpi-hsn-plugin", 4.0, "12"),
                _bin("/opt/intel/bin/mpirun", "mpirun", mpi="intel-mpi", hsn=True),
            ],
            tags=("mpi", "hsn-plugin", "vendor"),
        ),
        Package(
            name="intel-fftw",
            version="2024.1.0-691",
            architecture=arch,
            depends=parse_depends("intel-mkl"),
            equivalent_of="libfftw3-3",
            quality=2.00,
            files=[_lib(arch, "libfftw3-mkl", 3.5, "3")],
            tags=("fft", "vendor"),
        ),
        Package(
            name="intel-scalapack",
            version="2024.1.0-691",
            architecture=arch,
            depends=parse_depends("intel-mkl, intel-mpi"),
            equivalent_of="libscalapack-openmpi2",
            quality=1.60,
            files=[_lib(arch, "libmkl_scalapack", 21.0, "2")],
            tags=("scalapack", "vendor"),
        ),
    ]


def phytium_hpc_packages() -> List[Package]:
    """Optimized stack of the AArch64 cluster (Phytium FT-2000+/64, Table 1)."""
    arch = "arm64"
    tc = "phytium-kit-3"
    return [
        Package(
            name="phytium-compiler-kit",
            version="3.1.0-2",
            architecture=arch,
            section="devel",
            depends=parse_depends("libc6 (>= 2.34), binutils"),
            files=[
                _bin("/opt/phytium/bin/ftcc", "compiler-driver", role="cc", toolchain=tc),
                _bin("/opt/phytium/bin/ftcxx", "compiler-driver", role="cxx", toolchain=tc),
                _bin("/opt/phytium/bin/ftfort", "compiler-driver", role="fc", toolchain=tc),
                _data("/opt/phytium/compiler/payload.bin", 180.0),
            ],
            tags=("toolchain", "vendor"),
        ),
        Package(
            name="libblas-ft2000",
            version="2.4.0-1",
            architecture=arch,
            depends=parse_depends("libc6 (>= 2.34)"),
            provides=["libblas.so.3", "liblapack.so.3"],
            equivalent_of="libopenblas0",
            quality=1.90,
            files=[_lib(arch, "libblas-ft2000", 26.0)],
            tags=("blas", "lapack", "vendor"),
        ),
        Package(
            name="ftmpi",
            version="4.0.2-3",
            architecture=arch,
            depends=parse_depends("libc6 (>= 2.34)"),
            provides=["mpi-runtime"],
            equivalent_of="libopenmpi3",
            quality=1.20,
            files=[
                _lib(arch, "libftmpi", 14.0, "4"),
                _lib(arch, "libftmpi-hsn-plugin", 3.0, "4"),
                _bin("/opt/phytium/bin/mpirun", "mpirun", mpi="ftmpi", hsn=True),
            ],
            tags=("mpi", "hsn-plugin", "vendor"),
        ),
        Package(
            name="ftfftw",
            version="3.3.10-ft2",
            architecture=arch,
            depends=parse_depends("libc6 (>= 2.34)"),
            equivalent_of="libfftw3-3",
            quality=1.70,
            files=[_lib(arch, "libftfftw3", 2.8, "3")],
            tags=("fft", "vendor"),
        ),
        Package(
            name="ftscalapack",
            version="2.2.0-ft1",
            architecture=arch,
            depends=parse_depends("libblas-ft2000, ftmpi"),
            equivalent_of="libscalapack-openmpi2",
            quality=1.90,
            files=[_lib(arch, "libftscalapack", 12.0, "2")],
            tags=("scalapack", "vendor"),
        ),
    ]


# ---------------------------------------------------------------------------
# repository assembly
# ---------------------------------------------------------------------------

def build_generic_repository(arch: str) -> Repository:
    """``ubuntu-generic``: base + generic runtime + GNU toolchain + dev."""
    repo = Repository(name="ubuntu-generic", architecture=arch)
    base = base_system_packages(arch)
    runtime = generic_hpc_runtime_packages(arch)
    for pkg in base + runtime:
        repo.add(pkg)
    repo.add(_filler_package(arch, base + runtime))
    for pkg in gnu_toolchain_packages(arch):
        repo.add(pkg)
    return repo


def build_vendor_repository(arch: str) -> Repository:
    """The system-side optimized repo for *arch*'s testbed cluster."""
    if arch == "amd64":
        repo = Repository(name="intel-hpc", architecture=arch)
        for pkg in intel_hpc_packages():
            repo.add(pkg)
    elif arch == "arm64":
        repo = Repository(name="phytium-hpc", architecture=arch)
        for pkg in phytium_hpc_packages():
            repo.add(pkg)
    else:  # pragma: no cover - only two testbed arches exist
        raise ValueError(f"no vendor repository for architecture {arch!r}")
    return repo


def build_llvm_repository(arch: str) -> Repository:
    """The artifact's free LLVM alternative to the vendor toolchains."""
    repo = Repository(name="llvm-generic", architecture=arch)
    for pkg in llvm_toolchain_packages(arch):
        repo.add(pkg)
    return repo


def default_base_install(arch: str) -> List[str]:
    """Package set preinstalled in the ubuntu-like base image."""
    names = [name for name, _, _ in _BASE_SIZES]
    names.append("distro-fill")
    return names


def default_runtime_install() -> List[str]:
    """Generic HPC runtime present in every dist-stage image."""
    return ["libgfortran5", "libopenblas0", "libopenmpi3"]


def default_devel_install() -> List[str]:
    """Build-stage toolchain + dev packages."""
    return [
        "gcc-12", "g++-12", "gfortran-12", "binutils", "make",
        "libc6-dev", "libopenblas-dev", "libopenmpi-dev", "libfftw3-dev",
    ]
