"""Simulated binary formats.

Real container images hold ELF executables and shared objects; this
substrate represents them as small self-describing payloads:

* **program markers** — ``#!sim\\n{json}`` — an executable whose behaviour
  is provided by a registered simulated program (``gcc``, ``cp``, ``apt-get``,
  the coMtainer entry points, the command-line hijacker, ...).  The JSON
  carries the program name plus arbitrary metadata (e.g. which toolchain a
  compiler driver belongs to).

* **artifact payloads** — ``\\x7fSIM\\n{json}`` — build products (.o/.a/.so/
  executables) carrying their full build provenance: source inputs, flags,
  toolchain, target ISA, LTO/PGO state.  The system-side backend reads this
  provenance the way a real backend would read ELF sections and build IDs.

Both formats are plain bytes, so they round-trip through layers, diffs and
tar export like any other file content.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional

PROGRAM_MAGIC = b"#!sim\n"
ARTIFACT_MAGIC = b"\x7fSIM\n"


def program_marker(program: str, **meta: Any) -> bytes:
    """Encode an executable file that dispatches to simulated *program*."""
    payload: Dict[str, Any] = {"program": program}
    payload.update(meta)
    return PROGRAM_MAGIC + json.dumps(payload, sort_keys=True).encode("utf-8")


def read_program_marker(data: bytes) -> Optional[Dict[str, Any]]:
    """Decode a program marker, or None when *data* is not one."""
    if not data.startswith(PROGRAM_MAGIC):
        return None
    try:
        obj = json.loads(data[len(PROGRAM_MAGIC):].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError):
        return None
    if isinstance(obj, dict) and "program" in obj:
        return obj
    return None


def is_program(data: bytes) -> bool:
    return read_program_marker(data) is not None


def artifact_payload(kind: str, body: Dict[str, Any]) -> bytes:
    """Encode a build artifact of *kind* (object/archive/shared/executable)."""
    payload = {"kind": kind}
    payload.update(body)
    return ARTIFACT_MAGIC + json.dumps(payload, sort_keys=True).encode("utf-8")


def read_artifact_payload(data: bytes) -> Optional[Dict[str, Any]]:
    """Decode an artifact payload, or None when *data* is not one."""
    if not data.startswith(ARTIFACT_MAGIC):
        return None
    try:
        obj = json.loads(data[len(ARTIFACT_MAGIC):].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError):
        return None
    if isinstance(obj, dict) and "kind" in obj:
        return obj
    return None


def is_artifact(data: bytes) -> bool:
    return read_artifact_payload(data) is not None
