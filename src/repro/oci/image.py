"""Image config and manifest documents (OCI image-spec shapes)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.oci import mediatypes
from repro.oci.digest import canonical_json, digest_bytes


@dataclass(frozen=True)
class Descriptor:
    """A content descriptor: (media type, digest, size) + annotations."""

    media_type: str
    digest: str
    size: int
    annotations: Dict[str, str] = field(default_factory=dict)

    def to_json(self) -> Dict[str, Any]:
        obj: Dict[str, Any] = {
            "mediaType": self.media_type,
            "digest": self.digest,
            "size": self.size,
        }
        if self.annotations:
            obj["annotations"] = dict(self.annotations)
        return obj

    @staticmethod
    def from_json(obj: Dict[str, Any]) -> "Descriptor":
        return Descriptor(
            media_type=obj["mediaType"],
            digest=obj["digest"],
            size=obj["size"],
            annotations=dict(obj.get("annotations", {})),
        )


@dataclass
class ImageConfig:
    """The OCI image config: runtime defaults + rootfs diff IDs + history."""

    architecture: str = "amd64"
    os: str = "linux"
    env: List[str] = field(default_factory=list)
    entrypoint: List[str] = field(default_factory=list)
    cmd: List[str] = field(default_factory=list)
    working_dir: str = "/"
    labels: Dict[str, str] = field(default_factory=dict)
    diff_ids: List[str] = field(default_factory=list)
    history: List[Dict[str, Any]] = field(default_factory=list)

    def to_json(self) -> Dict[str, Any]:
        return {
            "architecture": self.architecture,
            "os": self.os,
            "config": {
                "Env": list(self.env),
                "Entrypoint": list(self.entrypoint),
                "Cmd": list(self.cmd),
                "WorkingDir": self.working_dir,
                "Labels": dict(self.labels),
            },
            "rootfs": {"type": "layers", "diff_ids": list(self.diff_ids)},
            "history": list(self.history),
        }

    @staticmethod
    def from_json(obj: Dict[str, Any]) -> "ImageConfig":
        cfg = obj.get("config", {})
        return ImageConfig(
            architecture=obj.get("architecture", "amd64"),
            os=obj.get("os", "linux"),
            env=list(cfg.get("Env", []) or []),
            entrypoint=list(cfg.get("Entrypoint", []) or []),
            cmd=list(cfg.get("Cmd", []) or []),
            working_dir=cfg.get("WorkingDir", "/") or "/",
            labels=dict(cfg.get("Labels", {}) or {}),
            diff_ids=list(obj.get("rootfs", {}).get("diff_ids", [])),
            history=list(obj.get("history", [])),
        )

    def to_bytes(self) -> bytes:
        return canonical_json(self.to_json())

    @property
    def digest(self) -> str:
        return digest_bytes(self.to_bytes())

    def descriptor(self) -> Descriptor:
        data = self.to_bytes()
        return Descriptor(mediatypes.IMAGE_CONFIG, digest_bytes(data), len(data))

    def clone(self) -> "ImageConfig":
        return ImageConfig.from_json(self.to_json())

    def add_history(self, created_by: str, empty_layer: bool = False) -> None:
        entry: Dict[str, Any] = {"created_by": created_by}
        if empty_layer:
            entry["empty_layer"] = True
        self.history.append(entry)

    def env_dict(self) -> Dict[str, str]:
        out: Dict[str, str] = {}
        for item in self.env:
            if "=" in item:
                key, _, value = item.partition("=")
                out[key] = value
        return out


@dataclass
class Manifest:
    """The OCI image manifest: config descriptor + ordered layer descriptors."""

    config: Descriptor
    layers: List[Descriptor] = field(default_factory=list)
    annotations: Dict[str, str] = field(default_factory=dict)

    def to_json(self) -> Dict[str, Any]:
        obj: Dict[str, Any] = {
            "schemaVersion": 2,
            "mediaType": mediatypes.IMAGE_MANIFEST,
            "config": self.config.to_json(),
            "layers": [layer.to_json() for layer in self.layers],
        }
        if self.annotations:
            obj["annotations"] = dict(self.annotations)
        return obj

    @staticmethod
    def from_json(obj: Dict[str, Any]) -> "Manifest":
        return Manifest(
            config=Descriptor.from_json(obj["config"]),
            layers=[Descriptor.from_json(layer) for layer in obj.get("layers", [])],
            annotations=dict(obj.get("annotations", {})),
        )

    def to_bytes(self) -> bytes:
        return canonical_json(self.to_json())

    @property
    def digest(self) -> str:
        return digest_bytes(self.to_bytes())

    def descriptor(self, annotations: Optional[Dict[str, str]] = None) -> Descriptor:
        data = self.to_bytes()
        return Descriptor(
            mediatypes.IMAGE_MANIFEST,
            digest_bytes(data),
            len(data),
            annotations=dict(annotations or {}),
        )

    @property
    def total_layer_size(self) -> int:
        return sum(layer.size for layer in self.layers)
