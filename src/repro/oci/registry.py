"""A name:tag image registry (the "repository" box of Figure 1).

Stores manifests by repository name and tag, sharing one blob store, so
user-side push and system-side pull of extended images can be simulated
end to end.
"""

from __future__ import annotations

import difflib
from typing import Dict, List, Optional, Tuple

from repro.oci import mediatypes
from repro.oci.blobs import Blob, BlobStore
from repro.oci.image import ImageConfig, Manifest
from repro.oci.layer import Layer
from repro.oci.layout import OCILayout, ResolvedImage
from repro.telemetry import NULL_TELEMETRY


class RegistryError(Exception):
    """Base class for registry transfer failures."""


class ImageNotFound(RegistryError, KeyError):
    """The requested reference has no manifest in this registry.

    Subclasses :class:`KeyError` for backwards compatibility with callers
    that guarded ``pull`` with ``except KeyError``.  When the repository
    exists but the tag doesn't, ``suggestion`` holds the nearest existing
    reference (``name:tag``) and the message says so.
    """

    def __init__(self, message: str, suggestion: Optional[str] = None) -> None:
        if suggestion:
            message += f" (did you mean {suggestion!r}?)"
        super().__init__(message)
        self.suggestion = suggestion

    def __str__(self) -> str:   # KeyError would repr() the message
        return Exception.__str__(self)


class TransientTransferError(RegistryError):
    """A transfer failed in a way that is expected to succeed on retry.

    The ``transient`` class attribute is the typed classification signal
    the resilience layer keys on (no string matching).
    """

    transient = True


def parse_reference(reference: str) -> Tuple[str, str]:
    """Split ``repo/name:tag`` into (name, tag); tag defaults to ``latest``."""
    if ":" in reference.rsplit("/", 1)[-1]:
        name, _, tag = reference.rpartition(":")
        return name, tag
    return reference, "latest"


class ImageRegistry:
    """In-memory OCI distribution endpoint."""

    def __init__(self) -> None:
        self.blobs = BlobStore()
        self._manifests: Dict[Tuple[str, str], str] = {}  # (name, tag) -> digest
        #: Shared rebuild artifact caches, one per repository: name -> blob
        #: digest (``application/vnd.comtainer.rebuild-artifacts.v1+json``).
        self._artifact_caches: Dict[str, str] = {}
        #: Optional :class:`repro.resilience.faults.FaultInjector`; armed on
        #: push/pull so chaos tests can exercise transfer failures.
        self.fault_injector = None
        #: Telemetry sink; spans each push/pull and counts transfer bytes.
        self.telemetry = NULL_TELEMETRY
        #: Merkle-walk memo: manifest digest -> every member digest the walk
        #: chained over (manifest, config, layers).  A repeat pull skips the
        #: re-verification only while all members are still verified in the
        #: blob store — put/remove/quarantine invalidate per digest.
        self._merkle_verified: Dict[str, Tuple[str, ...]] = {}

    def _arm(self, site: str, key: str) -> None:
        if self.fault_injector is not None:
            self.fault_injector.arm(site, key)

    def repositories(self) -> List[str]:
        return sorted({name for name, _ in self._manifests})

    def tags(self, name: str) -> List[str]:
        return sorted(tag for (n, tag) in self._manifests if n == name)

    def manifest_map(self) -> Dict[str, str]:
        """``name:tag -> manifest digest`` for every tagged manifest.

        A metadata read, not a transfer: like :meth:`exists` it never
        arms the fault injector, so mirror-sync diffing and federation
        audits can enumerate the catalogue without consuming scripted
        faults intended for real pulls.
        """
        return {
            f"{name}:{tag}": digest
            for (name, tag), digest in self._manifests.items()
        }

    def manifest_digest(self, reference: str) -> Optional[str]:
        """Digest the reference's tag points at; None when absent.

        Fault-transparent (see :meth:`exists`).
        """
        return self._manifests.get(parse_reference(reference))

    def tag_manifest(self, reference: str, digest: str) -> None:
        """Point *reference* at an already-stored manifest blob.

        The verify-then-promote step of a mirror sync stages and verifies
        every blob first, then flips tags with this metadata-only write —
        so a torn sync can never leave a tag pointing at bytes the mirror
        does not hold intact.
        """
        if digest not in self.blobs:
            raise RegistryError(
                f"cannot tag {reference!r}: manifest blob {digest} not stored"
            )
        self._manifests[parse_reference(reference)] = digest

    def delete_reference(self, reference: str) -> bool:
        """Untag *reference* (metadata-only; blobs stay for GC/repair).

        Returns True when the tag existed.  Reconciling a demoted origin
        back into a federation as a mirror uses this to drop references
        the fenced epoch never accepted.
        """
        return self._manifests.pop(parse_reference(reference), None) is not None

    def push(
        self,
        reference: str,
        manifest: Manifest,
        config: ImageConfig,
        layers: List[Layer],
    ) -> str:
        name, tag = parse_reference(reference)
        tele = self.telemetry
        if not tele.enabled:
            self._arm("registry.push", reference)
            self._transfer(reference, "config",
                           Blob.from_bytes(config.to_bytes(), mediatypes.IMAGE_CONFIG))
            for layer in layers:
                self._transfer(reference, f"layer/{layer.digest}", Blob.from_layer(layer))
            self._transfer(reference, "manifest",
                           Blob.from_bytes(manifest.to_bytes(), mediatypes.IMAGE_MANIFEST))
            digest = manifest.digest
            self._manifests[(name, tag)] = digest
            return digest
        with tele.span("registry.push", reference=reference) as span:
            self._arm("registry.push", reference)
            config_bytes = config.to_bytes()
            manifest_bytes = manifest.to_bytes()
            self._transfer(reference, "config",
                           Blob.from_bytes(config_bytes, mediatypes.IMAGE_CONFIG))
            for layer in layers:
                self._transfer(reference, f"layer/{layer.digest}", Blob.from_layer(layer))
            self._transfer(reference, "manifest",
                           Blob.from_bytes(manifest_bytes, mediatypes.IMAGE_MANIFEST))
            digest = manifest.digest
            self._manifests[(name, tag)] = digest
            pushed = (len(config_bytes) + len(manifest_bytes)
                      + sum(layer.size for layer in layers))
            span.set("bytes", pushed)
            span.set("layers", len(layers))
            m = tele.metrics
            m.counter("registry_pushes_total").inc()
            m.counter("registry_push_bytes_total").inc(pushed)
            m.gauge("registry_manifests").set(len(self._manifests))
            return digest

    def push_layout(self, reference: str, layout: OCILayout, tag: Optional[str] = None) -> str:
        """Push one tag (default: the reference's tag) from a layout."""
        name, ref_tag = parse_reference(reference)
        source_tag = tag if tag is not None else ref_tag
        resolved = layout.resolve(source_tag)
        return self.push(f"{name}:{ref_tag}", resolved.manifest, resolved.config, resolved.layers)

    def pull(self, reference: str) -> ResolvedImage:
        name, tag = parse_reference(reference)
        tele = self.telemetry
        if not tele.enabled:
            return self._pull_inner(name, tag, reference)
        with tele.span("registry.pull", reference=reference) as span:
            resolved = self._pull_inner(name, tag, reference)
            pulled = (resolved.config.descriptor().size
                      + resolved.manifest.descriptor().size
                      + sum(layer.size for layer in resolved.layers))
            span.set("bytes", pulled)
            span.set("layers", len(resolved.layers))
            m = tele.metrics
            m.counter("registry_pulls_total").inc()
            m.counter("registry_pull_bytes_total").inc(pulled)
            return resolved

    def _transfer(self, reference: str, label: str, blob: Blob) -> None:
        """Store one blob of a push, subject to transfer-corruption faults.

        A fired ``registry.transfer`` corruption keeps the *declared*
        digest/size (that is what the wire protocol claims) but mutates
        the payload, modelling a transfer that went bad undetected.
        """
        inj = self.fault_injector
        if inj is not None and inj.corrupting("registry.transfer"):
            data = blob.as_bytes()
            mutated = inj.corrupt("registry.transfer", f"{reference}#{label}", data)
            if mutated is not data:
                blob = Blob(
                    media_type=blob.media_type,
                    digest=blob.digest,
                    size=blob.size,
                    payload=mutated,
                )
        self.blobs.put(blob)

    def _nearest_tag(self, name: str, tag: str) -> Optional[str]:
        """Nearest existing ``name:tag`` when the repo exists; else None."""
        tags = self.tags(name)
        if not tags:
            return None
        matches = difflib.get_close_matches(tag, tags, n=1, cutoff=0.0)
        return f"{name}:{matches[0]}" if matches else None

    def _pull_inner(self, name: str, tag: str, reference: str) -> ResolvedImage:
        self._arm("registry.pull", reference)
        try:
            digest = self._manifests[(name, tag)]
        except KeyError:
            raise ImageNotFound(
                f"image not found in registry: {reference!r}",
                suggestion=self._nearest_tag(name, tag),
            ) from None
        manifest = Manifest.from_json(self.blobs.get(digest).as_json())
        config = ImageConfig.from_json(self.blobs.get(manifest.config.digest).as_json())
        layers = [self.blobs.get_layer(ld.digest) for ld in manifest.layers]
        resolved = ResolvedImage(manifest=manifest, config=config, layers=layers)
        if self.blobs.verify_reads:
            # Merkle walk: even content that individually hashed clean must
            # chain manifest -> config -> layers before a pull returns it.
            # Memoized per manifest digest: a repeat pull whose members all
            # still sit verified in the blob store skips the re-hash.
            members = self._merkle_verified.get(digest)
            if members is None or not all(self.blobs.is_verified(d) for d in members):
                resolved.check("registry.pull")
                self._merkle_verified[digest] = (
                    digest,
                    manifest.config.digest,
                    *(ld.digest for ld in manifest.layers),
                )
                if self.telemetry.enabled:
                    self.telemetry.metrics.counter(
                        "registry_merkle_walks_total").inc()
            elif self.telemetry.enabled:
                self.telemetry.metrics.counter(
                    "registry_merkle_memo_hits_total").inc()
        return resolved

    def pull_to_layout(self, reference: str) -> OCILayout:
        _, tag = parse_reference(reference)
        resolved = self.pull(reference)
        layout = OCILayout()
        layout.add_manifest(resolved.manifest, resolved.config, resolved.layers, tag=tag)
        return layout

    def exists(self, reference: str) -> bool:
        """True when the reference's tag is present.

        **Fault-transparent by contract**: an existence probe must never
        arm ``registry.pull`` (or any other injector site).  A probe that
        consumed a scripted fault would skew chaos sweeps — the fault a
        test aimed at the real pull would be eaten by the probe and the
        sweep would silently stop exercising the retry path.  Guarded by
        a regression test; keep any future probe helpers on this side of
        the line.
        """
        return parse_reference(reference) in self._manifests

    # -- shared artifact caches --------------------------------------------

    def put_artifact_cache(self, repository: str, blob: Blob) -> str:
        """Publish a rebuild artifact cache for *repository* (replacing
        any previous one), so other sessions and cluster nodes can warm
        their rebuilds from it."""
        old = self._artifact_caches.get(repository)
        self._transfer(repository, "artifact-cache", blob)
        self._artifact_caches[repository] = blob.digest
        if old is not None and old != blob.digest:
            if old not in self.referenced_digests() and old in self.blobs:
                self.blobs.remove(old)
        m = self.telemetry.metrics
        m.counter("registry_artifact_cache_publishes_total").inc()
        return blob.digest

    def get_artifact_cache(self, repository: str) -> Optional[Blob]:
        digest = self._artifact_caches.get(repository)
        if digest is None:
            return None
        return self.blobs.try_get(digest)

    # -- invariants --------------------------------------------------------

    def referenced_digests(self) -> set:
        """Every blob digest reachable from a tagged manifest or a
        published artifact cache."""
        refs: set = set(self._artifact_caches.values())
        for digest in self._manifests.values():
            refs.add(digest)
            blob = self.blobs.try_get(digest)
            if blob is None:
                continue
            try:
                manifest = Manifest.from_json(blob.as_json())
            except (ValueError, KeyError, TypeError):
                # A corrupted manifest blob: keep it referenced so
                # fsck/repair target it; skip the unreadable closure.
                continue
            refs.add(manifest.config.digest)
            refs.update(ld.digest for ld in manifest.layers)
        return refs

    def audit(self) -> List[str]:
        """Store invariants: no missing, truncated, or orphaned blobs.

        Returns a list of human-readable problems (empty when healthy).
        Chaos tests assert this stays empty no matter where transfers were
        interrupted — a retried push must never strand partial state.
        """
        problems = [str(f) for f in self.blobs.verify_integrity()]
        reachable = self.referenced_digests()
        for digest in reachable:
            if digest not in self.blobs:
                problems.append(f"missing referenced blob {digest}")
        for digest in self.blobs.digests():
            if digest not in reachable:
                problems.append(f"orphaned blob {digest}")
        return problems
