"""A name:tag image registry (the "repository" box of Figure 1).

Stores manifests by repository name and tag, sharing one blob store, so
user-side push and system-side pull of extended images can be simulated
end to end.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.oci import mediatypes
from repro.oci.blobs import BlobStore
from repro.oci.image import ImageConfig, Manifest
from repro.oci.layer import Layer
from repro.oci.layout import OCILayout, ResolvedImage


def parse_reference(reference: str) -> Tuple[str, str]:
    """Split ``repo/name:tag`` into (name, tag); tag defaults to ``latest``."""
    if ":" in reference.rsplit("/", 1)[-1]:
        name, _, tag = reference.rpartition(":")
        return name, tag
    return reference, "latest"


class ImageRegistry:
    """In-memory OCI distribution endpoint."""

    def __init__(self) -> None:
        self.blobs = BlobStore()
        self._manifests: Dict[Tuple[str, str], str] = {}  # (name, tag) -> digest

    def repositories(self) -> List[str]:
        return sorted({name for name, _ in self._manifests})

    def tags(self, name: str) -> List[str]:
        return sorted(tag for (n, tag) in self._manifests if n == name)

    def push(
        self,
        reference: str,
        manifest: Manifest,
        config: ImageConfig,
        layers: List[Layer],
    ) -> str:
        name, tag = parse_reference(reference)
        self.blobs.put_bytes(config.to_bytes(), mediatypes.IMAGE_CONFIG)
        for layer in layers:
            self.blobs.put_layer(layer)
        self.blobs.put_bytes(manifest.to_bytes(), mediatypes.IMAGE_MANIFEST)
        digest = manifest.digest
        self._manifests[(name, tag)] = digest
        return digest

    def push_layout(self, reference: str, layout: OCILayout, tag: Optional[str] = None) -> str:
        """Push one tag (default: the reference's tag) from a layout."""
        name, ref_tag = parse_reference(reference)
        source_tag = tag if tag is not None else ref_tag
        resolved = layout.resolve(source_tag)
        return self.push(f"{name}:{ref_tag}", resolved.manifest, resolved.config, resolved.layers)

    def pull(self, reference: str) -> ResolvedImage:
        name, tag = parse_reference(reference)
        try:
            digest = self._manifests[(name, tag)]
        except KeyError:
            raise KeyError(f"image not found in registry: {reference!r}") from None
        manifest = Manifest.from_json(self.blobs.get(digest).as_json())
        config = ImageConfig.from_json(self.blobs.get(manifest.config.digest).as_json())
        layers = [self.blobs.get_layer(ld.digest) for ld in manifest.layers]
        return ResolvedImage(manifest=manifest, config=config, layers=layers)

    def pull_to_layout(self, reference: str) -> OCILayout:
        _, tag = parse_reference(reference)
        resolved = self.pull(reference)
        layout = OCILayout()
        layout.add_manifest(resolved.manifest, resolved.config, resolved.layers, tag=tag)
        return layout

    def exists(self, reference: str) -> bool:
        return parse_reference(reference) in self._manifests
