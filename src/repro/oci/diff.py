"""Computing a layer from the difference of two filesystem states.

Used by the container engine's ``commit``: the changes a RUN/COPY step (or
a whole container session) made against its base are captured as one layer,
with deletions encoded as whiteouts — exactly how overlay snapshots turn
into OCI layers.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.oci.layer import Layer, LayerEntry
from repro.vfs import Directory, RegularFile, Symlink, VirtualFilesystem
from repro.vfs import paths as vpath
from repro.vfs.filesystem import AnyNode


def _index(fs: VirtualFilesystem) -> Dict[str, AnyNode]:
    return dict(fs.iter_entries("/"))


def _same_node(a: AnyNode, b: AnyNode) -> bool:
    if type(a) is not type(b):
        return False
    if isinstance(a, Directory):
        # Child differences are reported per-child; a directory entry itself
        # only changes when its mode does.
        return a.mode == b.mode
    if isinstance(a, Symlink):
        assert isinstance(b, Symlink)
        return a.target == b.target
    assert isinstance(a, RegularFile) and isinstance(b, RegularFile)
    return a.mode == b.mode and a.content.digest == b.content.digest


def _entry_for(path: str, node: AnyNode) -> LayerEntry:
    if isinstance(node, Directory):
        return LayerEntry.directory(path, mode=node.mode)
    if isinstance(node, Symlink):
        return LayerEntry.symlink(path, node.target)
    assert isinstance(node, RegularFile)
    return LayerEntry.file(path, node.content, mode=node.mode, mtime=node.mtime)


def diff_filesystems(
    base: VirtualFilesystem, new: VirtualFilesystem, comment: str = ""
) -> Layer:
    """Return the layer that transforms *base* into *new*.

    Deterministic: whiteouts first (sorted), then adds/changes in sorted
    path order (parents naturally precede children).

    Implemented as a parallel tree walk that skips any subtree where both
    sides reference the *same* node object — with copy-on-write clones
    (``VirtualFilesystem.clone``), everything a container session never
    touched is still structurally shared with its base and costs O(1) to
    rule out, so a commit diff scales with the size of the change, not the
    size of the image.
    """
    removed: List[str] = []
    changed: List[Tuple[str, AnyNode]] = []

    def visit(dirpath: str, base_dir: Optional[Directory], new_dir: Directory) -> None:
        base_children = base_dir.children if base_dir is not None else {}
        for name, node in new_dir.sorted_items():
            old = base_children.get(name)
            if old is node:
                continue  # structurally shared: identical subtree
            path = vpath.join(dirpath, name)
            if old is None or not _same_node(old, node):
                changed.append((path, node))
            if isinstance(node, Directory):
                visit(path, old if isinstance(old, Directory) else None, node)
            elif isinstance(old, Directory):
                # Directory replaced by a non-directory: its former children
                # are gone and need whiteouts of their own.
                for child_name in old.children:
                    removed.append(vpath.join(path, child_name))
        if base_dir is not None:
            for name in base_dir.children:
                if name not in new_dir.children:
                    removed.append(vpath.join(dirpath, name))

    visit("/", base.root, new.root)

    layer = Layer(comment=comment)
    # Skip children of removed directories: one whiteout removes the subtree.
    covered: Tuple[str, ...] = ()
    for path in sorted(removed):
        if covered and path.startswith(covered[-1] + "/"):
            continue
        layer.add(LayerEntry.whiteout(path))
        covered = covered + (path,)

    for path, node in sorted(changed, key=lambda item: item[0]):
        layer.add(_entry_for(path, node))
    return layer


def layer_from_tree(
    fs: VirtualFilesystem, top: str = "/", comment: str = ""
) -> Layer:
    """Capture an entire subtree as a layer (no whiteouts)."""
    layer = Layer(comment=comment)
    for path, node in fs.iter_entries(top):
        layer.add(_entry_for(path, node))
    return layer
