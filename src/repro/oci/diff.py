"""Computing a layer from the difference of two filesystem states.

Used by the container engine's ``commit``: the changes a RUN/COPY step (or
a whole container session) made against its base are captured as one layer,
with deletions encoded as whiteouts — exactly how overlay snapshots turn
into OCI layers.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.oci.layer import Layer, LayerEntry
from repro.vfs import Directory, RegularFile, Symlink, VirtualFilesystem
from repro.vfs.filesystem import AnyNode


def _index(fs: VirtualFilesystem) -> Dict[str, AnyNode]:
    return dict(fs.iter_entries("/"))


def _same_node(a: AnyNode, b: AnyNode) -> bool:
    if type(a) is not type(b):
        return False
    if isinstance(a, Directory):
        # Child differences are reported per-child; a directory entry itself
        # only changes when its mode does.
        return a.mode == b.mode
    if isinstance(a, Symlink):
        assert isinstance(b, Symlink)
        return a.target == b.target
    assert isinstance(a, RegularFile) and isinstance(b, RegularFile)
    return a.mode == b.mode and a.content.digest == b.content.digest


def _entry_for(path: str, node: AnyNode) -> LayerEntry:
    if isinstance(node, Directory):
        return LayerEntry.directory(path, mode=node.mode)
    if isinstance(node, Symlink):
        return LayerEntry.symlink(path, node.target)
    assert isinstance(node, RegularFile)
    return LayerEntry.file(path, node.content, mode=node.mode, mtime=node.mtime)


def diff_filesystems(
    base: VirtualFilesystem, new: VirtualFilesystem, comment: str = ""
) -> Layer:
    """Return the layer that transforms *base* into *new*.

    Deterministic: whiteouts first (sorted), then adds/changes in sorted
    path order (parents naturally precede children).
    """
    base_idx = _index(base)
    new_idx = _index(new)
    layer = Layer(comment=comment)

    removed = sorted(set(base_idx) - set(new_idx))
    # Skip children of removed directories: one whiteout removes the subtree.
    covered: Tuple[str, ...] = ()
    for path in removed:
        if covered and path.startswith(covered[-1] + "/"):
            continue
        layer.add(LayerEntry.whiteout(path))
        covered = covered + (path,)

    for path in sorted(new_idx):
        node = new_idx[path]
        old = base_idx.get(path)
        if old is not None and _same_node(old, node):
            continue
        layer.add(_entry_for(path, node))
    return layer


def layer_from_tree(
    fs: VirtualFilesystem, top: str = "/", comment: str = ""
) -> Layer:
    """Capture an entire subtree as a layer (no whiteouts)."""
    layer = Layer(comment=comment)
    for path, node in fs.iter_entries(top):
        layer.add(_entry_for(path, node))
    return layer
