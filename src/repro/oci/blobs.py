"""Content-addressed blob storage.

A blob is either raw JSON bytes (configs, manifests) or a :class:`Layer`
object (the simulated tarball).  Both expose digest/size/media-type, so the
store behaves like an OCI blob directory.

Reads are **verified**: :meth:`BlobStore.get` re-hashes content against
its declared digest (memoized per digest, invalidated on every write) and
raises a typed :class:`repro.integrity.IntegrityError` instead of ever
returning silently wrong bytes.  Corrupt blobs can be quarantined — kept
for forensics and repair, but unreachable through normal reads — by the
integrity layer (:mod:`repro.integrity.repair`).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple, Union

from repro.integrity import (
    KIND_DIGEST_MISMATCH,
    KIND_QUARANTINED,
    KIND_SIZE_MISMATCH,
    IntegrityError,
    IntegrityFinding,
)
from repro.oci import mediatypes
from repro.oci.digest import digest_bytes
from repro.oci.image import Descriptor
from repro.oci.layer import Layer
from repro.telemetry import NULL_TELEMETRY

#: Process-wide default for :attr:`BlobStore.verify_reads`; the integrity
#: overhead benchmark flips this to time the unverified baseline.
VERIFY_READS_DEFAULT = True


@dataclass(frozen=True)
class Blob:
    """A stored payload plus its descriptor identity."""

    media_type: str
    digest: str
    size: int
    payload: Union[bytes, Layer]

    @staticmethod
    def from_bytes(data: bytes, media_type: str) -> "Blob":
        return Blob(media_type=media_type, digest=digest_bytes(data), size=len(data), payload=data)

    @staticmethod
    def from_layer(layer: Layer) -> "Blob":
        return Blob(
            media_type=mediatypes.SIM_LAYER,
            digest=layer.digest,
            size=layer.size,
            payload=layer,
        )

    def descriptor(self) -> Descriptor:
        return Descriptor(self.media_type, self.digest, self.size)

    def as_layer(self) -> Layer:
        if isinstance(self.payload, Layer):
            return self.payload
        return Layer.from_bytes(self.payload)

    def as_bytes(self) -> bytes:
        if isinstance(self.payload, bytes):
            return self.payload
        return self.payload.to_bytes()

    def as_json(self) -> dict:
        return json.loads(self.as_bytes().decode("utf-8"))


def check_blob(blob: Blob) -> Optional[IntegrityFinding]:
    """Recompute *blob*'s content identity against its descriptor.

    Layer digests cover entry identities; content types with declared
    digests (e.g. PaddedContent) are not recomputable from serialized
    bytes, so for Layer payloads the stored object itself is verified.
    Returns ``None`` when the blob is intact.
    """
    if isinstance(blob.payload, Layer):
        actual = blob.payload.digest
        if actual != blob.digest:
            return IntegrityFinding(
                digest=blob.digest, kind=KIND_DIGEST_MISMATCH,
                detail=f"content hashes to {actual}",
            )
        return None
    actual = digest_bytes(blob.payload)
    if actual != blob.digest:
        return IntegrityFinding(
            digest=blob.digest, kind=KIND_DIGEST_MISMATCH,
            detail=f"content hashes to {actual}",
        )
    if len(blob.payload) != blob.size:
        return IntegrityFinding(
            digest=blob.digest, kind=KIND_SIZE_MISMATCH,
            detail=f"declared {blob.size} bytes, stored {len(blob.payload)}",
        )
    return None


class BlobStore:
    """Digest-keyed blob map with descriptor-checked retrieval."""

    def __init__(self) -> None:
        self._blobs: Dict[str, Blob] = {}
        #: Optional :class:`repro.resilience.faults.FaultInjector`; armed
        #: *before* any mutation so an injected fault can never leave a
        #: truncated or half-written blob behind.  Corruption faults are
        #: the exception by design: they mutate the payload *during* the
        #: put, modelling silent at-rest corruption.
        self.fault_injector = None
        #: Telemetry sink; counts bytes in/out and content-address cache
        #: hits (a put whose digest is already stored moved zero bytes).
        self.telemetry = NULL_TELEMETRY
        #: Re-hash content on :meth:`get` (memoized per digest).
        self.verify_reads = VERIFY_READS_DEFAULT
        self._verified: set = set()
        self._quarantine: Dict[str, Tuple[Blob, IntegrityFinding]] = {}

    def _arm(self, site: str, key: str) -> None:
        if self.fault_injector is not None:
            self.fault_injector.arm(site, key)

    def __len__(self) -> int:
        return len(self._blobs)

    def __contains__(self, digest: str) -> bool:
        return digest in self._blobs

    def digests(self) -> Iterator[str]:
        return iter(sorted(self._blobs))

    def put(self, blob: Blob) -> Descriptor:
        self._arm("blob.write", blob.digest)
        inj = self.fault_injector
        if inj is not None and inj.corrupting("blob.store"):
            data = blob.as_bytes()
            mutated = inj.corrupt("blob.store", blob.digest, data)
            if mutated is not data:
                # Silent at-rest corruption: the descriptor keeps claiming
                # the original digest/size; only the payload is wrong.
                blob = Blob(
                    media_type=blob.media_type,
                    digest=blob.digest,
                    size=blob.size,
                    payload=mutated,
                )
        if self.telemetry.enabled:
            m = self.telemetry.metrics
            m.counter("oci_blob_writes_total").inc()
            if blob.digest in self._blobs:
                m.counter("oci_blob_cache_hits_total").inc()
            else:
                m.counter("oci_blob_cache_misses_total").inc()
                m.counter("oci_blob_bytes_written_total").inc(blob.size)
                m.histogram("oci_blob_size_bytes").observe(blob.size)
        self._blobs[blob.digest] = blob
        self._verified.discard(blob.digest)
        if self.telemetry.enabled:
            self.telemetry.metrics.gauge("oci_blob_store_blobs").set(len(self._blobs))
        return blob.descriptor()

    def put_verified(self, blob: Blob, attempts: int = 3) -> Descriptor:
        """Store *blob* and prove the stored copy re-hashes clean.

        A hostile injector can corrupt the write itself (``blob.store``),
        so promotion paths that must never leave bad bytes behind —
        mirror sync, repair — re-read and re-hash after the put, retrying
        up to *attempts* times before raising a typed
        :class:`IntegrityError` with the surviving finding.
        """
        finding = None
        for _ in range(max(1, attempts)):
            desc = self.put(blob)
            stored = self._blobs.get(blob.digest)
            finding = check_blob(stored) if stored is not None else IntegrityFinding(
                digest=blob.digest, kind=KIND_DIGEST_MISMATCH,
                detail="blob vanished during verified put",
            )
            if finding is None:
                self._verified.add(blob.digest)
                return desc
            self._verified.discard(blob.digest)
        raise IntegrityError(site="blob.write", finding=finding)

    def missing_of(self, digests) -> List[str]:
        """The subset of *digests* not stored intact (absent, quarantined,
        or failing re-hash), in sorted order.

        The mirror-sync diff uses this to fetch only what a replica
        actually lacks; a blob present but corrupt counts as missing so
        an incremental sync also heals rotten replicas.
        """
        missing = []
        for digest in digests:
            blob = self._blobs.get(digest)
            if blob is None or check_blob(blob) is not None:
                missing.append(digest)
        return sorted(missing)

    def put_bytes(self, data: bytes, media_type: str) -> Descriptor:
        return self.put(Blob.from_bytes(data, media_type))

    def put_layer(self, layer: Layer) -> Descriptor:
        return self.put(Blob.from_layer(layer))

    def get(self, digest: str, verify: Optional[bool] = None) -> Blob:
        self._arm("blob.read", digest)
        if digest in self._quarantine:
            finding = self._quarantine[digest][1]
            raise IntegrityError(
                site="blob.read",
                digest=digest,
                detail=f"blob is quarantined ({finding.kind}: {finding.detail})",
                finding=finding,
            )
        try:
            blob = self._blobs[digest]
        except KeyError:
            raise KeyError(f"blob not found: {digest}") from None
        if verify is None:
            verify = self.verify_reads
        if verify and digest not in self._verified:
            finding = check_blob(blob)
            if finding is not None:
                if self.telemetry.enabled:
                    self.telemetry.metrics.counter(
                        "integrity_corruptions_detected_total").inc()
                    self.telemetry.event(
                        "integrity.violation", site="blob.read",
                        digest=digest, kind=finding.kind)
                raise IntegrityError(site="blob.read", finding=finding)
            self._verified.add(digest)
            if self.telemetry.enabled:
                self.telemetry.metrics.counter("integrity_verifications_total").inc()
        if self.telemetry.enabled:
            m = self.telemetry.metrics
            m.counter("oci_blob_reads_total").inc()
            m.counter("oci_blob_bytes_read_total").inc(blob.size)
        return blob

    def try_get(self, digest: str) -> Optional[Blob]:
        return self._blobs.get(digest)

    def is_verified(self, digest: str) -> bool:
        """Whether *digest*'s content verified clean since it last changed.

        ``put``/``remove``/``quarantine`` all discard the digest from the
        verified set, so a True here means no re-hash is needed — the basis
        for memoized Merkle re-verification higher up the stack.
        """
        return digest in self._verified

    def get_layer(self, digest: str) -> Layer:
        return self.get(digest).as_layer()

    def remove(self, digest: str) -> bool:
        """Drop a blob (garbage collection); True if it was present."""
        self._verified.discard(digest)
        return self._blobs.pop(digest, None) is not None

    def total_size(self) -> int:
        return sum(blob.size for blob in self._blobs.values())

    # ------------------------------------------------------------------
    # quarantine (corrupt blobs kept for forensics/repair, unreadable)
    # ------------------------------------------------------------------

    def quarantine(self, digest: str, finding: Optional[IntegrityFinding] = None) -> bool:
        """Move a blob out of the readable map into quarantine.

        Quarantined blobs raise :class:`IntegrityError` on :meth:`get`
        but remain inspectable via :meth:`quarantined_blob` so a repair
        engine can diff them against a good replica.  Returns True if
        the blob was present and is now quarantined.
        """
        blob = self._blobs.pop(digest, None)
        if blob is None:
            return digest in self._quarantine
        if finding is None:
            finding = check_blob(blob) or IntegrityFinding(
                digest=digest, kind=KIND_QUARANTINED, detail="quarantined by caller")
        self._verified.discard(digest)
        self._quarantine[digest] = (blob, finding)
        if self.telemetry.enabled:
            self.telemetry.metrics.counter("integrity_quarantined_total").inc()
            self.telemetry.event("integrity.quarantined", digest=digest, kind=finding.kind)
        return True

    def quarantined(self) -> List[IntegrityFinding]:
        """Findings for every quarantined blob, sorted by digest."""
        return [self._quarantine[d][1] for d in sorted(self._quarantine)]

    def quarantined_blob(self, digest: str) -> Optional[Blob]:
        """The corrupt payload itself, for forensics; None if not held."""
        entry = self._quarantine.get(digest)
        return entry[0] if entry else None

    def release_quarantine(self, digest: str) -> bool:
        """Drop a quarantine entry (after a successful repair replaced it)."""
        return self._quarantine.pop(digest, None) is not None

    def verify_integrity(self) -> List[IntegrityFinding]:
        """Recompute every active blob's identity; returns typed findings.

        Bypasses the read-verification memo so a sweep always re-hashes.
        Quarantined blobs are not re-reported here — they already carry
        their finding (see :meth:`quarantined`).
        """
        problems: List[IntegrityFinding] = []
        for digest in sorted(self._blobs):
            finding = check_blob(self._blobs[digest])
            if finding is not None:
                problems.append(finding)
        return problems

    def copy_into(self, other: "BlobStore") -> int:
        """Copy all blobs into *other*; returns the number newly added."""
        added = 0
        for digest, blob in self._blobs.items():
            if digest not in other._blobs:
                other._blobs[digest] = blob
                added += 1
        return added
