"""Content-addressed blob storage.

A blob is either raw JSON bytes (configs, manifests) or a :class:`Layer`
object (the simulated tarball).  Both expose digest/size/media-type, so the
store behaves like an OCI blob directory.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Union

from repro.oci import mediatypes
from repro.oci.digest import digest_bytes
from repro.oci.image import Descriptor
from repro.oci.layer import Layer
from repro.telemetry import NULL_TELEMETRY


@dataclass(frozen=True)
class Blob:
    """A stored payload plus its descriptor identity."""

    media_type: str
    digest: str
    size: int
    payload: Union[bytes, Layer]

    @staticmethod
    def from_bytes(data: bytes, media_type: str) -> "Blob":
        return Blob(media_type=media_type, digest=digest_bytes(data), size=len(data), payload=data)

    @staticmethod
    def from_layer(layer: Layer) -> "Blob":
        return Blob(
            media_type=mediatypes.SIM_LAYER,
            digest=layer.digest,
            size=layer.size,
            payload=layer,
        )

    def descriptor(self) -> Descriptor:
        return Descriptor(self.media_type, self.digest, self.size)

    def as_layer(self) -> Layer:
        if isinstance(self.payload, Layer):
            return self.payload
        return Layer.from_bytes(self.payload)

    def as_bytes(self) -> bytes:
        if isinstance(self.payload, bytes):
            return self.payload
        return self.payload.to_bytes()

    def as_json(self) -> dict:
        return json.loads(self.as_bytes().decode("utf-8"))


class BlobStore:
    """Digest-keyed blob map with descriptor-checked retrieval."""

    def __init__(self) -> None:
        self._blobs: Dict[str, Blob] = {}
        #: Optional :class:`repro.resilience.faults.FaultInjector`; armed
        #: *before* any mutation so an injected fault can never leave a
        #: truncated or half-written blob behind.
        self.fault_injector = None
        #: Telemetry sink; counts bytes in/out and content-address cache
        #: hits (a put whose digest is already stored moved zero bytes).
        self.telemetry = NULL_TELEMETRY

    def _arm(self, site: str, key: str) -> None:
        if self.fault_injector is not None:
            self.fault_injector.arm(site, key)

    def __len__(self) -> int:
        return len(self._blobs)

    def __contains__(self, digest: str) -> bool:
        return digest in self._blobs

    def digests(self) -> Iterator[str]:
        return iter(sorted(self._blobs))

    def put(self, blob: Blob) -> Descriptor:
        self._arm("blob.write", blob.digest)
        if self.telemetry.enabled:
            m = self.telemetry.metrics
            m.counter("oci_blob_writes_total").inc()
            if blob.digest in self._blobs:
                m.counter("oci_blob_cache_hits_total").inc()
            else:
                m.counter("oci_blob_cache_misses_total").inc()
                m.counter("oci_blob_bytes_written_total").inc(blob.size)
                m.histogram("oci_blob_size_bytes").observe(blob.size)
        self._blobs[blob.digest] = blob
        if self.telemetry.enabled:
            self.telemetry.metrics.gauge("oci_blob_store_blobs").set(len(self._blobs))
        return blob.descriptor()

    def put_bytes(self, data: bytes, media_type: str) -> Descriptor:
        return self.put(Blob.from_bytes(data, media_type))

    def put_layer(self, layer: Layer) -> Descriptor:
        return self.put(Blob.from_layer(layer))

    def get(self, digest: str) -> Blob:
        self._arm("blob.read", digest)
        try:
            blob = self._blobs[digest]
        except KeyError:
            raise KeyError(f"blob not found: {digest}") from None
        if self.telemetry.enabled:
            m = self.telemetry.metrics
            m.counter("oci_blob_reads_total").inc()
            m.counter("oci_blob_bytes_read_total").inc(blob.size)
        return blob

    def try_get(self, digest: str) -> Optional[Blob]:
        return self._blobs.get(digest)

    def get_layer(self, digest: str) -> Layer:
        return self.get(digest).as_layer()

    def remove(self, digest: str) -> bool:
        """Drop a blob (garbage collection); True if it was present."""
        return self._blobs.pop(digest, None) is not None

    def total_size(self) -> int:
        return sum(blob.size for blob in self._blobs.values())

    def verify_integrity(self) -> list:
        """Recompute every blob's digest; returns a list of problems.

        A mismatch means the store holds truncated or corrupted content —
        the invariant fault-injection sweeps assert can never happen,
        because injectors arm *before* a put mutates the map.
        """
        problems = []
        for digest, blob in sorted(self._blobs.items()):
            if isinstance(blob.payload, Layer):
                # Layer digests cover entry identities; content types with
                # declared digests (e.g. PaddedContent) are not recomputable
                # from serialized bytes, so verify the stored object itself.
                actual = blob.payload.digest
            else:
                actual = digest_bytes(blob.payload)
            if actual != digest:
                problems.append(f"blob {digest} content hashes to {actual}")
        return problems

    def copy_into(self, other: "BlobStore") -> int:
        """Copy all blobs into *other*; returns the number newly added."""
        added = 0
        for digest, blob in self._blobs.items():
            if digest not in other._blobs:
                other._blobs[digest] = blob
                added += 1
        return added
