"""Content-addressed blob storage.

A blob is either raw JSON bytes (configs, manifests) or a :class:`Layer`
object (the simulated tarball).  Both expose digest/size/media-type, so the
store behaves like an OCI blob directory.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Union

from repro.oci import mediatypes
from repro.oci.digest import digest_bytes
from repro.oci.image import Descriptor
from repro.oci.layer import Layer


@dataclass(frozen=True)
class Blob:
    """A stored payload plus its descriptor identity."""

    media_type: str
    digest: str
    size: int
    payload: Union[bytes, Layer]

    @staticmethod
    def from_bytes(data: bytes, media_type: str) -> "Blob":
        return Blob(media_type=media_type, digest=digest_bytes(data), size=len(data), payload=data)

    @staticmethod
    def from_layer(layer: Layer) -> "Blob":
        return Blob(
            media_type=mediatypes.SIM_LAYER,
            digest=layer.digest,
            size=layer.size,
            payload=layer,
        )

    def descriptor(self) -> Descriptor:
        return Descriptor(self.media_type, self.digest, self.size)

    def as_layer(self) -> Layer:
        if isinstance(self.payload, Layer):
            return self.payload
        return Layer.from_bytes(self.payload)

    def as_bytes(self) -> bytes:
        if isinstance(self.payload, bytes):
            return self.payload
        return self.payload.to_bytes()

    def as_json(self) -> dict:
        return json.loads(self.as_bytes().decode("utf-8"))


class BlobStore:
    """Digest-keyed blob map with descriptor-checked retrieval."""

    def __init__(self) -> None:
        self._blobs: Dict[str, Blob] = {}

    def __len__(self) -> int:
        return len(self._blobs)

    def __contains__(self, digest: str) -> bool:
        return digest in self._blobs

    def digests(self) -> Iterator[str]:
        return iter(sorted(self._blobs))

    def put(self, blob: Blob) -> Descriptor:
        self._blobs[blob.digest] = blob
        return blob.descriptor()

    def put_bytes(self, data: bytes, media_type: str) -> Descriptor:
        return self.put(Blob.from_bytes(data, media_type))

    def put_layer(self, layer: Layer) -> Descriptor:
        return self.put(Blob.from_layer(layer))

    def get(self, digest: str) -> Blob:
        try:
            return self._blobs[digest]
        except KeyError:
            raise KeyError(f"blob not found: {digest}") from None

    def try_get(self, digest: str) -> Optional[Blob]:
        return self._blobs.get(digest)

    def get_layer(self, digest: str) -> Layer:
        return self.get(digest).as_layer()

    def total_size(self) -> int:
        return sum(blob.size for blob in self._blobs.values())

    def copy_into(self, other: "BlobStore") -> int:
        """Copy all blobs into *other*; returns the number newly added."""
        added = 0
        for digest, blob in self._blobs.items():
            if digest not in other._blobs:
                other._blobs[digest] = blob
                added += 1
        return added
