"""OCI layout: an ``index.json`` plus a blob store.

This is the unit the coMtainer workflow moves around: ``buildah push
xxx.dist oci:./xxx.dist.oci`` creates one, the user-side ``coMtainer-build``
adds a ``<tag>+coM`` manifest to its index, and the system-side
``coMtainer-rebuild`` adds ``<tag>+coMre``.  The layout can also be saved
to / loaded from a real directory for inspection.

On-disk persistence is crash-consistent: :meth:`OCILayout.save` stages
everything in a sibling temp directory with a per-file checksum manifest
(``checksums.json``) and atomically renames it into place, so readers
never observe a half-written layout.  :meth:`OCILayout.load` verifies
every file against that manifest (and every blob against its digest)
and raises a typed :class:`repro.integrity.IntegrityError` on mismatch.
"""

from __future__ import annotations

import json
import os
import shutil
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.integrity import (
    KIND_CHECKSUM_MISMATCH,
    KIND_DIGEST_MISMATCH,
    KIND_MISSING,
    KIND_UNPARSEABLE,
    IntegrityError,
    IntegrityFinding,
)
from repro.oci import mediatypes
from repro.oci.apply import flatten_layers
from repro.oci.blobs import Blob, BlobStore, check_blob
from repro.oci.digest import digest_bytes
from repro.oci.image import Descriptor, ImageConfig, Manifest
from repro.oci.layer import Layer
from repro.vfs import VirtualFilesystem

#: File recording ``{relpath: sha256 digest}`` for every file a save wrote.
CHECKSUM_MANIFEST = "checksums.json"


@dataclass
class ResolvedImage:
    """A manifest resolved down to its config and layer objects."""

    manifest: Manifest
    config: ImageConfig
    layers: List[Layer] = field(default_factory=list)

    def filesystem(self) -> VirtualFilesystem:
        """Flatten the layer stack into the image's final filesystem state."""
        return flatten_layers(self.layers)

    @property
    def total_layer_size(self) -> int:
        return self.manifest.total_layer_size

    def verify(self) -> List[IntegrityFinding]:
        """Merkle-style walk: manifest -> config -> layers.

        Re-hashes the resolved config and every layer against the digests
        the manifest declares, so one corrupt link anywhere in the tree
        surfaces as a typed finding.
        """
        findings: List[IntegrityFinding] = []
        actual_config = digest_bytes(self.config.to_bytes())
        if actual_config != self.manifest.config.digest:
            findings.append(
                IntegrityFinding(
                    digest=self.manifest.config.digest,
                    kind=KIND_DIGEST_MISMATCH,
                    detail=f"config hashes to {actual_config}",
                )
            )
        if len(self.layers) != len(self.manifest.layers):
            findings.append(
                IntegrityFinding(
                    digest=self.manifest.digest,
                    kind=KIND_MISSING,
                    detail=(
                        f"manifest declares {len(self.manifest.layers)} layers, "
                        f"resolved {len(self.layers)}"
                    ),
                )
            )
        for desc, layer in zip(self.manifest.layers, self.layers):
            if layer.digest != desc.digest:
                findings.append(
                    IntegrityFinding(
                        digest=desc.digest,
                        kind=KIND_DIGEST_MISMATCH,
                        detail=f"layer hashes to {layer.digest}",
                    )
                )
        return findings

    def check(self, site: str) -> "ResolvedImage":
        """Raise :class:`IntegrityError` (first finding) if the tree is bad."""
        findings = self.verify()
        if findings:
            raise IntegrityError(site=site, finding=findings[0])
        return self


class OCILayout:
    """An OCI image layout (``oci-layout`` + ``index.json`` + ``blobs/``)."""

    def __init__(self) -> None:
        self.blobs = BlobStore()
        self.index: List[Descriptor] = []

    # ------------------------------------------------------------------
    # index manipulation
    # ------------------------------------------------------------------

    def tags(self) -> List[str]:
        return [
            d.annotations[mediatypes.ANNOTATION_REF_NAME]
            for d in self.index
            if mediatypes.ANNOTATION_REF_NAME in d.annotations
        ]

    def add_manifest(
        self,
        manifest: Manifest,
        config: ImageConfig,
        layers: List[Layer],
        tag: Optional[str] = None,
        annotations: Optional[Dict[str, str]] = None,
    ) -> Descriptor:
        """Store all blobs of an image and register its manifest in the index."""
        self.blobs.put_bytes(config.to_bytes(), mediatypes.IMAGE_CONFIG)
        for layer in layers:
            self.blobs.put_layer(layer)
        self.blobs.put_bytes(manifest.to_bytes(), mediatypes.IMAGE_MANIFEST)
        anns = dict(annotations or {})
        if tag is not None:
            anns[mediatypes.ANNOTATION_REF_NAME] = tag
            # A re-pushed tag replaces its previous index entry.
            self.index = [
                d
                for d in self.index
                if d.annotations.get(mediatypes.ANNOTATION_REF_NAME) != tag
            ]
        desc = manifest.descriptor(annotations=anns)
        self.index.append(desc)
        return desc

    def manifest_descriptor(self, tag: str) -> Descriptor:
        for desc in self.index:
            if desc.annotations.get(mediatypes.ANNOTATION_REF_NAME) == tag:
                return desc
        raise KeyError(f"tag not found in layout index: {tag!r}")

    def has_tag(self, tag: str) -> bool:
        return any(
            d.annotations.get(mediatypes.ANNOTATION_REF_NAME) == tag for d in self.index
        )

    def manifest_map(self) -> Dict[str, str]:
        """``tag -> manifest digest`` for every tagged index entry.

        Shares its shape with :meth:`ImageRegistry.manifest_map`, so the
        federation fsck can diff a saved layout against registry replicas
        (and layouts against each other) through one protocol.
        """
        return {
            d.annotations[mediatypes.ANNOTATION_REF_NAME]: d.digest
            for d in self.index
            if mediatypes.ANNOTATION_REF_NAME in d.annotations
        }

    # ------------------------------------------------------------------
    # resolution
    # ------------------------------------------------------------------

    def resolve(self, tag: str) -> ResolvedImage:
        desc = self.manifest_descriptor(tag)
        return self.resolve_descriptor(desc)

    def resolve_descriptor(self, desc: Descriptor) -> ResolvedImage:
        manifest = Manifest.from_json(self.blobs.get(desc.digest).as_json())
        config = ImageConfig.from_json(self.blobs.get(manifest.config.digest).as_json())
        layers = [self.blobs.get_layer(ld.digest) for ld in manifest.layers]
        return ResolvedImage(manifest=manifest, config=config, layers=layers)

    # ------------------------------------------------------------------
    # garbage collection & invariants
    # ------------------------------------------------------------------

    def referenced_digests(self) -> set:
        """Every blob digest reachable from an index descriptor."""
        refs: set = set()
        for desc in self.index:
            refs.add(desc.digest)
            if desc.media_type != mediatypes.IMAGE_MANIFEST:
                continue
            blob = self.blobs.try_get(desc.digest)
            if blob is None:
                continue
            try:
                manifest = Manifest.from_json(blob.as_json())
            except (ValueError, KeyError, TypeError):
                # A corrupted manifest blob: its own digest stays
                # referenced (so fsck/repair target it); the closure
                # becomes reachable again once it is restored.
                continue
            refs.add(manifest.config.digest)
            refs.update(ld.digest for ld in manifest.layers)
        return refs

    def gc(self) -> int:
        """Drop blobs unreachable from the index; returns the count removed.

        Replaced tags (a re-run ``coMtainer-rebuild`` overwriting
        ``+coMre``) and abandoned recovery attempts leave unreferenced
        blobs behind; the resilient pipeline sweeps them so a degraded
        session never strands partial state in the layout.
        """
        reachable = self.referenced_digests()
        orphans = [d for d in self.blobs.digests() if d not in reachable]
        for digest in orphans:
            self.blobs.remove(digest)
        return len(orphans)

    def audit(self) -> List[str]:
        """Layout invariants: no missing, truncated, or orphaned blobs."""
        problems = [str(f) for f in self.blobs.verify_integrity()]
        reachable = self.referenced_digests()
        for digest in reachable:
            if digest not in self.blobs:
                problems.append(f"missing referenced blob {digest}")
        for digest in self.blobs.digests():
            if digest not in reachable:
                problems.append(f"orphaned blob {digest}")
        return problems

    # ------------------------------------------------------------------
    # persistence (inspection/debugging; blobs serialize as canonical JSON)
    # ------------------------------------------------------------------

    def index_json(self) -> dict:
        return {
            "schemaVersion": 2,
            "mediaType": mediatypes.IMAGE_INDEX,
            "manifests": [d.to_json() for d in self.index],
        }

    def save(self, directory: str) -> None:
        """Crash-consistent save: stage, checksum, atomic rename.

        All files (including a ``checksums.json`` manifest recording the
        sha256 of each file *as intended*) land in a sibling staging
        directory first; only a fully-written staging dir is renamed into
        place, with the previous layout kept aside until the swap
        completes.  Corruption faults armed at ``layout.save`` mutate the
        bytes after checksumming — exactly what a failing disk does — so
        :meth:`load` can detect them.
        """
        directory = os.path.normpath(directory)
        staged = directory + ".saving"
        backup = directory + ".replaced"
        inj = self.blobs.fault_injector
        corrupting = inj is not None and inj.corrupting("layout.save")
        files: Dict[str, bytes] = {
            "oci-layout": json.dumps({"imageLayoutVersion": "1.0.0"}).encode("utf-8"),
            "index.json": json.dumps(
                self.index_json(), indent=2, sort_keys=True
            ).encode("utf-8"),
        }
        for digest in self.blobs.digests():
            blob = self.blobs.get(digest)
            files[f"blobs/sha256/{digest.split(':', 1)[1]}"] = blob.as_bytes()
        manifest = {
            "version": 1,
            "files": {rel: digest_bytes(data) for rel, data in files.items()},
        }
        shutil.rmtree(staged, ignore_errors=True)
        shutil.rmtree(backup, ignore_errors=True)
        try:
            os.makedirs(os.path.join(staged, "blobs", "sha256"))
            for rel in sorted(files):
                data = files[rel]
                if corrupting:
                    data = inj.corrupt("layout.save", rel, data)
                with open(os.path.join(staged, *rel.split("/")), "wb") as fh:
                    fh.write(data)
            with open(
                os.path.join(staged, CHECKSUM_MANIFEST), "w", encoding="utf-8"
            ) as fh:
                json.dump(manifest, fh, indent=2, sort_keys=True)
            if os.path.exists(directory):
                os.rename(directory, backup)
            os.rename(staged, directory)
        except BaseException:
            shutil.rmtree(staged, ignore_errors=True)
            if os.path.exists(backup) and not os.path.exists(directory):
                os.rename(backup, directory)
            raise
        shutil.rmtree(backup, ignore_errors=True)

    @staticmethod
    def load(directory: str, verify: bool = True) -> "OCILayout":
        """Load a saved layout, verifying content unless *verify* is False.

        With *verify* on (the default) every file is checked against the
        ``checksums.json`` manifest when one exists, and every blob is
        re-hashed against its filename digest; any mismatch raises a
        typed :class:`IntegrityError` naming the offending file.  With
        *verify* off, corrupt or unparseable blobs are loaded best-effort
        (or skipped) so ``fsck`` can inspect a damaged layout.
        """
        checksums: Dict[str, str] = {}
        manifest_path = os.path.join(directory, CHECKSUM_MANIFEST)
        if os.path.exists(manifest_path):
            try:
                with open(manifest_path, encoding="utf-8") as fh:
                    checksums = dict(json.load(fh).get("files", {}))
            except (OSError, UnicodeDecodeError, json.JSONDecodeError) as exc:
                if verify:
                    raise IntegrityError(
                        site="layout.load",
                        digest=CHECKSUM_MANIFEST,
                        detail=f"checksum manifest unreadable: {exc}",
                    ) from exc

        def read_file(relpath: str) -> bytes:
            with open(os.path.join(directory, *relpath.split("/")), "rb") as fh:
                data = fh.read()
            if verify and relpath in checksums:
                actual = digest_bytes(data)
                if actual != checksums[relpath]:
                    raise IntegrityError(
                        site="layout.load",
                        finding=IntegrityFinding(
                            digest=relpath,
                            kind=KIND_CHECKSUM_MISMATCH,
                            detail=(
                                f"recorded {checksums[relpath]}, "
                                f"content hashes to {actual}"
                            ),
                        ),
                    )
            return data

        layout = OCILayout()
        index_data = read_file("index.json")
        try:
            index = json.loads(index_data.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise IntegrityError(
                site="layout.load",
                finding=IntegrityFinding(
                    digest="index.json", kind=KIND_UNPARSEABLE, detail=str(exc)
                ),
            ) from exc
        layout.index = [Descriptor.from_json(d) for d in index.get("manifests", [])]
        blob_dir = os.path.join(directory, "blobs", "sha256")
        if os.path.isdir(blob_dir):
            for name in sorted(os.listdir(blob_dir)):
                data = read_file(f"blobs/sha256/{name}")
                declared = "sha256:" + name
                media_type = _sniff_media_type(data)
                if media_type == mediatypes.SIM_LAYER:
                    try:
                        layer = Layer.from_bytes(data)
                    except Exception as exc:
                        if verify:
                            raise IntegrityError(
                                site="layout.load",
                                finding=IntegrityFinding(
                                    digest=declared,
                                    kind=KIND_UNPARSEABLE,
                                    detail=f"layer blob unparseable: {exc}",
                                ),
                            ) from exc
                        continue
                    blob = Blob(
                        media_type=media_type,
                        digest=declared,
                        size=layer.size,
                        payload=layer,
                    )
                else:
                    blob = Blob(
                        media_type=media_type,
                        digest=declared,
                        size=len(data),
                        payload=data,
                    )
                if verify:
                    finding = check_blob(blob)
                    if finding is not None:
                        raise IntegrityError(site="layout.load", finding=finding)
                layout.blobs.put(blob)
        return layout


def _sniff_media_type(data: bytes) -> str:
    """Best-effort media type detection for loaded blob files."""
    try:
        obj = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError):
        return mediatypes.IMAGE_LAYER_TAR
    if isinstance(obj, dict):
        if "entries" in obj:
            return mediatypes.SIM_LAYER
        if obj.get("mediaType") == mediatypes.IMAGE_MANIFEST or "layers" in obj:
            return mediatypes.IMAGE_MANIFEST
        if "rootfs" in obj:
            return mediatypes.IMAGE_CONFIG
    return mediatypes.IMAGE_CONFIG
