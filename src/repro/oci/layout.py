"""OCI layout: an ``index.json`` plus a blob store.

This is the unit the coMtainer workflow moves around: ``buildah push
xxx.dist oci:./xxx.dist.oci`` creates one, the user-side ``coMtainer-build``
adds a ``<tag>+coM`` manifest to its index, and the system-side
``coMtainer-rebuild`` adds ``<tag>+coMre``.  The layout can also be saved
to / loaded from a real directory for inspection.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.oci import mediatypes
from repro.oci.apply import flatten_layers
from repro.oci.blobs import Blob, BlobStore
from repro.oci.image import Descriptor, ImageConfig, Manifest
from repro.oci.layer import Layer
from repro.vfs import VirtualFilesystem


@dataclass
class ResolvedImage:
    """A manifest resolved down to its config and layer objects."""

    manifest: Manifest
    config: ImageConfig
    layers: List[Layer] = field(default_factory=list)

    def filesystem(self) -> VirtualFilesystem:
        """Flatten the layer stack into the image's final filesystem state."""
        return flatten_layers(self.layers)

    @property
    def total_layer_size(self) -> int:
        return self.manifest.total_layer_size


class OCILayout:
    """An OCI image layout (``oci-layout`` + ``index.json`` + ``blobs/``)."""

    def __init__(self) -> None:
        self.blobs = BlobStore()
        self.index: List[Descriptor] = []

    # ------------------------------------------------------------------
    # index manipulation
    # ------------------------------------------------------------------

    def tags(self) -> List[str]:
        return [
            d.annotations[mediatypes.ANNOTATION_REF_NAME]
            for d in self.index
            if mediatypes.ANNOTATION_REF_NAME in d.annotations
        ]

    def add_manifest(
        self,
        manifest: Manifest,
        config: ImageConfig,
        layers: List[Layer],
        tag: Optional[str] = None,
        annotations: Optional[Dict[str, str]] = None,
    ) -> Descriptor:
        """Store all blobs of an image and register its manifest in the index."""
        self.blobs.put_bytes(config.to_bytes(), mediatypes.IMAGE_CONFIG)
        for layer in layers:
            self.blobs.put_layer(layer)
        self.blobs.put_bytes(manifest.to_bytes(), mediatypes.IMAGE_MANIFEST)
        anns = dict(annotations or {})
        if tag is not None:
            anns[mediatypes.ANNOTATION_REF_NAME] = tag
            # A re-pushed tag replaces its previous index entry.
            self.index = [
                d
                for d in self.index
                if d.annotations.get(mediatypes.ANNOTATION_REF_NAME) != tag
            ]
        desc = manifest.descriptor(annotations=anns)
        self.index.append(desc)
        return desc

    def manifest_descriptor(self, tag: str) -> Descriptor:
        for desc in self.index:
            if desc.annotations.get(mediatypes.ANNOTATION_REF_NAME) == tag:
                return desc
        raise KeyError(f"tag not found in layout index: {tag!r}")

    def has_tag(self, tag: str) -> bool:
        return any(
            d.annotations.get(mediatypes.ANNOTATION_REF_NAME) == tag for d in self.index
        )

    # ------------------------------------------------------------------
    # resolution
    # ------------------------------------------------------------------

    def resolve(self, tag: str) -> ResolvedImage:
        desc = self.manifest_descriptor(tag)
        return self.resolve_descriptor(desc)

    def resolve_descriptor(self, desc: Descriptor) -> ResolvedImage:
        manifest = Manifest.from_json(self.blobs.get(desc.digest).as_json())
        config = ImageConfig.from_json(self.blobs.get(manifest.config.digest).as_json())
        layers = [self.blobs.get_layer(ld.digest) for ld in manifest.layers]
        return ResolvedImage(manifest=manifest, config=config, layers=layers)

    # ------------------------------------------------------------------
    # garbage collection & invariants
    # ------------------------------------------------------------------

    def referenced_digests(self) -> set:
        """Every blob digest reachable from an index descriptor."""
        refs: set = set()
        for desc in self.index:
            refs.add(desc.digest)
            if desc.media_type != mediatypes.IMAGE_MANIFEST:
                continue
            blob = self.blobs.try_get(desc.digest)
            if blob is None:
                continue
            manifest = Manifest.from_json(blob.as_json())
            refs.add(manifest.config.digest)
            refs.update(ld.digest for ld in manifest.layers)
        return refs

    def gc(self) -> int:
        """Drop blobs unreachable from the index; returns the count removed.

        Replaced tags (a re-run ``coMtainer-rebuild`` overwriting
        ``+coMre``) and abandoned recovery attempts leave unreferenced
        blobs behind; the resilient pipeline sweeps them so a degraded
        session never strands partial state in the layout.
        """
        reachable = self.referenced_digests()
        orphans = [d for d in self.blobs.digests() if d not in reachable]
        for digest in orphans:
            self.blobs.remove(digest)
        return len(orphans)

    def audit(self) -> List[str]:
        """Layout invariants: no missing, truncated, or orphaned blobs."""
        problems = self.blobs.verify_integrity()
        reachable = self.referenced_digests()
        for digest in reachable:
            if digest not in self.blobs:
                problems.append(f"missing referenced blob {digest}")
        for digest in self.blobs.digests():
            if digest not in reachable:
                problems.append(f"orphaned blob {digest}")
        return problems

    # ------------------------------------------------------------------
    # persistence (inspection/debugging; blobs serialize as canonical JSON)
    # ------------------------------------------------------------------

    def index_json(self) -> dict:
        return {
            "schemaVersion": 2,
            "mediaType": mediatypes.IMAGE_INDEX,
            "manifests": [d.to_json() for d in self.index],
        }

    def save(self, directory: str) -> None:
        os.makedirs(os.path.join(directory, "blobs", "sha256"), exist_ok=True)
        with open(os.path.join(directory, "oci-layout"), "w", encoding="utf-8") as fh:
            json.dump({"imageLayoutVersion": "1.0.0"}, fh)
        with open(os.path.join(directory, "index.json"), "w", encoding="utf-8") as fh:
            json.dump(self.index_json(), fh, indent=2, sort_keys=True)
        for digest in self.blobs.digests():
            blob = self.blobs.get(digest)
            hexpart = digest.split(":", 1)[1]
            path = os.path.join(directory, "blobs", "sha256", hexpart)
            with open(path, "wb") as fh:
                fh.write(blob.as_bytes())

    @staticmethod
    def load(directory: str) -> "OCILayout":
        layout = OCILayout()
        with open(os.path.join(directory, "index.json"), encoding="utf-8") as fh:
            index = json.load(fh)
        layout.index = [Descriptor.from_json(d) for d in index.get("manifests", [])]
        blob_dir = os.path.join(directory, "blobs", "sha256")
        if os.path.isdir(blob_dir):
            for name in os.listdir(blob_dir):
                with open(os.path.join(blob_dir, name), "rb") as fh:
                    data = fh.read()
                media_type = _sniff_media_type(data)
                if media_type == mediatypes.SIM_LAYER:
                    layout.blobs.put(
                        Blob(
                            media_type=media_type,
                            digest="sha256:" + name,
                            size=Layer.from_bytes(data).size,
                            payload=Layer.from_bytes(data),
                        )
                    )
                else:
                    layout.blobs.put_bytes(data, media_type)
        return layout


def _sniff_media_type(data: bytes) -> str:
    """Best-effort media type detection for loaded blob files."""
    try:
        obj = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError):
        return mediatypes.IMAGE_LAYER_TAR
    if isinstance(obj, dict):
        if "entries" in obj:
            return mediatypes.SIM_LAYER
        if obj.get("mediaType") == mediatypes.IMAGE_MANIFEST or "layers" in obj:
            return mediatypes.IMAGE_MANIFEST
        if "rootfs" in obj:
            return mediatypes.IMAGE_CONFIG
    return mediatypes.IMAGE_CONFIG
