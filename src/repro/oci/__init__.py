"""OCI image substrate.

Implements the Open Container Initiative image data model that the
coMtainer workflow manipulates: content-addressed blobs, ordered layers
with whiteout semantics, image configs and manifests, OCI layout
directories with an ``index.json``, and a small name:tag registry.

Layers are *simulated tarballs*: an ordered list of typed entries whose
digest is computed over a canonical JSON serialization (stable and cheap
even for multi-hundred-MiB synthetic payloads).  ``Layer.to_tar_bytes``
can materialize a real tar archive for layers whose contents are inline.
"""

from repro.oci.apply import apply_layer, flatten_layers
from repro.oci.blobs import Blob, BlobStore
from repro.oci.diff import diff_filesystems
from repro.oci.digest import digest_bytes, digest_json, is_valid_digest
from repro.oci.image import Descriptor, ImageConfig, Manifest
from repro.oci.layer import Layer, LayerEntry
from repro.oci.layout import OCILayout, ResolvedImage
from repro.oci.registry import ImageRegistry

from repro.oci import mediatypes

__all__ = [
    "Blob",
    "BlobStore",
    "Descriptor",
    "ImageConfig",
    "ImageRegistry",
    "Layer",
    "LayerEntry",
    "Manifest",
    "OCILayout",
    "ResolvedImage",
    "apply_layer",
    "diff_filesystems",
    "digest_bytes",
    "digest_json",
    "flatten_layers",
    "is_valid_digest",
    "mediatypes",
]
