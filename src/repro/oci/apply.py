"""Applying layers onto a virtual filesystem.

This is the layer-application half of the "POSIX file system simulator"
the paper needs to compute an image's final filesystem state: entries are
applied in order; whiteouts delete, opaque markers clear directories, and
later layers shadow earlier ones.
"""

from __future__ import annotations

from typing import Iterable

from repro.oci.layer import (
    KIND_DIR,
    KIND_FILE,
    KIND_OPAQUE,
    KIND_SYMLINK,
    KIND_WHITEOUT,
    Layer,
)
from repro.vfs import Directory, VirtualFilesystem


def apply_layer(fs: VirtualFilesystem, layer: Layer) -> VirtualFilesystem:
    """Apply *layer*'s entries to *fs* in order; returns *fs* for chaining."""
    for entry in layer.entries:
        if entry.kind == KIND_WHITEOUT:
            fs.remove(entry.path, recursive=True, missing_ok=True)
        elif entry.kind == KIND_OPAQUE:
            node = fs.try_get_node(entry.path, follow_symlinks=False)
            if isinstance(node, Directory):
                node.children.clear()
            else:
                fs.remove(entry.path, recursive=True, missing_ok=True)
                fs.makedirs(entry.path)
        elif entry.kind == KIND_DIR:
            node = fs.try_get_node(entry.path, follow_symlinks=False)
            if isinstance(node, Directory):
                node.mode = entry.mode
            else:
                fs.remove(entry.path, recursive=True, missing_ok=True)
                fs.makedirs(entry.path, mode=entry.mode)
        elif entry.kind == KIND_FILE:
            assert entry.content is not None
            fs.remove(entry.path, recursive=True, missing_ok=True)
            fs.write_file(
                entry.path,
                entry.content,
                mode=entry.mode,
                mtime=entry.mtime,
                create_parents=True,
            )
        elif entry.kind == KIND_SYMLINK:
            fs.remove(entry.path, recursive=True, missing_ok=True)
            fs.symlink(entry.link_target, entry.path, create_parents=True)
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown layer entry kind: {entry.kind!r}")
    return fs


def flatten_layers(layers: Iterable[Layer]) -> VirtualFilesystem:
    """Compute the final filesystem state of an ordered layer stack."""
    fs = VirtualFilesystem()
    for layer in layers:
        apply_layer(fs, layer)
    return fs
