"""Applying layers onto a virtual filesystem.

This is the layer-application half of the "POSIX file system simulator"
the paper needs to compute an image's final filesystem state: entries are
applied in order; whiteouts delete, opaque markers clear directories, and
later layers shadow earlier ones.

Layer application is on the hot path of every adaptation (each rebuild
re-flattens the extended image stack), so two optimizations apply here:

* :class:`_LayerApplier` keeps a directory cache across entries (and, in
  :func:`flatten_layers`, across layers), so the common run of file entries
  sharing a parent directory resolves that directory once instead of once
  per entry.  Entries that can change path resolution (whiteouts, opaque
  markers, symlinks, anything replacing a directory) conservatively drop
  the cache — correctness over speed for the rare kinds.
* :func:`flatten_layers` memoizes finished trees by the layer-digest tuple
  and hands out O(1) copy-on-write clones, so re-adaptations reuse prior
  rebuilt layers wholesale instead of re-applying them.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterable, List, Optional

from repro.oci.layer import (
    KIND_DIR,
    KIND_FILE,
    KIND_OPAQUE,
    KIND_SYMLINK,
    KIND_WHITEOUT,
    Layer,
)
from repro.vfs import Directory, RegularFile, VirtualFilesystem
from repro.vfs import paths as vpath


class _LayerApplier:
    """Applies layer entries with a persistent resolved-directory cache.

    The cache maps *as-written* dirname strings to writable
    :class:`Directory` nodes.  Because two different strings can resolve to
    the same directory through symlinks, invalidation never tries to be
    clever about aliases: any entry that might change resolution (or
    detach a cached node) clears the whole cache.
    """

    def __init__(self, fs: VirtualFilesystem) -> None:
        self.fs = fs
        self._dirs: Dict[str, Directory] = {}

    def _parent(self, path: str) -> tuple:
        dirpath = vpath.dirname(path)
        parent = self._dirs.get(dirpath)
        if parent is None:
            parent = self.fs.writable_dir(dirpath, create=True)
            self._dirs[dirpath] = parent
        return parent, vpath.basename(path)

    def apply_entry(self, entry) -> None:
        fs = self.fs
        kind = entry.kind
        if kind == KIND_FILE:
            assert entry.content is not None
            parent, name = self._parent(entry.path)
            existing = parent.children.get(name)
            if existing is not None and not isinstance(existing, RegularFile):
                # Replacing a directory or symlink can invalidate cached
                # resolutions (including via aliases we cannot see).
                self._dirs.clear()
                fs.remove(entry.path, recursive=True, missing_ok=True)
                parent, name = self._parent(entry.path)
            parent.children[name] = RegularFile(
                mode=entry.mode, mtime=entry.mtime, content=entry.content
            )
        elif kind == KIND_WHITEOUT:
            node = fs.try_get_node(entry.path, follow_symlinks=False)
            if node is not None and not isinstance(node, RegularFile):
                self._dirs.clear()
            fs.remove(entry.path, recursive=True, missing_ok=True)
        elif kind == KIND_OPAQUE:
            node = fs.try_get_node(entry.path, follow_symlinks=False)
            self._dirs.clear()
            if isinstance(node, Directory):
                fs.writable_dir(entry.path).children.clear()
            else:
                fs.remove(entry.path, recursive=True, missing_ok=True)
                fs.makedirs(entry.path)
        elif kind == KIND_DIR:
            node = fs.try_get_node(entry.path, follow_symlinks=False)
            if isinstance(node, Directory):
                fs.writable_dir(entry.path).mode = entry.mode
            else:
                if node is not None:
                    self._dirs.clear()
                fs.remove(entry.path, recursive=True, missing_ok=True)
                fs.makedirs(entry.path, mode=entry.mode)
        elif kind == KIND_SYMLINK:
            self._dirs.clear()
            fs.remove(entry.path, recursive=True, missing_ok=True)
            fs.symlink(entry.link_target, entry.path, create_parents=True)
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown layer entry kind: {entry.kind!r}")


def apply_layer(fs: VirtualFilesystem, layer: Layer) -> VirtualFilesystem:
    """Apply *layer*'s entries to *fs* in order; returns *fs* for chaining."""
    applier = _LayerApplier(fs)
    for entry in layer.entries:
        applier.apply_entry(entry)
    return fs


# Finished flatten results keyed by the layer-digest tuple.  Entries are
# private snapshots: lookups hand out copy-on-write clones, so callers can
# mutate their tree freely without disturbing the memo.
_FLATTEN_MEMO: "OrderedDict[tuple, VirtualFilesystem]" = OrderedDict()
_FLATTEN_MEMO_CAP = 64


def flatten_memo_clear() -> None:
    """Drop all memoized flatten results (test isolation hook)."""
    _FLATTEN_MEMO.clear()


def flatten_layers(
    layers: Iterable[Layer], *, reuse: bool = True
) -> VirtualFilesystem:
    """Compute the final filesystem state of an ordered layer stack.

    With *reuse* (the default) the result is memoized by the stack's
    layer-digest tuple; a repeat flatten of an identical stack returns an
    O(1) copy-on-write clone instead of re-applying every entry.  A layer's
    digest covers the canonical identity of every entry (content by
    digest), so equal keys imply equal trees.
    """
    stack: List[Layer] = list(layers)
    key: Optional[tuple] = None
    if reuse:
        key = tuple(layer.digest for layer in stack)
        hit = _FLATTEN_MEMO.get(key)
        if hit is not None:
            _FLATTEN_MEMO.move_to_end(key)
            return hit.clone()
    fs = VirtualFilesystem()
    applier = _LayerApplier(fs)
    for layer in stack:
        for entry in layer.entries:
            applier.apply_entry(entry)
    if key is not None:
        _FLATTEN_MEMO[key] = fs.clone()
        while len(_FLATTEN_MEMO) > _FLATTEN_MEMO_CAP:
            _FLATTEN_MEMO.popitem(last=False)
    return fs
