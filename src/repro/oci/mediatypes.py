"""OCI media type constants.

The simulated layer type replaces ``…image.layer.v1.tar`` — the payload is a
canonical JSON entry list rather than a tar stream — but it occupies the same
structural position in manifests, so everything downstream (index, manifest,
config relationships) matches the OCI image-spec.
"""

IMAGE_INDEX = "application/vnd.oci.image.index.v1+json"
IMAGE_MANIFEST = "application/vnd.oci.image.manifest.v1+json"
IMAGE_CONFIG = "application/vnd.oci.image.config.v1+json"
IMAGE_LAYER_TAR = "application/vnd.oci.image.layer.v1.tar"
SIM_LAYER = "application/vnd.repro.sim-layer.v1+json"
#: Checkpoint journal of an interrupted ``coMtainer-rebuild`` (persisted
#: alongside the cache layer in the layout's blob store; never pushed as
#: a taggable image).
REBUILD_JOURNAL = "application/vnd.comtainer.rebuild-journal.v1+json"
#: Content-addressed rebuild artifact cache: compiled outputs keyed by
#: transformed-command digest + produced-input digests, shareable across
#: rebuilds (PGO instrument→use, repeated adapts, other cluster nodes).
REBUILD_ARTIFACTS = "application/vnd.comtainer.rebuild-artifacts.v1+json"

# Annotation keys (OCI standard + coMtainer extensions).
ANNOTATION_REF_NAME = "org.opencontainers.image.ref.name"
ANNOTATION_CREATED = "org.opencontainers.image.created"
ANNOTATION_COMTAINER_KIND = "io.comtainer.kind"
ANNOTATION_COMTAINER_BASE = "io.comtainer.base-manifest"
ANNOTATION_COMTAINER_JOURNAL = "io.comtainer.journal"
ANNOTATION_COMTAINER_ARTIFACTS = "io.comtainer.artifact-cache"
ANNOTATION_COMTAINER_RUNG = "io.comtainer.resilience-rung"

# Tag suffixes used by the paper's workflow (Artifact Description B.2):
# after coMtainer-build a ``+coM`` manifest appears in index.json, after
# coMtainer-rebuild a ``+coMre`` manifest appears.
TAG_SUFFIX_EXTENDED = "+coM"
TAG_SUFFIX_REBUILT = "+coMre"
