"""Content digests (``sha256:<hex>``) and canonical JSON."""

from __future__ import annotations

import hashlib
import json
import re
from typing import Any

_DIGEST_RE = re.compile(r"^sha256:[0-9a-f]{64}$")


def canonical_json(obj: Any) -> bytes:
    """Deterministic JSON serialization (sorted keys, tight separators)."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":")).encode("utf-8")


def digest_bytes(data: bytes) -> str:
    return "sha256:" + hashlib.sha256(data).hexdigest()


def digest_json(obj: Any) -> str:
    return digest_bytes(canonical_json(obj))


def is_valid_digest(value: str) -> bool:
    return bool(_DIGEST_RE.match(value))


def short_digest(value: str, length: int = 12) -> str:
    """Abbreviate ``sha256:abcd...`` to its first *length* hex chars."""
    if ":" in value:
        value = value.split(":", 1)[1]
    return value[:length]
