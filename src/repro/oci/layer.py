"""Image layers: ordered typed entries with whiteout semantics.

A layer records filesystem *changes*: directories, regular files, symlinks,
whiteouts (deletions) and opaque-directory markers, in application order.
The digest is computed over a canonical JSON form of the entries so it is
stable, cheap, and independent of whether file payloads are inline or
synthetic.  ``to_tar_bytes`` can produce a real POSIX tar for inline-only
layers (used by tests and by the on-disk layout exporter).
"""

from __future__ import annotations

import base64
import io
import tarfile
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional

from repro.oci.digest import canonical_json, digest_bytes
from repro.vfs import paths as vpath
from repro.vfs.content import FileContent, InlineContent, SyntheticContent

# Kinds of layer entries.
KIND_DIR = "dir"
KIND_FILE = "file"
KIND_SYMLINK = "symlink"
KIND_WHITEOUT = "whiteout"
KIND_OPAQUE = "opaque"

_TAR_BLOCK = 512

WHITEOUT_PREFIX = ".wh."
OPAQUE_MARKER = ".wh..wh..opq"


@dataclass(frozen=True)
class LayerEntry:
    """One change record inside a layer."""

    kind: str
    path: str
    mode: int = 0o644
    size: int = 0
    content: Optional[FileContent] = None
    link_target: str = ""
    mtime: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "path", vpath.normalize(self.path))
        if self.kind == KIND_FILE and self.content is None:
            object.__setattr__(self, "content", InlineContent())
        if self.kind == KIND_FILE and self.content is not None:
            object.__setattr__(self, "size", self.content.size)

    # -- construction helpers ------------------------------------------------

    @staticmethod
    def directory(path: str, mode: int = 0o755) -> "LayerEntry":
        return LayerEntry(kind=KIND_DIR, path=path, mode=mode)

    @staticmethod
    def file(path: str, content: FileContent, mode: int = 0o644, mtime: int = 0) -> "LayerEntry":
        return LayerEntry(kind=KIND_FILE, path=path, mode=mode, content=content, mtime=mtime)

    @staticmethod
    def symlink(path: str, target: str) -> "LayerEntry":
        return LayerEntry(kind=KIND_SYMLINK, path=path, mode=0o777, link_target=target)

    @staticmethod
    def whiteout(path: str) -> "LayerEntry":
        return LayerEntry(kind=KIND_WHITEOUT, path=path)

    @staticmethod
    def opaque(path: str) -> "LayerEntry":
        return LayerEntry(kind=KIND_OPAQUE, path=path)

    # -- serialization --------------------------------------------------------

    def to_json(self) -> Dict[str, Any]:
        obj: Dict[str, Any] = {"kind": self.kind, "path": self.path, "mode": self.mode}
        if self.kind == KIND_FILE:
            assert self.content is not None
            obj["size"] = self.content.size
            obj["digest"] = self.content.digest
            obj["mtime"] = self.mtime
            if isinstance(self.content, SyntheticContent):
                obj["synthetic"] = {"seed": self.content.seed, "size": self.content.size}
            elif hasattr(self.content, "pad") and hasattr(self.content, "payload"):
                # PaddedContent serializes *structurally*: its digest covers
                # (payload, pad), not the materialized bytes, so flattening
                # to inline data would change the entry identity — and with
                # it the layer digest — across a save/load round trip.
                obj["padded"] = {
                    "payload": base64.b64encode(self.content.payload).decode("ascii"),
                    "pad": self.content.pad,
                }
            else:
                obj["data"] = base64.b64encode(self.content.read()).decode("ascii")
        elif self.kind == KIND_SYMLINK:
            obj["target"] = self.link_target
        return obj

    @staticmethod
    def from_json(obj: Dict[str, Any]) -> "LayerEntry":
        kind = obj["kind"]
        if kind == KIND_FILE:
            if "synthetic" in obj:
                content: FileContent = SyntheticContent(
                    seed=obj["synthetic"]["seed"], declared_size=obj["synthetic"]["size"]
                )
            elif "padded" in obj:
                from repro.toolchain.artifacts import PaddedContent

                content = PaddedContent(
                    base64.b64decode(obj["padded"]["payload"]), obj["padded"]["pad"]
                )
            else:
                content = InlineContent(base64.b64decode(obj.get("data", "")))
            return LayerEntry.file(
                obj["path"], content, mode=obj.get("mode", 0o644), mtime=obj.get("mtime", 0)
            )
        if kind == KIND_SYMLINK:
            return LayerEntry.symlink(obj["path"], obj["target"])
        return LayerEntry(kind=kind, path=obj["path"], mode=obj.get("mode", 0o755))

    def identity(self) -> Dict[str, Any]:
        """Digest-relevant view of the entry (payload by digest, not bytes)."""
        ident: Dict[str, Any] = {"kind": self.kind, "path": self.path, "mode": self.mode}
        if self.kind == KIND_FILE:
            assert self.content is not None
            ident["size"] = self.content.size
            ident["digest"] = self.content.digest
        elif self.kind == KIND_SYMLINK:
            ident["target"] = self.link_target
        return ident


@dataclass
class Layer:
    """An ordered collection of :class:`LayerEntry`."""

    entries: List[LayerEntry] = field(default_factory=list)
    comment: str = ""

    def __post_init__(self) -> None:
        self._digest_cache: Optional[str] = None

    def add(self, entry: LayerEntry) -> "Layer":
        self.entries.append(entry)
        self._digest_cache = None
        return self

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self):
        return iter(self.entries)

    @property
    def digest(self) -> str:
        """Stable content digest over the canonical entry identities.

        Cached — layers are append-only through :meth:`add`, which is the
        sole invalidation point.
        """
        cached = self._digest_cache
        if cached is None:
            cached = self._digest_cache = digest_bytes(
                canonical_json([e.identity() for e in self.entries])
            )
        return cached

    @property
    def size(self) -> int:
        """Tar-equivalent byte size (512-byte headers, padded payloads)."""
        total = 0
        for entry in self.entries:
            total += _TAR_BLOCK  # header
            if entry.kind == KIND_FILE:
                payload = entry.size
                total += (payload + _TAR_BLOCK - 1) // _TAR_BLOCK * _TAR_BLOCK
        return total + 2 * _TAR_BLOCK  # tar end-of-archive blocks

    @property
    def payload_size(self) -> int:
        """Sum of raw file payload sizes (no tar framing)."""
        return sum(e.size for e in self.entries if e.kind == KIND_FILE)

    def paths(self) -> List[str]:
        return [e.path for e in self.entries]

    # -- serialization ---------------------------------------------------------

    def to_json(self) -> Dict[str, Any]:
        return {
            "comment": self.comment,
            "entries": [e.to_json() for e in self.entries],
        }

    @staticmethod
    def from_json(obj: Dict[str, Any]) -> "Layer":
        layer = Layer(comment=obj.get("comment", ""))
        for entry_obj in obj.get("entries", []):
            layer.add(LayerEntry.from_json(entry_obj))
        return layer

    def to_bytes(self) -> bytes:
        return canonical_json(self.to_json())

    @staticmethod
    def from_bytes(data: bytes) -> "Layer":
        import json

        return Layer.from_json(json.loads(data.decode("utf-8")))

    # -- tar export -------------------------------------------------------------

    def to_tar_bytes(self) -> bytes:
        """Materialize a real tar archive (whiteouts become ``.wh.`` files).

        Synthetic contents are materialized too, so call this only on layers
        whose payloads are reasonably small.
        """
        buf = io.BytesIO()
        with tarfile.open(fileobj=buf, mode="w") as tar:
            for entry in self.entries:
                if entry.kind == KIND_WHITEOUT:
                    name = vpath.join(
                        vpath.dirname(entry.path),
                        WHITEOUT_PREFIX + vpath.basename(entry.path),
                    )
                    info = tarfile.TarInfo(name=name.lstrip("/"))
                    info.size = 0
                    tar.addfile(info)
                    continue
                if entry.kind == KIND_OPAQUE:
                    name = vpath.join(entry.path, OPAQUE_MARKER)
                    info = tarfile.TarInfo(name=name.lstrip("/"))
                    info.size = 0
                    tar.addfile(info)
                    continue
                info = tarfile.TarInfo(name=entry.path.lstrip("/") or ".")
                info.mode = entry.mode
                info.mtime = entry.mtime
                if entry.kind == KIND_DIR:
                    info.type = tarfile.DIRTYPE
                    tar.addfile(info)
                elif entry.kind == KIND_SYMLINK:
                    info.type = tarfile.SYMTYPE
                    info.linkname = entry.link_target
                    tar.addfile(info)
                else:
                    assert entry.content is not None
                    data = entry.content.read()
                    info.size = len(data)
                    tar.addfile(info, io.BytesIO(data))
        return buf.getvalue()

    @staticmethod
    def from_tar_bytes(data: bytes) -> "Layer":
        """Parse a real tar archive back into a Layer (inverse of export)."""
        layer = Layer()
        with tarfile.open(fileobj=io.BytesIO(data), mode="r") as tar:
            for info in tar:
                name = info.name
                while name.startswith("./"):
                    name = name[2:]
                path = "/" + name.lstrip("/")
                base = vpath.basename(path)
                if base == OPAQUE_MARKER:
                    layer.add(LayerEntry.opaque(vpath.dirname(path)))
                elif base.startswith(WHITEOUT_PREFIX):
                    original = vpath.join(vpath.dirname(path), base[len(WHITEOUT_PREFIX):])
                    layer.add(LayerEntry.whiteout(original))
                elif info.isdir():
                    layer.add(LayerEntry.directory(path, mode=info.mode))
                elif info.issym():
                    layer.add(LayerEntry.symlink(path, info.linkname))
                elif info.isfile():
                    fobj = tar.extractfile(info)
                    payload = fobj.read() if fobj is not None else b""
                    layer.add(
                        LayerEntry.file(
                            path, InlineContent(payload), mode=info.mode, mtime=int(info.mtime)
                        )
                    )
        return layer


def layer_from_entries(entries: Iterable[LayerEntry], comment: str = "") -> Layer:
    layer = Layer(comment=comment)
    for entry in entries:
        layer.add(entry)
    return layer
