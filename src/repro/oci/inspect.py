"""Image inspection utilities (a ``skopeo inspect`` / ``dive`` analogue).

Summarizes manifests, layer stacks and inter-image diffs in structured
form for the CLI and for debugging workflow states, and provides layer
squashing (flattening an image's stack into a single layer, useful when
exporting redirected images to runtimes that dislike deep stacks).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.oci.diff import layer_from_tree
from repro.oci.digest import short_digest
from repro.oci.image import ImageConfig
from repro.oci.layer import Layer
from repro.oci.layout import ResolvedImage


@dataclass
class LayerSummary:
    digest: str
    entries: int
    files: int
    whiteouts: int
    payload_bytes: int
    comment: str

    @staticmethod
    def of(layer: Layer) -> "LayerSummary":
        return LayerSummary(
            digest=short_digest(layer.digest),
            entries=len(layer),
            files=sum(1 for e in layer if e.kind == "file"),
            whiteouts=sum(1 for e in layer if e.kind in ("whiteout", "opaque")),
            payload_bytes=layer.payload_size,
            comment=layer.comment,
        )


@dataclass
class ImageSummary:
    architecture: str
    entrypoint: List[str]
    env: List[str]
    labels: Dict[str, str]
    history: List[str]
    layers: List[LayerSummary] = field(default_factory=list)

    @property
    def total_payload(self) -> int:
        return sum(layer.payload_bytes for layer in self.layers)

    def render(self) -> str:
        lines = [
            f"architecture : {self.architecture}",
            f"entrypoint   : {self.entrypoint}",
            f"layers       : {len(self.layers)} "
            f"({self.total_payload / (1024 * 1024):.2f} MiB payload)",
        ]
        for i, layer in enumerate(self.layers):
            note = f"  [{i}] {layer.digest}  {layer.entries:>5} entries  " \
                   f"{layer.payload_bytes / (1024 * 1024):>9.3f} MiB"
            if layer.comment:
                note += f"  # {layer.comment}"
            lines.append(note)
        for entry in self.history:
            lines.append(f"history      : {entry}")
        return "\n".join(lines)


def inspect_image(resolved: ResolvedImage) -> ImageSummary:
    config = resolved.config
    return ImageSummary(
        architecture=config.architecture,
        entrypoint=list(config.entrypoint),
        env=list(config.env),
        labels=dict(config.labels),
        history=[h.get("created_by", "?") for h in config.history],
        layers=[LayerSummary.of(layer) for layer in resolved.layers],
    )


def diff_images(
    a: ResolvedImage, b: ResolvedImage
) -> Tuple[List[str], List[str], List[str]]:
    """(added, removed, changed) file paths between two images."""
    fs_a = a.filesystem()
    fs_b = b.filesystem()
    files_a = {p: n.content.digest for p, n in fs_a.iter_files()}
    files_b = {p: n.content.digest for p, n in fs_b.iter_files()}
    added = sorted(set(files_b) - set(files_a))
    removed = sorted(set(files_a) - set(files_b))
    changed = sorted(
        p for p in set(files_a) & set(files_b) if files_a[p] != files_b[p]
    )
    return added, removed, changed


def squash(resolved: ResolvedImage, comment: str = "squashed") -> Tuple[ImageConfig, Layer]:
    """Flatten an image's layer stack into a single equivalent layer."""
    fs = resolved.filesystem()
    layer = layer_from_tree(fs, comment=comment)
    config = resolved.config.clone()
    config.diff_ids = [layer.digest]
    config.history = [{"created_by": comment}]
    return config, layer
