"""Generating application build contexts.

``build_context(spec, arch)`` produces the directory a user would run
``buildah build`` in: ``/src`` (synthetic sources + ``build.sh``) and
``/data`` (workload inputs + bulk runtime data).  Data sizes are solved
so the built *original* image hits the app's Table 3 target for that
architecture.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, List, Tuple

from repro.apps.specs import MIB, AppSpec
from repro.pkg import catalog
from repro.toolchain.artifacts import BYTES_PER_SOURCE_BYTE
from repro.vfs import SyntheticContent, VirtualFilesystem, text_content

#: Source files at or below this size are materialized as real C text;
#: larger ones are size-only synthetic payloads.
INLINE_SOURCE_LIMIT = 24 * 1024

GUARDED_ASM_X86 = """\
#if defined(__x86_64__)
static inline void prefetch_block(const double *p) {
    __asm__ volatile("prefetcht0 (%0)" :: "r"(p));
}
#else
static inline void prefetch_block(const double *p) { (void)p; }
#endif
"""

UNGUARDED_ASM_X86 = """\
static inline unsigned long long rdtsc_now(void) {
    unsigned int lo, hi;
    __asm__ volatile("rdtsc" : "=a"(lo), "=d"(hi));
    return ((unsigned long long)hi << 32) | lo;
}
"""


def _source_header(spec: AppSpec, relpath: str) -> str:
    return (
        f"/* {spec.name}: {relpath} (synthetic reproduction source) */\n"
        "#include <math.h>\n#include <stdlib.h>\n"
        + ("#include <mpi.h>\n" if spec.uses_mpi else "")
    )


def _c_body(seed: str, target_size: int) -> str:
    """Deterministic filler code reaching roughly *target_size* bytes."""
    lines: List[str] = []
    size = 0
    i = 0
    while size < target_size:
        line = (
            f"double kern_{seed}_{i}(double x) {{ "
            f"return x * {i}.5e-3 + sqrt(x + {i}); }}\n"
        )
        lines.append(line)
        size += len(line)
        i += 1
    return "".join(lines)


def source_file_plan(spec: AppSpec) -> List[Tuple[str, int, str]]:
    """Plan the source tree: ``(relpath, size, kind)`` per file.

    Kinds: ``main`` (entry point), ``asm`` (contains inline assembly),
    ``kernel`` (bulk).  Sizes sum to ``spec.source_bytes``.
    """
    suffix = spec.source_suffix
    plan: List[Tuple[str, int, str]] = []
    main_size = 2048
    asm_size = 1536
    plan.append((f"main.{suffix}", main_size, "main"))
    for i in range(spec.asm_files):
        plan.append((f"arch_{i:02d}.{suffix}", asm_size, "asm"))
    bulk_files = max(1, spec.n_sources - 1 - spec.asm_files)
    remaining = max(
        bulk_files * 256,
        spec.source_bytes - main_size - spec.asm_files * asm_size,
    )
    per_file = remaining // bulk_files
    for i in range(bulk_files):
        size = per_file if i < bulk_files - 1 else remaining - per_file * (bulk_files - 1)
        plan.append((f"kernel_{i:02d}.{suffix}", size, "kernel"))
    return plan


def generate_sources(spec: AppSpec, isa: str) -> Dict[str, object]:
    """Source path -> content for the app on a given ISA."""
    out: Dict[str, object] = {}
    for relpath, size, kind in source_file_plan(spec):
        header = _source_header(spec, relpath)
        if kind == "main":
            body = header + (
                "int main(int argc, char **argv) {\n"
                + ("    MPI_Init(&argc, &argv);\n" if spec.uses_mpi else "")
                + "    /* driver loop elided */\n"
                + ("    MPI_Finalize();\n" if spec.uses_mpi else "")
                + "    return 0;\n}\n"
            )
            body += _c_body("main", max(0, size - len(body)))
            out[relpath] = text_content(body)
        elif kind == "asm":
            asm = GUARDED_ASM_X86 if spec.asm_guarded else UNGUARDED_ASM_X86
            body = header + asm + _c_body(relpath.split(".")[0], max(0, size - len(header) - len(asm)))
            out[relpath] = text_content(body)
        elif size <= INLINE_SOURCE_LIMIT:
            body = header + _c_body(relpath.split(".")[0], max(0, size - len(header)))
            out[relpath] = text_content(body)
        else:
            out[relpath] = SyntheticContent(f"{spec.name}:{relpath}", size)
    return out


def _compilers(spec: AppSpec) -> Tuple[str, str]:
    """(compile driver, link driver) for the app."""
    if spec.uses_mpi:
        return ("mpicc", "mpicc") if spec.language == "c" else ("mpicxx", "mpicxx")
    return ("gcc", "gcc") if spec.language == "c" else ("g++", "g++")


def build_script(spec: AppSpec, isa: str) -> str:
    """The app's build.sh: explicit compiler invocations (no make)."""
    cc, ld = _compilers(spec)
    flags = ["-O3"]
    flags += [f"-D{d}" for d in spec.defines]
    flags += list(spec.isa_flags.get(isa, ()))
    flag_text = " ".join(flags)

    plan = source_file_plan(spec)
    files = [relpath for relpath, _, _ in plan]
    groups: List[List[str]] = [[] for _ in range(max(1, spec.n_compile_commands))]
    for index, relpath in enumerate(files):
        groups[index % len(groups)].append(relpath)

    lines = [
        f"# build script for {spec.name} (generated)",
        "set -e",
        "mkdir -p /app",
    ]
    for group in groups:
        if group:
            lines.append(f"{cc} {flag_text} -c " + " ".join(group))

    objects = [f.rsplit(".", 1)[0] + ".o" for f in files]
    link_inputs: List[str] = []
    if spec.use_static_lib and len(objects) > 2:
        lib_members = objects[1:]
        lines.append(f"ar rcs lib{spec.name}.a " + " ".join(lib_members))
        link_inputs = [objects[0], f"lib{spec.name}.a"]
    else:
        link_inputs = objects
    link_libs = " ".join(f"-l{lib}" for lib in spec.libs) + " -lm"
    lines.append(
        f"{ld} {flag_text} " + " ".join(link_inputs)
        + f" -o /app/{spec.binary_name} {link_libs}".rstrip()
    )
    return "\n".join(lines) + "\n"


def estimate_executable_size(spec: AppSpec, lto: bool = False) -> int:
    """Mirror of the driver's artifact sizing (kept in sync by tests)."""
    density = BYTES_PER_SOURCE_BYTE["3"] * (1.25 if lto else 1.0)
    total = 0
    for content in generate_sources(spec, "x86-64").values():
        total += max(64, int(content.size * density))
    return int(total * 1.1) + 256


@lru_cache(maxsize=None)
def _package_size(arch: str, name: str) -> int:
    repo = catalog.build_generic_repository(arch)
    pkg = repo.latest(name)
    return pkg.installed_size if pkg is not None else 0


def runtime_extra_bytes(spec: AppSpec, arch: str) -> int:
    return sum(_package_size(arch, name) for name in spec.runtime_packages)


def data_plan(spec: AppSpec, arch: str) -> List[Tuple[str, int]]:
    """Runtime data files sized to hit the Table 3 image target."""
    inputs = [(f"in.{w}", 2048) for w in spec.workloads if w]
    target = int(spec.image_size.get(arch, 0.0) * MIB)
    if target <= 0:
        # No Table 3 entry: a nominal data payload.
        return inputs + [(f"{spec.name}.tables.bin", 256 * 1024)]
    base = catalog.BASE_PLUS_RUNTIME_TARGET[arch]
    pad = (
        target
        - base
        - runtime_extra_bytes(spec, arch)
        - estimate_executable_size(spec)
        - sum(size for _, size in inputs)
    )
    pad = max(4096, pad)
    data_name = {
        "lammps": "potentials.bin",
        "openmx": "vps_pao_database.bin",
    }.get(spec.name, "tables.bin")
    return inputs + [(data_name, pad)]


def build_context(spec: AppSpec, arch: str) -> VirtualFilesystem:
    """The buildah build context for (app, architecture)."""
    isa = catalog.ARCH_ISA[arch]
    context = VirtualFilesystem()
    for relpath, content in generate_sources(spec, isa).items():
        context.write_file(f"/src/{relpath}", content, create_parents=True)
    context.write_file("/src/build.sh", build_script(spec, isa), create_parents=True)
    for relpath, size in data_plan(spec, arch):
        context.write_file(
            f"/data/{relpath}",
            SyntheticContent(f"{spec.name}:data:{relpath}", size),
            create_parents=True,
        )
    return context


def app_containerfile(
    spec: AppSpec,
    build_base: str = "ubuntu:24.04",
    dist_base: str = "ubuntu:24.04",
) -> str:
    """The two-stage Containerfile (paper Figures 2 and 6)."""
    devel = "gcc-12 g++-12 gfortran-12 binutils libc6-dev libopenmpi-dev"
    extra_build = list(spec.build_packages) + [
        pkg for pkg in spec.runtime_packages if pkg not in spec.build_packages
    ]
    if extra_build:
        devel += " " + " ".join(extra_build)
    runtime = "libgfortran5 libopenblas0 libopenmpi3"
    if spec.runtime_packages:
        runtime += " " + " ".join(spec.runtime_packages)
    return f"""\
FROM {build_base} AS build
RUN apt-get update && apt-get install -y {devel}
COPY /src /src
WORKDIR /src
RUN sh build.sh

FROM {dist_base} AS dist
RUN apt-get update && apt-get install -y {runtime}
COPY --from=build /app /app
COPY /data /app/share
ENTRYPOINT ["/app/{spec.binary_name}"]
"""
