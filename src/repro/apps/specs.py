"""Application specifications.

Structural facts per app: language, Table 2 LoC, workload inputs, library
dependencies, MPI usage, ISA-specific build content (for §5.5), plus the
Table 3 size calibration targets (original image size per architecture
and cache layer size).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

MIB = 1024 * 1024


@dataclass(frozen=True)
class AppSpec:
    name: str
    language: str                   # "c" or "c++"
    loc: int                        # Table 2
    workloads: Tuple[str, ...]      # input names ("" = single unnamed input)
    uses_mpi: bool = True
    libs: Tuple[str, ...] = ()      # -l libraries beyond implicit ones
    build_packages: Tuple[str, ...] = ()    # extra -dev packages (build stage)
    runtime_packages: Tuple[str, ...] = ()  # extra packages in the dist stage
    n_sources: int = 6              # translation units in the synthetic tree
    n_compile_commands: int = 3     # distinct compile invocations in build.sh
    use_static_lib: bool = False    # build an intermediate .a
    defines: Tuple[str, ...] = ()
    #: ISA-specific compiler flags the app's build script uses, per ISA.
    isa_flags: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    #: Source files containing inline assembly; ``guarded`` asm has a
    #: portable fallback (#else branch), unguarded asm blocks cross-ISA.
    asm_files: int = 0
    asm_guarded: bool = True
    #: Table 3 calibration (MiB).  Apps absent from Table 3 carry estimates.
    image_size: Dict[str, float] = field(default_factory=dict)  # arch -> MiB
    cache_size: float = 0.5

    @property
    def source_suffix(self) -> str:
        return {"c": "c", "c++": "cc"}[self.language]

    @property
    def binary_name(self) -> str:
        return {"lammps": "lmp", "openmx": "openmx"}.get(self.name, self.name)

    def workload_names(self) -> List[str]:
        if self.workloads == ("",):
            return [self.name]
        return [f"{self.name}.{w}" for w in self.workloads]

    @property
    def source_bytes(self) -> int:
        """Total synthetic source size.

        The cache layer is sources + the process-models JSON; the models
        document is small (tens of KiB even for LAMMPS), so sources make
        up ~99% of the Table 3 cache target.
        """
        return int(self.cache_size * MIB * 0.99)


_X86_SIMD = ("-msse4.2", "-mavx2")
_ARM_SIMD = ("-moutline-atomics",)


APPS: Dict[str, AppSpec] = {
    spec.name: spec
    for spec in [
        AppSpec(
            name="hpl", language="c", loc=37556, workloads=("",),
            libs=("openblas",), build_packages=("libopenblas-dev",),
            runtime_packages=(), n_sources=14, n_compile_commands=4,
            use_static_lib=True, defines=("HPL_CALL_CBLAS",),
            isa_flags={"x86-64": _X86_SIMD, "aarch64": _ARM_SIMD},
            asm_files=2, asm_guarded=True,
            image_size={"amd64": 170.76, "arm64": 94.86}, cache_size=1.32,
        ),
        AppSpec(
            name="hpcg", language="c++", loc=5529, workloads=("",),
            libs=("openblas",), build_packages=("libopenblas-dev",),
            n_sources=8, n_compile_commands=3,
            isa_flags={"x86-64": ("-mavx2",), "aarch64": ()},
            image_size={"amd64": 170.04, "arm64": 95.37}, cache_size=0.80,
        ),
        AppSpec(
            name="lulesh", language="c++", loc=5546, workloads=("",),
            defines=("USE_MPI=1",), n_sources=6, n_compile_commands=2,
            isa_flags={"x86-64": (), "aarch64": ()},
            image_size={"amd64": 170.29, "arm64": 96.12}, cache_size=0.66,
        ),
        AppSpec(
            name="comd", language="c", loc=4668, workloads=("",),
            n_sources=7, n_compile_commands=2,
            isa_flags={"x86-64": ("-msse4.2",), "aarch64": ()},
            asm_files=1, asm_guarded=True,
            image_size={"amd64": 170.36, "arm64": 94.87}, cache_size=0.75,
        ),
        AppSpec(
            name="hpccg", language="c++", loc=1563, workloads=("",),
            n_sources=4, n_compile_commands=1,
            image_size={"amd64": 170.40, "arm64": 94.77}, cache_size=0.59,
        ),
        AppSpec(
            name="miniaero", language="c++", loc=42056, workloads=("",),
            n_sources=12, n_compile_commands=3,
            isa_flags={"x86-64": ("-mavx2", "-mfma"), "aarch64": ()},
            asm_files=1, asm_guarded=True,
            image_size={"amd64": 170.12, "arm64": 94.63}, cache_size=0.62,
        ),
        AppSpec(
            name="miniamr", language="c", loc=9957, workloads=("",),
            n_sources=9, n_compile_commands=3,
            isa_flags={"x86-64": ("-msse4.2",), "aarch64": ()},
            image_size={"amd64": 170.10, "arm64": 94.62}, cache_size=0.80,
        ),
        AppSpec(
            name="minife", language="c++", loc=28010, workloads=("",),
            libs=("openblas",), build_packages=("libopenblas-dev",),
            n_sources=10, n_compile_commands=3,
            isa_flags={"x86-64": ("-mavx2",), "aarch64": _ARM_SIMD},
            image_size={"amd64": 170.45, "arm64": 95.05}, cache_size=0.85,
        ),
        AppSpec(
            name="minimd", language="c++", loc=4404, workloads=("",),
            n_sources=6, n_compile_commands=2,
            isa_flags={"x86-64": ("-msse4.2", "-mavx2"), "aarch64": ()},
            asm_files=1, asm_guarded=True,
            image_size={"amd64": 170.15, "arm64": 94.75}, cache_size=0.55,
        ),
        AppSpec(
            name="lammps", language="c++", loc=2273423,
            workloads=("chain", "chute", "eam", "lj", "rhodo"),
            libs=("fftw3", "jpeg", "png16"),
            build_packages=("libfftw3-dev",),
            runtime_packages=("libfftw3-3", "libjpeg8", "libpng16-16"),
            n_sources=60, n_compile_commands=6, use_static_lib=True,
            defines=("LAMMPS_GZIP", "FFT_FFTW3"),
            isa_flags={"x86-64": ("-mavx512f", "-mavx2"), "aarch64": ()},
            asm_files=4, asm_guarded=False,   # arch-specific kernel pack
            image_size={"amd64": 203.30, "arm64": 127.23}, cache_size=14.42,
        ),
        AppSpec(
            name="openmx", language="c", loc=287381,
            workloads=("awf5e", "awf7e", "nitro", "pt13"),
            libs=("scalapack-openmpi", "openblas", "fftw3"),
            build_packages=("libopenblas-dev", "libfftw3-dev"),
            runtime_packages=("libscalapack-openmpi2", "libfftw3-3"),
            n_sources=48, n_compile_commands=5,
            defines=("kcomp", "noomp"),
            isa_flags={"x86-64": ("-mavx2",), "aarch64": ()},
            asm_files=3, asm_guarded=False,
            image_size={"amd64": 440.97, "arm64": 359.14}, cache_size=23.99,
        ),
    ]
}


def get_app(name: str) -> AppSpec:
    try:
        return APPS[name]
    except KeyError:
        raise KeyError(f"unknown application: {name!r}") from None


#: Apps the paper's Table 3 reports (all but minife/minimd).
TABLE3_APPS = ("comd", "hpccg", "hpcg", "hpl", "lulesh", "miniaero",
               "miniamr", "lammps", "openmx")

#: Apps that successfully cross ISAs with minor modifications (§5.5).
CROSSISA_APPS = ("hpl", "hpcg", "lulesh", "comd", "hpccg", "miniaero",
                 "miniamr", "minife", "minimd")
