"""Synthetic HPC applications (Table 2 of the paper).

Each application gets a deterministic synthetic source tree, a build
script of real (simulated) compiler invocations, a two-stage
Containerfile (Figure 2 / Figure 6), runtime data files, and — for the
cross-ISA study — per-ISA build flags and optionally inline-assembly
sources.  Sizes are calibrated so the *original* images and coMtainer
cache layers reproduce Table 3.
"""

from repro.apps.specs import APPS, AppSpec, get_app
from repro.apps.generate import (
    app_containerfile,
    build_context,
    estimate_executable_size,
)

__all__ = [
    "APPS",
    "AppSpec",
    "app_containerfile",
    "build_context",
    "estimate_executable_size",
    "get_app",
]
