"""Analytic performance model for the simulated testbeds.

The evaluation figures of the paper are execution-time measurements of
real binaries on real clusters.  Here, binaries carry *provenance* (which
toolchain, flags, libraries produced them) and this package predicts
execution time from that provenance, per workload and per system — with a
calibration chosen so the paper's reported effects reproduce in shape:
scheme orderings, approximate improvement factors, and the outliers
(hpccg degradation, lammps.chain PGO regression, hpcg's AArch64 PGO
regression, LULESH's communication blow-up on 16 AArch64 nodes).
"""

from repro.perf.buildcost import command_cost_seconds, estimate_node_bytes
from repro.perf.model import predict_time, scheme_ratio
from repro.perf.provenance import BinaryTraits, traits_from_executable
from repro.perf.runtime import PerfRecorder, attach_perf
from repro.perf.schemes import SCHEMES, scheme_traits
from repro.perf.workloads import WORKLOADS, WorkloadProfile, get_workload

__all__ = [
    "BinaryTraits",
    "PerfRecorder",
    "SCHEMES",
    "WORKLOADS",
    "WorkloadProfile",
    "attach_perf",
    "command_cost_seconds",
    "estimate_node_bytes",
    "get_workload",
    "predict_time",
    "scheme_ratio",
    "scheme_traits",
    "traits_from_executable",
]
