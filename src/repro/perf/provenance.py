"""Extracting performance-relevant traits from a binary + its image.

The perf model never sees scheme labels ("adapted", "native", ...): it
sees a binary's build provenance and the package database of the image it
runs in.  Library replacement therefore affects *existing* binaries the
way it does in reality — through what the recorded library paths resolve
to at run time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.pkg.database import DpkgDatabase
from repro.pkg.package import Package
from repro.sysmodel import SystemModel
from repro.toolchain.artifacts import ExecutableArtifact
from repro.vfs import VirtualFilesystem
from repro.vfs.errors import VfsError

#: -f flags whose presence marks a hand-tuned native build script.
TUNING_FLAGS = ("fast-math", "unroll-loops", "tree-vectorize", "ipa-cp-clone")

#: Relative compiled-code slowdowns of non-release optimization levels.
OPT_LEVEL_PENALTY = {"0": 1.8, "g": 1.7, "1": 1.2}


@dataclass(frozen=True)
class BinaryTraits:
    """Everything :func:`repro.perf.model.predict_time` needs to know."""

    toolchain: str = "gnu-12"
    isa: str = "x86-64"
    opt_level: str = "2"
    march_native: bool = False
    tuned_flags: bool = False
    lib_quality: float = 1.0       # quality of the workload's key libraries
    mpi_quality: float = 1.0
    mpi_hsn: bool = False
    lto_applied: bool = False
    lto_coverage: float = 0.0
    pgo_applied: bool = False
    pgo_profile: Optional[str] = None
    layout_optimized: bool = False
    layout_profile: Optional[str] = None


def _linked_packages(
    exe: ExecutableArtifact, fs: VirtualFilesystem, db: DpkgDatabase
) -> List[Package]:
    """Resolve the binary's recorded library paths to owning packages."""
    index = db.file_index()
    packages: List[Package] = []
    seen: Set[str] = set()
    for path in exe.lib_paths.values():
        resolved = path
        try:
            resolved = fs.resolve_path(path)
        except VfsError:
            pass
        owner = index.get(resolved) or index.get(path)
        if owner and owner not in seen:
            seen.add(owner)
            packages.append(db.get(owner))
    return packages


def traits_from_executable(
    exe: ExecutableArtifact,
    fs: VirtualFilesystem,
    system: SystemModel,
    lib_kind: str = "none",
    db: Optional[DpkgDatabase] = None,
    mpi_env: Optional[Dict[str, str]] = None,
) -> BinaryTraits:
    """Compute a binary's traits in the context of the image it runs in.

    *lib_kind* is the workload's key library family ("blas"/"fft"/"none");
    *mpi_env* carries the launcher's ``SIM_MPI``/``SIM_MPI_HSN`` settings,
    used as a fallback when the binary has no MPI library recorded.
    """
    from repro.perf.workloads import LIB_KIND_TAGS

    from repro.pkg.rpm import read_package_database

    database = db if db is not None else read_package_database(fs)
    packages = _linked_packages(exe, fs, database)

    want_tags = set(LIB_KIND_TAGS.get(lib_kind, ()))
    lib_quality = 1.0
    for pkg in packages:
        if want_tags & set(pkg.tags):
            lib_quality = max(lib_quality, pkg.quality)

    mpi_quality = 1.0
    mpi_hsn = False
    mpi_found = False
    for pkg in packages:
        if "mpi" in pkg.tags:
            mpi_found = True
            mpi_quality = max(mpi_quality, pkg.quality)
            mpi_hsn = mpi_hsn or "hsn-plugin" in pkg.tags
    if not mpi_found and mpi_env:
        mpi_hsn = mpi_env.get("SIM_MPI_HSN") == "1"
        if mpi_env.get("SIM_MPI", "").startswith(("intel", "ft")):
            mpi_quality = system.native_mpi_quality

    members = exe.member_objects()
    tuned = any(
        any(m.fflags.get(flag) for flag in TUNING_FLAGS) for m in members
    )
    march_native = bool(exe.march) and system.march_is_native(exe.march)

    return BinaryTraits(
        toolchain=exe.toolchain,
        isa=exe.isa,
        opt_level=exe.opt_level or "2",
        march_native=march_native,
        tuned_flags=tuned,
        lib_quality=lib_quality,
        mpi_quality=mpi_quality,
        mpi_hsn=mpi_hsn,
        lto_applied=exe.lto_applied,
        lto_coverage=exe.lto_coverage,
        pgo_applied=exe.pgo_applied,
        pgo_profile=exe.pgo_profile,
        layout_optimized=getattr(exe, "layout_optimized", False),
        layout_profile=getattr(exe, "layout_profile", None),
    )


def profile_id(workload_name: str, system_key: str) -> str:
    """Identifier of PGO profile data gathered by a (workload, system) run."""
    return f"{workload_name}|{system_key}"


def profile_match(profile: Optional[str], workload_name: str, system_key: str) -> float:
    """How representative profile data is for the current run (0..1).

    Matching workload and system -> 1.0; matching workload on the other
    system -> 0.5 (PGO is "highly sensitive to the target system's
    characteristics", §3); a different workload's profile -> 0.15.
    """
    if not profile:
        return 0.0
    wkld, _, sys_key = profile.partition("|")
    if wkld == workload_name and sys_key == system_key:
        return 1.0
    if wkld == workload_name:
        return 0.5
    return 0.15
