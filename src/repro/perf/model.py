"""The forward performance model.

Execution time of a binary on a system:

    t(n) = T_compute(16) * (16/n) * r_compute  +  T_comm(16) * f(n) * P_comm

where ``r_compute`` is the binary's compute slowdown relative to the
native build (1.0 for native), ``P_comm`` its communication penalty
(1.0 for the native MPI stack), and ``f(n) = log2(n)/log2(16)`` the
communication growth (0 at one node, 1 at the 16-node testbed scale).

``r_compute`` decomposes over the workload's time budget:

    r = serial + lib_f * (Q_lib / q_lib)  +  comp_f * (Q_comp / q_comp)

with ``q_lib`` the linked libraries' quality, and ``q_comp`` the compiled
code speed = toolchain quality x vector gain (if built for the native
microarchitecture) x tuning-flag bonus / opt-level penalty.  LTO and PGO
scale the compiled-code share further; their response is per-workload and
can be negative (the paper's lammps.chain and AArch64 hpcg regressions).

At small node counts the compute-side gap widens by the workload's
``single_node_boost`` (bigger per-node working sets — Figure 3 vs 9).
"""

from __future__ import annotations

import hashlib
import math
from typing import Optional

from repro.perf.calibration import calibrate, lib_quality, original_comm_penalty
from repro.perf.provenance import (
    BinaryTraits,
    OPT_LEVEL_PENALTY,
    profile_match,
)
from repro.perf.workloads import WorkloadProfile, get_workload
from repro.sysmodel import SYSTEMS, SystemModel
from repro.toolchain.info import get_toolchain

#: Post-link layout optimization (BOLT-style extension): fraction of the
#: workload's PGO response a layout pass can realize, and the residual
#: benefit left when the binary is already PGO-optimized.
LAYOUT_FRACTION = 0.4
LAYOUT_POST_PGO_RESIDUAL = 0.5


def compiled_speed(
    traits: BinaryTraits, workload: WorkloadProfile, system: SystemModel
) -> float:
    """q_comp: the binary's compiled-code speed (generic GNU -O2 == 1.0)."""
    cal = calibrate(workload.name, system.key)
    toolchain = get_toolchain(traits.toolchain)
    speed = toolchain.quality_on(system.isa)
    if traits.march_native:
        speed *= cal.vector_gain
    if traits.tuned_flags:
        speed *= 1.0 + workload.tuning_gain
    speed /= OPT_LEVEL_PENALTY.get(traits.opt_level, 1.0)
    return speed


def compute_factor(
    traits: BinaryTraits,
    workload: WorkloadProfile,
    system: SystemModel,
    nodes: int,
) -> float:
    """r_compute: compute-time multiplier relative to the native build."""
    cal = calibrate(workload.name, system.key)
    q_lib_native = lib_quality(system, workload.lib_kind)
    q_comp_native = cal.native_compiled_speedup

    q_lib = max(0.05, traits.lib_quality)
    q_comp = max(0.05, compiled_speed(traits, workload, system))

    r = (
        workload.serial_fraction
        + workload.lib_fraction * (q_lib_native / q_lib)
        + workload.compiler_fraction * (q_comp_native / q_comp)
    )

    # LTO / PGO act on the compiled-code share.
    toolchain = get_toolchain(traits.toolchain)
    opt_scale = 1.0
    if traits.lto_applied:
        response = workload.lto_response[system.key]
        opt_scale *= 1.0 - response * toolchain.lto_strength * traits.lto_coverage
    if traits.pgo_applied:
        response = workload.pgo_response[system.key]
        match = profile_match(traits.pgo_profile, workload.name, system.key)
        opt_scale *= 1.0 - response * toolchain.pgo_strength * match
    if traits.layout_optimized:
        response = max(0.0, workload.pgo_response[system.key]) * LAYOUT_FRACTION
        if traits.pgo_applied:
            response *= LAYOUT_POST_PGO_RESIDUAL
        match = profile_match(traits.layout_profile, workload.name, system.key)
        opt_scale *= 1.0 - response * match
    r *= max(0.05, opt_scale)

    # Compute-side effects amplify at small scale (Figure 3 vs Figure 9).
    if nodes < 16:
        boost = workload.boost(system.key)
        scale = 1.0 + (boost - 1.0) * (16 - nodes) / 15.0
        r = 1.0 + (r - 1.0) * scale
    return r


def comm_penalty(traits: BinaryTraits, system: SystemModel) -> float:
    """P_comm: communication-time multiplier relative to the native stack."""
    penalty = 1.0 if traits.mpi_hsn else system.network.hsn_penalty
    penalty *= system.native_mpi_quality / max(0.05, traits.mpi_quality)
    return penalty


def _comm_growth(nodes: int) -> float:
    if nodes <= 1:
        return 0.0
    return math.log2(nodes) / math.log2(16)


def predict_time(
    workload_name: str,
    system: SystemModel,
    traits: BinaryTraits,
    nodes: int = 16,
    jitter_seed: Optional[str] = None,
) -> float:
    """Predicted execution time (seconds) of one run."""
    workload = get_workload(workload_name)
    if traits.isa != system.isa:
        raise ValueError(
            f"binary targets {traits.isa}, system is {system.isa}: "
            "exec format error"
        )
    cal = calibrate(workload_name, system.key)
    nodes = max(1, min(nodes, system.nodes))

    compute = cal.native_compute * (16.0 / nodes) * compute_factor(
        traits, workload, system, nodes
    )
    comm = cal.native_comm * _comm_growth(nodes) * comm_penalty(traits, system)
    time = compute + comm

    if jitter_seed is not None:
        digest = hashlib.sha256(
            f"{workload_name}|{system.key}|{jitter_seed}".encode()
        ).digest()
        fraction = int.from_bytes(digest[:4], "big") / 2**32
        time *= 1.0 + (fraction - 0.5) * 0.02   # deterministic +-1%
    return time


def scheme_ratio(
    workload_name: str,
    system_key: str,
    traits: BinaryTraits,
    nodes: int = 16,
) -> float:
    """Time relative to the native build at the same scale (convenience)."""
    from repro.perf.schemes import scheme_traits

    system = SYSTEMS[system_key]
    native = scheme_traits(workload_name, system, "native")
    t = predict_time(workload_name, system, traits, nodes=nodes)
    t_native = predict_time(workload_name, system, native, nodes=nodes)
    return t / t_native
