"""Hooking the perf model into container execution.

:func:`attach_perf` installs a ``binary_runner`` on a container engine:
executing a simulated application binary then predicts its execution time
from provenance + the image's package database, prints the timing the way
the paper's ``run.sh`` does, records an :class:`ExecutionReport`, and —
when the binary is PGO-instrumented — drops profile data (``.gcda``) into
the working directory, closing the paper's automated PGO feedback loop.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import List, Optional

from repro.containers.container import ProcessContext, RunResult
from repro.perf.model import predict_time
from repro.perf.provenance import profile_id, traits_from_executable
from repro.perf.workloads import WORKLOADS, get_workload
from repro.sysmodel import SystemModel
from repro.toolchain.artifacts import ExecutableArtifact
from repro.vfs import paths as vpath


@dataclass
class ExecutionReport:
    """One simulated application run."""

    workload: str
    system: str
    nodes: int
    seconds: float
    binary: str
    instrumented: bool = False
    traits: Optional[object] = None


@dataclass
class PerfRecorder:
    system: SystemModel
    reports: List[ExecutionReport] = field(default_factory=list)

    @property
    def last(self) -> Optional[ExecutionReport]:
        return self.reports[-1] if self.reports else None


def _workload_from_context(ctx: ProcessContext, path: str) -> Optional[str]:
    """Resolve which workload a binary execution represents.

    Priority: ``SIM_WORKLOAD`` env, ``-in in.<name>`` style argv inputs
    (the LAMMPS convention), then the binary's basename (optionally
    prefixed by its app directory: ``/app/openmx`` + ``pt13.dat``).
    """
    name = ctx.env.get("SIM_WORKLOAD", "")
    if name in WORKLOADS:
        return name
    stem = vpath.basename(path)
    stem = _binary_aliases().get(stem, stem)
    if stem in WORKLOADS:
        return stem
    for arg in ctx.argv[1:]:
        base = vpath.basename(arg)
        if base.startswith("in."):
            base = base[len("in."):]
        elif "." in base:
            base = base.rsplit(".", 1)[0]
        candidate = f"{stem}.{base}"
        if candidate in WORKLOADS:
            return candidate
    return None


def _binary_aliases() -> dict:
    """Binary basename -> app name (e.g. ``lmp`` -> ``lammps``)."""
    from repro.apps.specs import APPS

    return {spec.binary_name: spec.name for spec in APPS.values()}


def attach_perf(engine, system: SystemModel) -> PerfRecorder:
    """Install the perf model as *engine*'s binary runner."""
    recorder = PerfRecorder(system=system)

    def run_binary(
        ctx: ProcessContext, path: str, artifact: ExecutableArtifact
    ) -> RunResult:
        workload_name = _workload_from_context(ctx, path)
        if workload_name is None:
            return RunResult(stdout=f"[simulated execution: {path}]\n")
        workload = get_workload(workload_name)
        nodes_text = ctx.env.get("SIM_NPROCS", ctx.env.get("SIM_NODES", "1"))
        try:
            nodes = max(1, int(nodes_text))
        except ValueError:
            return RunResult(
                exit_code=1,
                stderr=f"{path}: invalid process count {nodes_text!r}",
            )
        mpi_env = {
            "SIM_MPI": ctx.env.get("SIM_MPI", ""),
            "SIM_MPI_HSN": ctx.env.get("SIM_MPI_HSN", ""),
        }
        try:
            traits = traits_from_executable(
                artifact, ctx.fs, system, lib_kind=workload.lib_kind,
                mpi_env=mpi_env,
            )
            seconds = predict_time(
                workload_name, system, traits, nodes=nodes,
                jitter_seed=ctx.env.get("SIM_JITTER"),
            )
        except ValueError as exc:
            return RunResult(exit_code=126, stderr=f"{path}: {exc}")

        if artifact.pgo_instrumented:
            profile = {
                "profile": profile_id(workload_name, system.key),
                "quality": 1.0,
            }
            ctx.fs.write_file(
                vpath.join(ctx.cwd, "default.gcda"),
                json.dumps(profile).encode("utf-8"),
                create_parents=True,
            )

        report = ExecutionReport(
            workload=workload_name,
            system=system.key,
            nodes=nodes,
            seconds=seconds,
            binary=path,
            instrumented=artifact.pgo_instrumented,
            traits=traits,
        )
        recorder.reports.append(report)
        stdout = (
            f"Running {workload_name} on {nodes} node(s) of {system.name}\n"
            f"Elapsed time = {seconds:.3f} (s)\n"
        )
        return RunResult(stdout=stdout)

    engine.binary_runner = run_binary
    return recorder
