"""Workload profiles: Table 2's applications + the calibration table.

Every workload of the paper's evaluation is described by:

* structural facts: owning app, source LoC (Table 2), language, which
  optimized-library family it leans on (``lib_kind``) and how its compute
  time splits across library code / compiled app code / serial rest;
* calibration anchors, cited from the paper:
  - ``native_time``: native 16-node execution time (seconds) per system,
    chosen so the per-system averages match §5.2 (x86-64 avg 21.35 s,
    AArch64 avg 67.0 s);
  - ``comm_share``: fraction of native time spent in MPI at 16 nodes
    (LULESH x86: "communication overhead dominates when lulesh scales
    to 16 nodes");
  - ``target_ratio``: original/native total-time ratio at 16 nodes —
    the Figure 9 shape (avg improvement 96.3% x86 / 66.5% AArch64;
    lammps max +253%, openmx max +99.7%, lulesh +15.6% x86 / +231%
    AArch64; hpccg *degrades* under native toolchains);
  - ``lto_response`` / ``pgo_response``: per-system potential relative
    compute-time reduction of LTO/PGO — the Figure 10 shape (x86 best
    openmx.pt13 +30.4%, worst lammps.chain −12.1%; AArch64 best
    lammps.lj +17.7%, worst hpcg −14.9%; Figure 3's LULESH single-node
    +17.5% LTO / +9.6% PGO);
  - ``tuning_gain``: extra speedup of hand-tuned *native* build scripts
    (``-ffast-math``-style flags) that coMtainer's flag-preserving
    rebuild does not add — the small adapted-vs-native residual
    (22.0 s vs 21.35 s in §5.2);
  - ``single_node_boost``: how much stronger compute-side effects are at
    1 node (bigger per-node working set) — the Figure 3 vs Figure 9
    reconciliation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

#: lib_kind values and the package tags that satisfy them.
LIB_KIND_TAGS = {
    "blas": ("blas", "lapack", "scalapack"),
    "fft": ("fft",),
    "none": (),
}


@dataclass(frozen=True)
class WorkloadProfile:
    name: str                     # e.g. "lammps.eam"
    app: str                      # owning application, e.g. "lammps"
    input_name: str               # workload input, e.g. "eam"
    loc: int                      # Table 2 lines of code (app total)
    language: str
    lib_kind: str                 # "blas" / "fft" / "none"
    lib_fraction: float           # of compute time, in optimized-lib code
    compiler_fraction: float      # of compute time, in app compiled code
    native_time: Dict[str, float]        # system key -> seconds (16 nodes)
    comm_share: Dict[str, float]         # system key -> fraction of native
    target_ratio: Dict[str, float]       # system key -> original/native
    lto_response: Dict[str, float]
    pgo_response: Dict[str, float]
    tuning_gain: float = 0.03
    single_node_boost: Dict[str, float] = field(default_factory=dict)

    @property
    def serial_fraction(self) -> float:
        return max(0.0, 1.0 - self.lib_fraction - self.compiler_fraction)

    def boost(self, system_key: str) -> float:
        return self.single_node_boost.get(system_key, 1.0)


def _w(
    name: str,
    loc: int,
    language: str,
    lib_kind: str,
    lib_f: float,
    comp_f: float,
    x86: Tuple[float, float, float],      # (native_time, comm_share, ratio)
    arm: Tuple[float, float, float],
    lto: Tuple[float, float],             # (x86, arm)
    pgo: Tuple[float, float],
    tuning: float = 0.03,
    boost: Tuple[float, float] = (1.2, 1.3),
) -> WorkloadProfile:
    app, _, input_name = name.partition(".")
    return WorkloadProfile(
        name=name,
        app=app,
        input_name=input_name or name,
        loc=loc,
        language=language,
        lib_kind=lib_kind,
        lib_fraction=lib_f,
        compiler_fraction=comp_f,
        native_time={"x86": x86[0], "arm": arm[0]},
        comm_share={"x86": x86[1], "arm": arm[1]},
        target_ratio={"x86": x86[2], "arm": arm[2]},
        lto_response={"x86": lto[0], "arm": lto[1]},
        pgo_response={"x86": pgo[0], "arm": pgo[1]},
        tuning_gain=tuning,
        single_node_boost={"x86": boost[0], "arm": boost[1]},
    )


#: The 18 workloads of Table 2 (9 benchmarks + 5 LAMMPS + 4 OpenMX inputs).
_PROFILES: List[WorkloadProfile] = [
    # HPL: BLAS-dominated dense linear algebra.
    _w("hpl", 37556, "c", "blas", 0.55, 0.35,
       x86=(45.0, 0.08, 1.90), arm=(140.0, 0.10, 1.50),
       lto=(0.02, 0.015), pgo=(0.01, 0.01), tuning=0.02, boost=(1.3, 1.3)),
    # HPCG: memory-bound SpMV; PGO regresses on AArch64 (Fig. 10b worst, -14.9%).
    _w("hpcg", 5529, "c++", "blas", 0.30, 0.55,
       x86=(30.0, 0.18, 1.60), arm=(95.0, 0.12, 1.40),
       lto=(0.04, -0.06), pgo=(0.03, -0.12), boost=(1.3, 1.3)),
    # LULESH: comm-dominated at 16 nodes on x86 (+15.6%); the AArch64 MPI
    # plugin effect makes it +231% there.  Figure 3 anchors the single-node
    # story: libo+cxxo -50% (x86) / -72% (arm), then LTO +17.5%, PGO +9.6%.
    _w("lulesh", 5546, "c++", "none", 0.0, 0.85,
       x86=(20.0, 0.86, 1.156), arm=(62.0, 0.50, 3.31),
       lto=(0.135, 0.05), pgo=(0.072, 0.04), tuning=0.04, boost=(1.24, 0.98)),
    # CoMD: molecular dynamics mini-app.
    _w("comd", 4668, "c", "none", 0.0, 0.80,
       x86=(12.0, 0.10, 1.80), arm=(38.0, 0.12, 1.60),
       lto=(0.05, 0.03), pgo=(0.04, 0.02), boost=(1.2, 1.4)),
    # HPCCG: the only workload where native/adapted DEGRADE (over-aggressive
    # system-compiler optimizations, §5.2) -> ratio < 1.
    _w("hpccg", 1563, "c++", "none", 0.0, 0.75,
       x86=(6.0, 0.15, 0.93), arm=(19.0, 0.03, 0.95),
       lto=(-0.03, -0.02), pgo=(0.01, 0.01), tuning=0.02, boost=(1.0, 1.0)),
    _w("miniaero", 42056, "c++", "none", 0.0, 0.80,
       x86=(18.0, 0.12, 1.70), arm=(57.0, 0.12, 1.50),
       lto=(0.06, 0.04), pgo=(0.03, 0.02), boost=(1.2, 1.3)),
    _w("miniamr", 9957, "c", "none", 0.0, 0.70,
       x86=(14.0, 0.25, 1.50), arm=(44.0, 0.12, 1.35),
       lto=(0.02, 0.01), pgo=(0.02, 0.015), tuning=0.02, boost=(1.1, 1.2)),
    _w("minife", 28010, "c++", "blas", 0.25, 0.60,
       x86=(16.0, 0.15, 1.75), arm=(50.0, 0.12, 1.55),
       lto=(0.05, 0.03), pgo=(0.04, 0.02), boost=(1.2, 1.3)),
    _w("minimd", 4404, "c++", "none", 0.0, 0.80,
       x86=(10.0, 0.10, 1.70), arm=(31.0, 0.10, 1.50),
       lto=(0.07, 0.05), pgo=(0.05, 0.03), boost=(1.2, 1.3)),
    # LAMMPS: the large app with the paper's max x86 improvement (+253% on
    # eam); chain REGRESSES under LTO+PGO on x86 (Fig. 10a worst, -12.1%).
    _w("lammps.chain", 2273423, "c++", "fft", 0.15, 0.75,
       x86=(25.0, 0.12, 2.80), arm=(78.0, 0.10, 1.90),
       lto=(-0.08, 0.02), pgo=(-0.045, 0.01), tuning=0.04, boost=(1.3, 1.4)),
    _w("lammps.chute", 2273423, "c++", "fft", 0.15, 0.75,
       x86=(18.0, 0.10, 2.60), arm=(57.0, 0.08, 1.85),
       lto=(0.04, 0.05), pgo=(0.03, 0.04), tuning=0.04, boost=(1.3, 1.4)),
    _w("lammps.eam", 2273423, "c++", "fft", 0.10, 0.80,
       x86=(28.0, 0.10, 3.53), arm=(88.0, 0.08, 2.20),
       lto=(0.05, 0.06), pgo=(0.04, 0.04), tuning=0.05, boost=(1.3, 1.4)),
    # lammps.lj: the AArch64 LTO+PGO best case (+17.7%, Fig. 10b).
    _w("lammps.lj", 2273423, "c++", "none", 0.0, 0.85,
       x86=(22.0, 0.08, 3.00), arm=(69.0, 0.08, 2.10),
       lto=(0.06, 0.105), pgo=(0.05, 0.095), tuning=0.05, boost=(1.3, 1.4)),
    _w("lammps.rhodo", 2273423, "c++", "fft", 0.20, 0.70,
       x86=(35.0, 0.15, 3.20), arm=(110.0, 0.10, 2.15),
       lto=(0.05, 0.04), pgo=(0.04, 0.03), tuning=0.04, boost=(1.3, 1.4)),
    # OpenMX: DFT code on ScaLAPACK/BLAS; max x86 improvement 99.7% (§5.2)
    # and the x86 LTO+PGO best case on pt13 (+30.4%, Fig. 10a).
    _w("openmx.awf5e", 287381, "c", "blas", 0.45, 0.45,
       x86=(20.0, 0.20, 1.90), arm=(63.0, 0.12, 1.70),
       lto=(0.08, 0.05), pgo=(0.06, 0.04), boost=(1.2, 1.3)),
    _w("openmx.awf7e", 287381, "c", "blas", 0.45, 0.45,
       x86=(25.0, 0.22, 1.997), arm=(79.0, 0.12, 1.75),
       lto=(0.08, 0.05), pgo=(0.06, 0.04), boost=(1.2, 1.3)),
    _w("openmx.nitro", 287381, "c", "blas", 0.40, 0.50,
       x86=(15.0, 0.18, 1.80), arm=(47.0, 0.10, 1.65),
       lto=(0.09, 0.06), pgo=(0.07, 0.05), boost=(1.2, 1.3)),
    _w("openmx.pt13", 287381, "c", "blas", 0.40, 0.50,
       x86=(25.0, 0.20, 1.90), arm=(79.0, 0.12, 1.70),
       lto=(0.20, 0.06), pgo=(0.20, 0.05), boost=(1.2, 1.3)),
]

WORKLOADS: Dict[str, WorkloadProfile] = {p.name: p for p in _PROFILES}


def get_workload(name: str) -> WorkloadProfile:
    try:
        return WORKLOADS[name]
    except KeyError:
        raise KeyError(f"unknown workload: {name!r}") from None


def workloads_of_app(app: str) -> List[WorkloadProfile]:
    return [p for p in _PROFILES if p.app == app]


def app_names() -> List[str]:
    seen: List[str] = []
    for profile in _PROFILES:
        if profile.app not in seen:
            seen.append(profile.app)
    return seen
