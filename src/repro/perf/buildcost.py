"""Per-command rebuild cost model for the parallel scheduler.

The runtime perf model (:mod:`repro.perf.model`) predicts *execution*
time of a built binary; this module predicts *build* time of one
transformed command, so the wavefront scheduler can charge simulated
rebuild time as a makespan instead of a serial sum.

The model is deliberately simple and fully deterministic:

* a compile command costs a base latency plus a per-byte rate over its
  source inputs (a 2.4 MiB translation-unit group dominates a 4 KiB one);
* an archive (``ar``) is cheap I/O over its member estimate;
* a link pays a base plus a smaller per-byte rate over its inputs, with
  a large multiplier under LTO (whole-program optimization happens at
  link time) and smaller ones under PGO instrumentation/use.

Input sizes for produced dependencies are *estimates* derived from the
transitive source bytes (the real object does not exist at planning
time); :data:`OBJECT_DENSITY` mirrors the artifact size model's
bytes-per-source-byte calibration.  Costs must never depend on ``--jobs``
or on execution order — they are charged, not measured.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict

if TYPE_CHECKING:   # import only for annotations: repro.core imports this
    from repro.core.models.build_graph import BuildGraph

#: Estimated produced-artifact bytes per transitive source byte (mirrors
#: the -O2/-O3 band of ``repro.toolchain.artifacts.BYTES_PER_SOURCE_BYTE``).
OBJECT_DENSITY = 0.44

COMPILE_BASE_SECONDS = 0.35
COMPILE_SECONDS_PER_MIB = 2.2
ARCHIVE_BASE_SECONDS = 0.08
ARCHIVE_SECONDS_PER_MIB = 0.15
LINK_BASE_SECONDS = 0.25
LINK_SECONDS_PER_MIB = 0.6

LTO_COMPILE_FACTOR = 1.15    # -flto adds IR emission work per TU
LTO_LINK_FACTOR = 2.5        # whole-program optimization at link time
PGO_INSTRUMENT_FACTOR = 1.10
PGO_USE_FACTOR = 1.20

_MIB = 1024.0 * 1024.0


def estimate_node_bytes(
    graph: "BuildGraph", source_size: Callable[[str], int]
) -> Dict[str, int]:
    """Estimated byte size of every node, dependencies first.

    Leaf (non-produced) nodes are sized by *source_size* (a lookup into
    the cached sources; unknown paths count as zero).  Produced nodes are
    estimated from their dependency estimates: objects shrink by
    :data:`OBJECT_DENSITY`, archives and executables aggregate their
    inputs.  Deterministic and independent of execution.
    """
    sizes: Dict[str, int] = {}
    for node in graph.topo_order():
        if node.step is None:
            sizes[node.id] = max(0, int(source_size(node.path)))
            continue
        total = sum(sizes.get(dep, 0) for dep in node.deps)
        if node.step.is_archiver:
            sizes[node.id] = total
        elif node.kind == "object":
            sizes[node.id] = int(total * OBJECT_DENSITY)
        else:                       # link products aggregate their inputs
            sizes[node.id] = total
    return sizes


def command_cost_seconds(
    step,
    input_bytes: int,
    lto: bool = False,
    pgo: str = "off",
) -> float:
    """Simulated seconds one transformed command takes on a free worker."""
    mib = max(0, input_bytes) / _MIB
    if step.is_archiver:
        return ARCHIVE_BASE_SECONDS + mib * ARCHIVE_SECONDS_PER_MIB
    if "-c" not in step.argv:   # no compile-only flag: a link command
        cost = LINK_BASE_SECONDS + mib * LINK_SECONDS_PER_MIB
        if lto:
            cost *= LTO_LINK_FACTOR
    else:
        cost = COMPILE_BASE_SECONDS + mib * COMPILE_SECONDS_PER_MIB
        if lto:
            cost *= LTO_COMPILE_FACTOR
    if pgo == "instrument":
        cost *= PGO_INSTRUMENT_FACTOR
    elif pgo == "use":
        cost *= PGO_USE_FACTOR
    return cost
