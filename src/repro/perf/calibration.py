"""Derived calibration quantities.

The workload table stores *targets* (the paper's reported ratios); this
module solves for the underlying model parameters so that the forward
model reproduces them:

* ``original_comm_penalty`` — how much slower the generic plugin-less MPI
  makes communication on a system.
* ``compute_ratio`` (R_c) — original/native ratio of the *compute* part,
  back-solved from the Figure 9 total-time target and the comm share.
* ``native_compiled_speedup`` (Q_comp) — effective speedup of the native
  toolchain+march+tuning on this workload's compiled code, back-solved
  from R_c after accounting for the library share.
* ``vector_gain`` (M_w) — the portion of Q_comp attributable to building
  for the native microarchitecture rather than the ISA baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.perf.workloads import WorkloadProfile, get_workload
from repro.sysmodel import SYSTEMS, SystemModel
from repro.toolchain.info import get_toolchain

#: Floors guarding against degenerate back-solves.
MIN_COMPUTE_RATIO = 0.5
MIN_COMPILED_SPEEDUP = 0.25
MIN_VECTOR_GAIN = 0.2


def original_comm_penalty(system: SystemModel) -> float:
    """Comm slowdown of the generic MPI stack vs the system's native one."""
    return system.network.hsn_penalty * system.native_mpi_quality


def lib_quality(system: SystemModel, lib_kind: str) -> float:
    if lib_kind == "blas":
        return system.native_lib_quality
    if lib_kind == "fft":
        return system.native_fft_quality
    return 1.0


@dataclass(frozen=True)
class Calibration:
    """Solved model parameters for one (workload, system) pair."""

    workload: str
    system: str
    native_total: float           # seconds, 16 nodes
    comm_share: float
    compute_ratio: float          # R_c
    native_compiled_speedup: float  # Q_comp (incl. tuning flags)
    vector_gain: float            # M_w

    @property
    def native_compute(self) -> float:
        return self.native_total * (1.0 - self.comm_share)

    @property
    def native_comm(self) -> float:
        return self.native_total * self.comm_share


@lru_cache(maxsize=None)
def calibrate(workload_name: str, system_key: str) -> Calibration:
    profile = get_workload(workload_name)
    system = SYSTEMS[system_key]
    toolchain = get_toolchain(system.native_toolchain)

    total_ratio = profile.target_ratio[system_key]
    comm_share = profile.comm_share[system_key]
    penalty = original_comm_penalty(system)

    # Figure 9 target: total_ratio = (1-cs)*R_c + cs*penalty.
    compute_ratio = (total_ratio - comm_share * penalty) / max(1e-9, 1.0 - comm_share)
    compute_ratio = max(MIN_COMPUTE_RATIO, compute_ratio)

    # R_c = serial + lib_f*Q_lib + comp_f*Q_comp.
    q_lib = lib_quality(system, profile.lib_kind)
    residual = (
        compute_ratio
        - profile.serial_fraction
        - profile.lib_fraction * q_lib
    )
    if profile.compiler_fraction > 0:
        q_comp = residual / profile.compiler_fraction
    else:
        q_comp = 1.0
    q_comp = max(MIN_COMPILED_SPEEDUP, q_comp)

    # Q_comp = vendor_quality * M_w * (1 + tuning_gain).
    vendor_quality = toolchain.quality_on(system.isa)
    vector_gain = q_comp / (vendor_quality * (1.0 + profile.tuning_gain))
    vector_gain = max(MIN_VECTOR_GAIN, vector_gain)

    return Calibration(
        workload=workload_name,
        system=system_key,
        native_total=profile.native_time[system_key],
        comm_share=comm_share,
        compute_ratio=compute_ratio,
        native_compiled_speedup=q_comp,
        vector_gain=vector_gain,
    )
