"""Plan-level incremental re-adaptation: fingerprint, diff, prune.

The paper's §4.1 expects rebuild/redirect to run "many times during the
image's lifetime".  This module makes the repeat runs cheap: before a
rebuild enters the wavefront scheduler, its plan is fingerprinted and
diffed against the fingerprints the previous run persisted in the rebuild
layer's ``meta.json``.  Command groups whose transitive inputs are
unchanged are *pruned* — their outputs are replayed from the previous
rebuild layer and they never reach ``compute_wavefronts`` or the worker
fleet.  A warm identical re-adaptation therefore executes zero nodes and
schedules zero waves, while producing outputs byte-identical to a cold
rebuild (the simulated toolchain is deterministic, so equal fingerprints
imply equal outputs).

Fingerprints reuse the :func:`repro.core.cache.artifacts.cache_key`
scheme: a group's fingerprint is the cache key of its transformed command
digest over its sorted dependency material, where a leaf source dependency
contributes its content digest and a produced dependency contributes the
fingerprint of its producing group.  The fold makes dirtiness transitive
(any upstream change reaches every dependent) and the internal sort makes
the fingerprint independent of node declaration order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

from repro.core.backend.scheduler import (
    CommandGroup,
    RebuildPlan,
    compute_wavefronts,
)
from repro.core.cache.artifacts import cache_key
from repro.core.models.build_graph import BuildGraph
from repro.vfs import RegularFile, VirtualFilesystem

#: Dirty-reason labels, in the order the diff checks them.
REASON_NEW = "new-node"              # no fingerprint in the previous run
REASON_CHANGED = "input-changed"     # command or transitive input differs
REASON_MISSING = "output-missing"    # previous run kept no bytes to replay


def compute_plan_fingerprints(
    plan: RebuildPlan, graph: BuildGraph, fs: VirtualFilesystem
) -> Dict[str, str]:
    """Per-node plan fingerprints for *plan* against materialized sources.

    Walks the plan in wavefront (dependency) order so every produced
    dependency's group fingerprint is available when a dependent folds it
    in.  Leaf sources are read from *fs* — callers fingerprint after
    sources are materialized, before anything executes.
    """
    group_fp: Dict[tuple, str] = {}
    node_fp: Dict[str, str] = {}
    producer: Dict[str, tuple] = {}
    for group in plan.groups:
        for node_id in group.node_ids:
            producer[node_id] = group.key
    source_digests: Dict[str, str] = {}
    for wave in plan.waves:
        for group in wave:
            pairs: List[tuple] = []
            for dep in group.dep_ids:
                dep_key = producer.get(dep)
                if dep_key == group.key:
                    # Sibling output of this very command: already covered
                    # by the group digest itself.
                    continue
                if dep_key is not None:
                    pairs.append((dep, "node:" + group_fp[dep_key]))
                    continue
                dep_node = graph.try_get(dep)
                path = dep_node.path if dep_node is not None else dep
                digest = source_digests.get(path)
                if digest is None:
                    leaf = fs.try_get_node(path)
                    digest = (
                        leaf.content.digest
                        if isinstance(leaf, RegularFile)
                        else "absent"
                    )
                    source_digests[path] = digest
                pairs.append((path, "src:" + digest))
            fp = cache_key(group.digest, pairs)
            group_fp[group.key] = fp
            for node_id in group.node_ids:
                node_fp[node_id] = fp
    return node_fp


@dataclass
class PlanDiff:
    """Outcome of diffing a plan against the previous run's fingerprints."""

    pruned: List[CommandGroup] = field(default_factory=list)
    dirty: List[CommandGroup] = field(default_factory=list)
    waves: List[List[CommandGroup]] = field(default_factory=list)
    #: First dirty reason per dirty group, keyed by the group's first node.
    reasons: Dict[str, str] = field(default_factory=dict)

    @property
    def pruned_node_ids(self) -> List[str]:
        return [nid for group in self.pruned for nid in group.node_ids]

    @property
    def fully_pruned(self) -> bool:
        return not self.dirty


def diff_plan(
    plan: RebuildPlan,
    fingerprints: Mapping[str, str],
    prev_fingerprints: Mapping[str, str],
    prev_outputs: Mapping[str, object],
) -> PlanDiff:
    """Split *plan* into pruned (clean) and dirty command groups.

    A group is clean when every node's fingerprint matches the previous
    run *and* the previous run kept bytes for every node output (so the
    output can be replayed without executing).  Everything else is dirty:
    new nodes have no previous fingerprint, removed nodes simply leave
    stale fingerprints behind that nothing looks up, and any command-text
    or option change alters the transformed digest — and, through the
    fingerprint fold, every transitive dependent.

    Dirty groups get fresh wavefronts computed among themselves only;
    clean upstream groups are treated as satisfied dependencies.
    """
    diff = PlanDiff()
    for group in plan.groups:
        reason: Optional[str] = None
        for node in group.nodes:
            prev = prev_fingerprints.get(node.id)
            if prev is None:
                reason = REASON_NEW
            elif prev != fingerprints.get(node.id):
                reason = REASON_CHANGED
            elif node.path not in prev_outputs:
                reason = REASON_MISSING
            if reason is not None:
                break
        if reason is None:
            diff.pruned.append(group)
        else:
            diff.dirty.append(group)
            diff.reasons[group.nodes[0].id] = reason
    diff.waves = compute_wavefronts(diff.dirty) if diff.dirty else []
    return diff
