"""Synthetic traits for the paper's evaluation schemes.

The full pipeline derives traits from real (simulated) binaries; this
module provides the idealized per-scheme traits directly, for the
motivation experiment (Figure 3), model unit tests and quick what-if
analysis.

Schemes (§5.1.3):
  * ``original``  — generic image: distro GNU toolchain, ISA-baseline
                    march, generic libraries, plugin-less MPI.
  * ``native``    — hand-built on the system: vendor toolchain, native
                    march, tuned flags, vendor libraries + MPI.
  * ``adapted``   — coMtainer rebuild: like native but *without* the
                    hand-tuned extra flags (the rebuild preserves the
                    app's own build flags).
  * ``optimized`` — adapted + LTO + PGO (profile gathered on-system).

Figure 3's incremental single-node variants are also provided:
``libo`` (library replacement only) and ``cxxo`` (libo + native
toolchain/march rebuild).
"""

from __future__ import annotations

from typing import Dict

from repro.perf.calibration import lib_quality
from repro.perf.provenance import BinaryTraits, profile_id
from repro.perf.workloads import get_workload
from repro.sysmodel import SystemModel

SCHEMES = ("original", "native", "adapted", "optimized")
MOTIVATION_SCHEMES = ("original", "libo", "cxxo", "lto", "pgo")


def scheme_traits(
    workload_name: str, system: SystemModel, scheme: str
) -> BinaryTraits:
    workload = get_workload(workload_name)
    q_lib = lib_quality(system, workload.lib_kind)

    generic = dict(
        toolchain="gnu-12",
        isa=system.isa,
        opt_level="3",
        march_native=False,
        tuned_flags=False,
        lib_quality=1.0,
        mpi_quality=1.0,
        mpi_hsn=False,
    )
    nativeish = dict(
        toolchain=system.native_toolchain,
        isa=system.isa,
        opt_level="3",
        march_native=True,
        tuned_flags=False,
        lib_quality=q_lib,
        mpi_quality=system.native_mpi_quality,
        mpi_hsn=True,
    )

    if scheme == "original":
        return BinaryTraits(**generic)
    if scheme == "libo":
        # Library replacement only: the binary itself is unchanged.
        return BinaryTraits(**{**generic, "lib_quality": q_lib,
                               "mpi_quality": system.native_mpi_quality,
                               "mpi_hsn": True})
    if scheme in ("cxxo", "adapted"):
        return BinaryTraits(**nativeish)
    if scheme == "native":
        return BinaryTraits(**{**nativeish, "tuned_flags": True})
    if scheme == "lto":
        return BinaryTraits(**nativeish, lto_applied=True, lto_coverage=1.0)
    if scheme in ("pgo", "optimized"):
        return BinaryTraits(
            **nativeish,
            lto_applied=True,
            lto_coverage=1.0,
            pgo_applied=True,
            pgo_profile=profile_id(workload_name, system.key),
        )
    raise ValueError(f"unknown scheme: {scheme!r}")
