"""GCC-style command-line parsing into structured compilation models.

:func:`parse_command_line` turns a raw argv (as captured by the command
hijacker) into a :class:`CompilerInvocation` — the structured
"compilation model" of the paper's §4.3: inputs classified by kind,
pipeline mode, optimization level, the ``-f``/``-m``/``-W`` families as
dictionaries, preprocessor and linker state, and LTO/PGO controls exposed
as first-class properties.  :meth:`CompilerInvocation.render` regenerates
an equivalent argv, which is how the system-side backend re-executes
transformed compilations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Union

from repro.toolchain import options as opt

_SOURCE_SUFFIXES = {
    "c": ("c", "i"),
    "c++": ("cc", "cpp", "cxx", "c++", "C", "ii"),
    "fortran": ("f", "for", "ftn", "f77", "f90", "f95", "f03", "f08",
                "F", "FOR", "F77", "F90", "F95", "F03", "F08"),
    "assembler": ("s", "S", "sx"),
}

MODE_PREPROCESS = "preprocess"
MODE_ASSEMBLE = "assemble"
MODE_COMPILE = "compile"
MODE_LINK = "link"
MODE_INFO = "info"

FlagValue = Union[bool, str]


def classify_source(path: str) -> Optional[str]:
    """Language of a source input by suffix, or None for non-sources."""
    suffix = path.rsplit(".", 1)[-1] if "." in path else ""
    for language, suffixes in _SOURCE_SUFFIXES.items():
        if suffix in suffixes:
            return language
    return None


def input_kind(path: str) -> str:
    """Classify an input path: source / object / archive / shared / other."""
    if classify_source(path) is not None:
        return "source"
    name = path.rsplit("/", 1)[-1]
    if name.endswith(".o"):
        return "object"
    if name.endswith(".a"):
        return "archive"
    if ".so" in name and (name.endswith(".so") or name.split(".so", 1)[1].lstrip(".").replace(".", "").isdigit()):
        return "shared"
    return "other"


@dataclass
class CompilerInvocation:
    """A parsed compiler command line (one node-producing build step)."""

    program: str = "gcc"
    mode: str = MODE_LINK
    sources: List[str] = field(default_factory=list)
    objects: List[str] = field(default_factory=list)
    archives: List[str] = field(default_factory=list)
    shared_inputs: List[str] = field(default_factory=list)
    other_inputs: List[str] = field(default_factory=list)
    output: Optional[str] = None
    opt_level: Optional[str] = None         # "0".."3", "s", "fast", "g", "z"
    std: Optional[str] = None
    language_override: Optional[str] = None
    defines: List[str] = field(default_factory=list)
    undefines: List[str] = field(default_factory=list)
    include_dirs: List[str] = field(default_factory=list)
    isystem_dirs: List[str] = field(default_factory=list)
    fflags: Dict[str, FlagValue] = field(default_factory=dict)
    mflags: Dict[str, FlagValue] = field(default_factory=dict)
    warnings: List[str] = field(default_factory=list)
    debug: Optional[str] = None
    libs: List[str] = field(default_factory=list)
    lib_dirs: List[str] = field(default_factory=list)
    linker_args: List[str] = field(default_factory=list)
    shared: bool = False
    static: bool = False
    pthread: bool = False
    extra: List[str] = field(default_factory=list)
    raw: List[str] = field(default_factory=list)

    # -- derived views -------------------------------------------------------

    @property
    def inputs(self) -> List[str]:
        return (
            self.sources + self.objects + self.archives
            + self.shared_inputs + self.other_inputs
        )

    @property
    def language(self) -> Optional[str]:
        if self.language_override:
            return self.language_override
        for source in self.sources:
            lang = classify_source(source)
            if lang is not None:
                return lang
        return None

    @property
    def march(self) -> Optional[str]:
        value = self.mflags.get("arch")
        return value if isinstance(value, str) else None

    @property
    def mtune(self) -> Optional[str]:
        value = self.mflags.get("tune")
        return value if isinstance(value, str) else None

    @property
    def lto(self) -> bool:
        value = self.fflags.get("lto")
        return bool(value)

    @property
    def profile_generate(self) -> bool:
        return bool(self.fflags.get("profile-generate"))

    @property
    def profile_use(self) -> bool:
        return bool(self.fflags.get("profile-use"))

    @property
    def openmp(self) -> bool:
        return bool(self.fflags.get("openmp"))

    def effective_output(self) -> str:
        """The output path, applying GCC defaulting rules."""
        if self.output:
            return self.output
        if self.mode == MODE_COMPILE and self.sources:
            stem = self.sources[0].rsplit("/", 1)[-1].rsplit(".", 1)[0]
            return stem + ".o"
        if self.mode == MODE_ASSEMBLE and self.sources:
            stem = self.sources[0].rsplit("/", 1)[-1].rsplit(".", 1)[0]
            return stem + ".s"
        if self.mode == MODE_PREPROCESS:
            return "-"  # stdout
        return "a.out"

    def isa_specific_args(self) -> List[str]:
        """Arguments pinning this compilation to one ISA (Figure 11 input)."""
        found: List[str] = []
        for name, value in self.mflags.items():
            arg = f"-m{name}" + (f"={value}" if isinstance(value, str) else "")
            if isinstance(value, bool) and not value:
                arg = f"-mno-{name}"
            if opt.is_isa_specific(arg) is not None:
                found.append(arg)
        return found

    # -- transformation helpers (used by system adapters) ----------------------

    def set_fflag(self, name: str, value: FlagValue = True) -> "CompilerInvocation":
        self.fflags[name] = value
        return self

    def clear_fflag(self, name: str) -> "CompilerInvocation":
        self.fflags.pop(name, None)
        return self

    def set_mflag(self, name: str, value: FlagValue = True) -> "CompilerInvocation":
        self.mflags[name] = value
        return self

    def clone(self) -> "CompilerInvocation":
        return parse_command_line(self.render())

    # -- rendering --------------------------------------------------------------

    def render(self) -> List[str]:
        """Regenerate an equivalent argv (canonical ordering)."""
        argv: List[str] = [self.program]
        if self.mode == MODE_PREPROCESS:
            argv.append("-E")
        elif self.mode == MODE_ASSEMBLE:
            argv.append("-S")
        elif self.mode == MODE_COMPILE:
            argv.append("-c")
        elif self.mode == MODE_INFO:
            argv.append("--version")
        if self.std:
            argv.append(f"-std={self.std}")
        if self.opt_level is not None:
            argv.append(f"-O{self.opt_level}")
        if self.debug:
            argv.append(self.debug)
        for name, value in self.fflags.items():
            if value is True:
                argv.append(f"-f{name}")
            elif value is False:
                argv.append(f"-fno-{name}")
            else:
                argv.append(f"-f{name}={value}")
        for name, value in self.mflags.items():
            if value is True:
                argv.append(f"-m{name}")
            elif value is False:
                argv.append(f"-mno-{name}")
            else:
                argv.append(f"-m{name}={value}")
        argv.extend(self.warnings)
        argv.extend(f"-D{define}" for define in self.defines)
        argv.extend(f"-U{undefine}" for undefine in self.undefines)
        argv.extend(f"-I{directory}" for directory in self.include_dirs)
        for directory in self.isystem_dirs:
            argv.extend(["-isystem", directory])
        if self.pthread:
            argv.append("-pthread")
        if self.shared:
            argv.append("-shared")
        if self.static:
            argv.append("-static")
        if self.language_override:
            argv.extend(["-x", self.language_override])
        argv.extend(self.sources)
        argv.extend(self.objects)
        argv.extend(self.archives)
        argv.extend(self.shared_inputs)
        argv.extend(self.other_inputs)
        argv.extend(f"-L{directory}" for directory in self.lib_dirs)
        argv.extend(f"-l{lib}" for lib in self.libs)
        if self.linker_args:
            argv.append("-Wl," + ",".join(self.linker_args))
        argv.extend(self.extra)
        if self.output:
            argv.extend(["-o", self.output])
        return argv

    def to_json(self) -> dict:
        return {
            "program": self.program,
            "argv": self.render(),
        }

    @staticmethod
    def from_json(obj: dict) -> "CompilerInvocation":
        return parse_command_line(obj["argv"])


def _split_fm_token(token: str, prefix: str) -> (str, FlagValue):
    """``-fno-inline`` -> ("inline", False); ``-march=native`` -> ("arch", "native")."""
    body = token[len(prefix):]
    if "=" in body:
        name, _, value = body.partition("=")
        return name, value
    if body.startswith("no-"):
        return body[3:], False
    return body, True


def parse_command_line(
    argv: List[str],
    read_file: Optional[Callable[[str], str]] = None,
) -> CompilerInvocation:
    """Parse a compiler argv (``argv[0]`` is the program name).

    *read_file* resolves ``@file`` response files when provided.
    """
    if not argv:
        raise ValueError("empty argv")
    inv = CompilerInvocation(program=argv[0], raw=list(argv))
    args: List[str] = []
    for token in argv[1:]:
        if token.startswith("@") and read_file is not None:
            args.extend(read_file(token[1:]).split())
        else:
            args.append(token)

    explicit_mode: Optional[str] = None
    i = 0
    while i < len(args):
        arg = args[i]
        i += 1
        if not arg.startswith("-") or arg == "-":
            kind = input_kind(arg)
            if kind == "source":
                inv.sources.append(arg)
            elif kind == "object":
                inv.objects.append(arg)
            elif kind == "archive":
                inv.archives.append(arg)
            elif kind == "shared":
                inv.shared_inputs.append(arg)
            else:
                inv.other_inputs.append(arg)
            continue

        # Mode flags.
        if arg == "-E":
            explicit_mode = MODE_PREPROCESS
            continue
        if arg == "-S":
            explicit_mode = MODE_ASSEMBLE
            continue
        if arg == "-c":
            explicit_mode = MODE_COMPILE
            continue
        if arg in ("--version", "--help", "-###", "-dumpversion", "-dumpmachine"):
            explicit_mode = MODE_INFO
            continue

        # Output / language.
        if arg == "-o":
            inv.output = args[i] if i < len(args) else None
            i += 1
            continue
        if arg.startswith("-o") and len(arg) > 2 and not arg.startswith("-openmp"):
            inv.output = arg[2:]
            continue
        if arg == "-x":
            inv.language_override = args[i] if i < len(args) else None
            i += 1
            continue

        # Optimization level.
        if arg.startswith("-O"):
            inv.opt_level = arg[2:] or "1"
            continue
        if arg.startswith("-std="):
            inv.std = arg[len("-std="):]
            continue

        # Preprocessor.
        if arg.startswith("-D"):
            inv.defines.append(arg[2:] if len(arg) > 2 else args[i]); i += len(arg) == 2
            continue
        if arg.startswith("-U"):
            inv.undefines.append(arg[2:] if len(arg) > 2 else args[i]); i += len(arg) == 2
            continue
        if arg.startswith("-I"):
            inv.include_dirs.append(arg[2:] if len(arg) > 2 else args[i]); i += len(arg) == 2
            continue
        if arg == "-isystem":
            inv.isystem_dirs.append(args[i]); i += 1
            continue

        # Linker.
        if arg.startswith("-L"):
            inv.lib_dirs.append(arg[2:] if len(arg) > 2 else args[i]); i += len(arg) == 2
            continue
        if arg.startswith("-l"):
            inv.libs.append(arg[2:] if len(arg) > 2 else args[i]); i += len(arg) == 2
            continue
        if arg == "-shared":
            inv.shared = True
            continue
        if arg == "-static":
            inv.static = True
            continue
        if arg == "-pthread":
            inv.pthread = True
            continue
        if arg.startswith("-Wl,"):
            inv.linker_args.extend(arg[4:].split(","))
            continue
        if arg == "-Xlinker":
            inv.linker_args.append(args[i]); i += 1
            continue

        # Debug.
        if arg == "-g" or (arg.startswith("-g") and not arg.startswith("-gn")
                           and opt.classify_option(arg) is not None
                           and opt.classify_option(arg).name == "-g"):
            inv.debug = arg
            continue

        # Warnings (but not -Wl/-Wa/-Wp handled above).
        if arg.startswith("-W") and not arg.startswith(("-Wl,", "-Wa,", "-Wp,")):
            inv.warnings.append(arg)
            continue

        # -f / -m families.
        if arg.startswith("-f"):
            name, value = _split_fm_token(arg, "-f")
            inv.fflags[name] = value
            continue
        if arg.startswith("-m"):
            name, value = _split_fm_token(arg, "-m")
            inv.mflags[name] = value
            continue

        # Known separate-argument options we don't model structurally.
        spec = opt.classify_option(arg)
        if spec is not None and spec.style == opt.SEPARATE and i < len(args):
            inv.extra.extend([arg, args[i]])
            i += 1
            continue
        inv.extra.append(arg)

    if explicit_mode is not None:
        inv.mode = explicit_mode
    elif inv.inputs:
        inv.mode = MODE_LINK
    else:
        inv.mode = MODE_INFO
    return inv
