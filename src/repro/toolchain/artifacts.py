"""Build artifacts with embedded provenance.

Simulated object files, archives, shared objects and executables are JSON
payloads (see :mod:`repro.simbin`) carrying the provenance a system-side
backend needs: which sources went in, which toolchain and flags produced
the code, the target ISA/march, whether LTO bitcode is present, and the
PGO state.  The perf model reads executables' provenance to decide how
fast they run on a given system; coMtainer's backend reads it to verify
rebuild results.

Artifacts are *padded* to a realistic code size (~12 bytes per source
line) so image sizes keep Table 3 shape without materializing bulk bytes
until someone actually reads the file.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro import simbin
from repro.vfs.content import FileContent

#: Rough native code density used to size artifacts from source size.
BYTES_PER_SOURCE_BYTE = {"0": 0.50, "1": 0.42, "2": 0.38, "3": 0.44,
                         "s": 0.30, "z": 0.28, "fast": 0.46, "g": 0.48}


@dataclass(frozen=True)
class PaddedContent(FileContent):
    """JSON payload + declared padding, materialized only on read.

    Trailing whitespace is valid JSON padding, so ``json.loads(read())``
    always works regardless of pad size.
    """

    payload: bytes
    pad: int = 0

    @property
    def size(self) -> int:
        return len(self.payload) + self.pad

    @property
    def digest(self) -> str:
        hasher = hashlib.sha256(self.payload)
        hasher.update(f"\x00pad:{self.pad}".encode())
        return "sha256:" + hasher.hexdigest()

    def read(self) -> bytes:
        return self.payload + b" " * self.pad


class ArtifactError(Exception):
    """Raised when bytes that should be an artifact are not one."""


@dataclass
class ObjectArtifact:
    """A compiled translation unit (.o)."""

    kind: str = "object"
    sources: List[str] = field(default_factory=list)
    language: Optional[str] = None
    toolchain: str = "gnu-12"
    isa: str = "x86-64"
    opt_level: str = "0"
    march: Optional[str] = None
    mtune: Optional[str] = None
    defines: List[str] = field(default_factory=list)
    fflags: Dict[str, Any] = field(default_factory=dict)
    openmp: bool = False
    debug: bool = False
    lto_ir: bool = False
    pgo_instrumented: bool = False
    pgo_profile: Optional[str] = None
    code_size: int = 0
    command: List[str] = field(default_factory=list)

    def to_json(self) -> Dict[str, Any]:
        return {k: v for k, v in self.__dict__.items()}

    @staticmethod
    def from_json(obj: Dict[str, Any]) -> "ObjectArtifact":
        art = ObjectArtifact()
        for key, value in obj.items():
            if hasattr(art, key):
                setattr(art, key, value)
        return art


@dataclass
class ArchiveArtifact:
    """A static archive (.a) holding object members."""

    kind: str = "archive"
    members: List[Dict[str, Any]] = field(default_factory=list)  # name -> object json

    def member_objects(self) -> List[ObjectArtifact]:
        return [ObjectArtifact.from_json(m["object"]) for m in self.members]

    def member_names(self) -> List[str]:
        return [m["name"] for m in self.members]

    def to_json(self) -> Dict[str, Any]:
        return {"kind": self.kind, "members": self.members}

    @staticmethod
    def from_json(obj: Dict[str, Any]) -> "ArchiveArtifact":
        return ArchiveArtifact(members=list(obj.get("members", [])))


@dataclass
class LinkedArtifact:
    """Common state of shared objects and executables."""

    kind: str = "executable"
    objects: List[Dict[str, Any]] = field(default_factory=list)
    libs: List[str] = field(default_factory=list)           # -lname references
    lib_paths: Dict[str, str] = field(default_factory=dict)  # name -> resolved path
    toolchain: str = "gnu-12"
    isa: str = "x86-64"
    opt_level: str = "0"
    march: Optional[str] = None
    openmp: bool = False
    lto_applied: bool = False
    lto_coverage: float = 0.0
    pgo_instrumented: bool = False
    pgo_applied: bool = False
    pgo_profile: Optional[str] = None
    # Post-link binary layout optimization (BOLT-style extension).
    layout_optimized: bool = False
    layout_profile: Optional[str] = None
    code_size: int = 0
    command: List[str] = field(default_factory=list)
    soname: Optional[str] = None

    def member_objects(self) -> List[ObjectArtifact]:
        return [ObjectArtifact.from_json(o) for o in self.objects]

    def to_json(self) -> Dict[str, Any]:
        return {k: v for k, v in self.__dict__.items()}

    @classmethod
    def from_json(cls, obj: Dict[str, Any]) -> "LinkedArtifact":
        art = cls()
        for key, value in obj.items():
            if hasattr(art, key):
                setattr(art, key, value)
        return art


class SharedObjectArtifact(LinkedArtifact):
    def __init__(self, **kw: Any) -> None:
        super().__init__(**kw)
        self.kind = "shared"


class ExecutableArtifact(LinkedArtifact):
    def __init__(self, **kw: Any) -> None:
        super().__init__(**kw)
        self.kind = "executable"


_KIND_CLASSES = {
    "object": ObjectArtifact,
    "archive": ArchiveArtifact,
    "shared": SharedObjectArtifact,
    "executable": ExecutableArtifact,
}


def artifact_content(artifact: Any, pad: Optional[int] = None) -> PaddedContent:
    """Serialize *artifact* to padded simbin content."""
    body = artifact.to_json()
    kind = body.pop("kind")
    payload = simbin.artifact_payload(kind, body)
    pad_bytes = pad if pad is not None else max(0, artifact.code_size - len(payload))
    return PaddedContent(payload=payload, pad=pad_bytes)


def read_artifact(data: bytes) -> Any:
    """Parse artifact bytes back into its typed representation."""
    obj = simbin.read_artifact_payload(data)
    if obj is None:
        raise ArtifactError("not a simulated build artifact")
    kind = obj.get("kind")
    cls = _KIND_CLASSES.get(kind)
    if cls is None:
        raise ArtifactError(f"unknown artifact kind: {kind!r}")
    obj = dict(obj)
    obj.pop("kind", None)
    if cls is ObjectArtifact:
        return ObjectArtifact.from_json(obj)
    if cls is ArchiveArtifact:
        return ArchiveArtifact.from_json(obj)
    return cls.from_json(obj)


def try_read_artifact(data: bytes) -> Optional[Any]:
    try:
        return read_artifact(data)
    except ArtifactError:
        return None
