"""The ``ar`` archiver (and trivial ``ranlib``/``strip``).

Supports the operations HPC build scripts actually use: ``ar rcs out.a
member.o ...`` (create/replace), ``ar t`` (list), ``ar x`` (extract).
"""

from __future__ import annotations

from typing import List

from repro.toolchain.artifacts import (
    ArchiveArtifact,
    ObjectArtifact,
    artifact_content,
    try_read_artifact,
)
from repro.vfs import VirtualFilesystem
from repro.vfs import paths as vpath


class ArchiverError(Exception):
    pass


def run_ar(argv: List[str], fs: VirtualFilesystem, cwd: str = "/") -> str:
    """Execute an ``ar`` command line; returns stdout text."""
    if len(argv) < 2:
        raise ArchiverError("ar: usage: ar [rcstx]... archive [member...]")
    ops = argv[1].lstrip("-")
    rest = argv[2:]
    if not rest:
        raise ArchiverError("ar: no archive specified")
    archive_path = vpath.join(cwd, rest[0])
    member_paths = [vpath.join(cwd, m) for m in rest[1:]]

    if "t" in ops:
        artifact = _read_archive(fs, archive_path)
        return "\n".join(artifact.member_names()) + "\n"

    if "x" in ops:
        artifact = _read_archive(fs, archive_path)
        for member in artifact.members:
            obj = ObjectArtifact.from_json(member["object"])
            fs.write_file(
                vpath.join(cwd, member["name"]),
                artifact_content(obj),
                create_parents=True,
            )
        return ""

    if "r" in ops or "q" in ops:
        if fs.exists(archive_path) and "c" not in ops:
            artifact = _read_archive(fs, archive_path)
        else:
            artifact = ArchiveArtifact()
        existing = {m["name"]: i for i, m in enumerate(artifact.members)}
        for path in member_paths:
            if not fs.exists(path):
                raise ArchiverError(f"ar: {path}: No such file or directory")
            obj = try_read_artifact(fs.read_file(path))
            if not isinstance(obj, ObjectArtifact):
                raise ArchiverError(f"ar: {path}: file format not recognized")
            name = vpath.basename(path)
            record = {"name": name, "object": obj.to_json()}
            if name in existing:
                artifact.members[existing[name]] = record
            else:
                artifact.members.append(record)
        total = sum(
            ObjectArtifact.from_json(m["object"]).code_size for m in artifact.members
        )
        content = artifact_content(artifact, pad=max(0, total - 512))
        fs.write_file(archive_path, content, create_parents=True)
        return ""

    raise ArchiverError(f"ar: unsupported operation: {argv[1]!r}")


def _read_archive(fs: VirtualFilesystem, path: str) -> ArchiveArtifact:
    if not fs.exists(path):
        raise ArchiverError(f"ar: {path}: No such file or directory")
    artifact = try_read_artifact(fs.read_file(path))
    if not isinstance(artifact, ArchiveArtifact):
        raise ArchiverError(f"ar: {path}: file format not recognized")
    return artifact
