"""Toolchain descriptors and registry.

A :class:`ToolchainInfo` captures what the perf model and the system
adapters need to know about a compiler family: which ISAs it targets, its
relative code quality on each ISA (the `cxxo` effect of Figure 3), how
strong its LTO and PGO implementations are, and what ``-march`` value
counts as "native" on each ISA.

Quality/strength numbers are *calibration*, chosen so the evaluation
figures keep the paper's shape; see repro/perf/workloads.py for the
workload-side half of the calibration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple


@dataclass(frozen=True)
class ToolchainInfo:
    """Identity + performance characteristics of one compiler family."""

    id: str
    vendor: str
    display_name: str
    kind: str                      # "gnu" / "llvm" / "vendor"
    supported_isas: Tuple[str, ...]
    # Relative code quality vs the generic GNU baseline per ISA (>= ~1.0).
    codegen_quality: Dict[str, float] = field(default_factory=dict)
    # Fraction of a workload's potential LTO/PGO gain this compiler realizes.
    lto_strength: float = 1.0
    pgo_strength: float = 1.0
    # -march value that means "tuned for this machine" per ISA.
    native_march: Dict[str, str] = field(default_factory=dict)
    # Relative compile-time cost factor (LTO famously lengthens builds).
    compile_cost: float = 1.0

    def supports(self, isa: str) -> bool:
        return isa in self.supported_isas

    def quality_on(self, isa: str) -> float:
        return self.codegen_quality.get(isa, 1.0)


_REGISTRY: Dict[str, ToolchainInfo] = {}


def register_toolchain(info: ToolchainInfo) -> ToolchainInfo:
    _REGISTRY[info.id] = info
    return info


def get_toolchain(toolchain_id: str) -> ToolchainInfo:
    try:
        return _REGISTRY[toolchain_id]
    except KeyError:
        raise KeyError(f"unknown toolchain: {toolchain_id!r}") from None


def known_toolchains() -> Tuple[str, ...]:
    return tuple(sorted(_REGISTRY))


# ---------------------------------------------------------------------------
# Built-in toolchains of the simulated ecosystem.
# ---------------------------------------------------------------------------

GNU_GENERIC = register_toolchain(
    ToolchainInfo(
        id="gnu-12",
        vendor="GNU",
        display_name="GCC 12 (distro default)",
        kind="gnu",
        supported_isas=("x86-64", "aarch64"),
        codegen_quality={"x86-64": 1.0, "aarch64": 1.0},
        lto_strength=1.0,
        pgo_strength=1.0,
        native_march={"x86-64": "icelake-server", "aarch64": "ft-2000plus"},
        compile_cost=1.0,
    )
)

LLVM_GENERIC = register_toolchain(
    ToolchainInfo(
        id="llvm-17",
        vendor="LLVM",
        display_name="LLVM/Clang 17 (artifact's free alternative)",
        kind="llvm",
        supported_isas=("x86-64", "aarch64"),
        codegen_quality={"x86-64": 1.06, "aarch64": 1.10},
        lto_strength=0.95,
        pgo_strength=0.85,
        native_march={"x86-64": "icelake-server", "aarch64": "ft-2000plus"},
        compile_cost=1.1,
    )
)

INTEL_VENDOR = register_toolchain(
    ToolchainInfo(
        id="intel-2024",
        vendor="Intel",
        display_name="Intel oneAPI 2024 (x86-64 cluster native)",
        kind="vendor",
        supported_isas=("x86-64",),
        codegen_quality={"x86-64": 1.24},
        lto_strength=1.05,
        pgo_strength=1.05,
        native_march={"x86-64": "icelake-server"},
        compile_cost=1.4,
    )
)

PHYTIUM_VENDOR = register_toolchain(
    ToolchainInfo(
        id="phytium-kit-3",
        vendor="Phytium",
        display_name="Phytium Compiler Kit 3 (AArch64 cluster native)",
        kind="vendor",
        supported_isas=("aarch64",),
        codegen_quality={"aarch64": 1.30},
        lto_strength=1.0,
        pgo_strength=1.0,
        native_march={"aarch64": "ft-2000plus"},
        compile_cost=1.3,
    )
)
