"""Compiler toolchain substrate.

The paper's compilation model "represents structural data of GCC command
lines — deriving this compilation model was a non-trivial task, requiring
us to manually extract it by systematically reviewing the entire GCC user
manual" (§4.3; 2314 options, §4.5).  This package provides that model for
the simulated ecosystem: a structured option table
(:mod:`repro.toolchain.options`), a GCC-style command-line parser producing
:class:`~repro.toolchain.cli.CompilerInvocation` objects
(:mod:`repro.toolchain.cli`), build artifacts carrying full provenance
(:mod:`repro.toolchain.artifacts`), toolchain descriptors
(:mod:`repro.toolchain.info`) and the driver programs that execute
compilations against a virtual filesystem (:mod:`repro.toolchain.drivers`).
"""

from repro.toolchain.artifacts import (
    ArchiveArtifact,
    ExecutableArtifact,
    ObjectArtifact,
    SharedObjectArtifact,
    read_artifact,
)
from repro.toolchain.cli import CompilerInvocation, parse_command_line
from repro.toolchain.drivers import CompilerDriver, CompilerError
from repro.toolchain.info import ToolchainInfo, get_toolchain, register_toolchain
from repro.toolchain.options import OPTION_TABLE, OptionSpec, classify_option

__all__ = [
    "ArchiveArtifact",
    "CompilerDriver",
    "CompilerError",
    "CompilerInvocation",
    "ExecutableArtifact",
    "OPTION_TABLE",
    "ObjectArtifact",
    "OptionSpec",
    "SharedObjectArtifact",
    "ToolchainInfo",
    "classify_option",
    "get_toolchain",
    "parse_command_line",
    "read_artifact",
    "register_toolchain",
]
