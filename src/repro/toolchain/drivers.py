"""Compiler driver execution against a virtual filesystem.

A :class:`CompilerDriver` is one installed compiler entry point (``gcc``,
``g++``, ``icx``, ``ftcc``, an MPI wrapper, ...).  ``execute`` parses the
argv with the structured option model and performs the requested pipeline
stage: preprocessing, compilation to object artifacts, or linking to
shared objects / executables, with LTO bitcode tracking, PGO profile
validation and cross-ISA flag rejection — the failure modes the paper's
cross-ISA study (§5.5) observes are real errors here.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.toolchain import cli
from repro.toolchain.artifacts import (
    ArchiveArtifact,
    ExecutableArtifact,
    ObjectArtifact,
    SharedObjectArtifact,
    artifact_content,
    BYTES_PER_SOURCE_BYTE,
    try_read_artifact,
)
from repro.toolchain.info import get_toolchain
from repro.toolchain.options import is_isa_specific
from repro.vfs import VirtualFilesystem
from repro.vfs import paths as vpath

#: Libraries the toolchain provides implicitly (no file lookup needed).
IMPLICIT_LIBS = {
    "c", "m", "gcc", "gcc_s", "stdc++", "gfortran", "pthread", "dl",
    "rt", "util", "gomp", "quadmath", "atomic", "flang", "omp",
}

ARCH_TRIPLE_OF_ISA = {"x86-64": "x86_64-linux-gnu", "aarch64": "aarch64-linux-gnu"}


class CompilerError(Exception):
    """A diagnostic that would abort a real compiler invocation."""


@dataclass
class DriverResult:
    stdout: str = ""
    outputs: List[str] = field(default_factory=list)
    invocation: Optional[cli.CompilerInvocation] = None


@dataclass
class CompilerDriver:
    """One compiler entry point bound to a toolchain and target ISA."""

    toolchain_id: str
    role: str = "cc"                # cc / cxx / fc / cpp / ld
    isa: str = "x86-64"
    mpi_wrapper: bool = False
    version: str = "12.3.0"

    # ------------------------------------------------------------------

    def execute(
        self,
        argv: List[str],
        fs: VirtualFilesystem,
        cwd: str = "/",
        env: Optional[Dict[str, str]] = None,
    ) -> DriverResult:
        env = env or {}

        def read_response(path: str) -> str:
            return fs.read_text(vpath.join(cwd, path))

        inv = cli.parse_command_line(argv, read_file=read_response)
        self._check_isa_flags(inv)

        if inv.mode == cli.MODE_INFO:
            info = get_toolchain(self.toolchain_id)
            return DriverResult(
                stdout=f"{info.display_name} ({self.toolchain_id}) {self.version} [{self.isa}]",
                invocation=inv,
            )
        if not inv.inputs:
            raise CompilerError(f"{inv.program}: fatal error: no input files")
        if inv.mode == cli.MODE_PREPROCESS:
            return self._preprocess(inv, fs, cwd)
        if inv.mode in (cli.MODE_COMPILE, cli.MODE_ASSEMBLE):
            return self._compile(inv, fs, cwd)
        return self._link(inv, fs, cwd, env)

    # ------------------------------------------------------------------

    def _check_isa_flags(self, inv: cli.CompilerInvocation) -> None:
        """Reject machine flags of a different ISA (cross-ISA failure mode)."""
        for arg in inv.isa_specific_args():
            pinned = is_isa_specific(arg)
            if pinned is not None and pinned != self.isa:
                raise CompilerError(
                    f"{inv.program}: error: unrecognized command-line option "
                    f"'{arg}' (valid for {pinned}, target is {self.isa})"
                )

    def _resolve(self, cwd: str, path: str) -> str:
        return vpath.join(cwd, path)

    def _source_size(self, fs: VirtualFilesystem, path: str, program: str) -> int:
        if not fs.exists(path):
            raise CompilerError(f"{program}: error: {path}: No such file or directory")
        if fs.is_dir(path):
            raise CompilerError(f"{program}: error: {path} is a directory")
        return fs.file_size(path)

    # ------------------------------------------------------------------

    def _preprocess(
        self, inv: cli.CompilerInvocation, fs: VirtualFilesystem, cwd: str
    ) -> DriverResult:
        chunks = []
        for source in inv.sources:
            path = self._resolve(cwd, source)
            self._source_size(fs, path, inv.program)
            chunks.append(f"# 1 \"{source}\"\n")
        text = "".join(chunks)
        output = inv.effective_output()
        if output != "-":
            fs.write_file(self._resolve(cwd, output), text, create_parents=True)
            return DriverResult(outputs=[output], invocation=inv)
        return DriverResult(stdout=text, invocation=inv)

    # ------------------------------------------------------------------

    def _object_for_source(
        self, inv: cli.CompilerInvocation, source_path: str, source_size: int
    ) -> ObjectArtifact:
        opt = inv.opt_level or "0"
        density = BYTES_PER_SOURCE_BYTE.get(opt, 0.5)
        return ObjectArtifact(
            sources=[source_path],
            language=inv.language or classify_or_default(source_path),
            toolchain=self.toolchain_id,
            isa=self.isa,
            opt_level=opt,
            march=inv.march,
            mtune=inv.mtune,
            defines=list(inv.defines),
            fflags={k: v for k, v in inv.fflags.items()},
            openmp=inv.openmp,
            debug=inv.debug is not None,
            lto_ir=inv.lto,
            pgo_instrumented=inv.profile_generate,
            pgo_profile=None,
            code_size=max(64, int(source_size * density * (1.25 if inv.lto else 1.0))),
            command=inv.render(),
        )

    def _compile(
        self, inv: cli.CompilerInvocation, fs: VirtualFilesystem, cwd: str
    ) -> DriverResult:
        if inv.output and len(inv.sources) > 1:
            raise CompilerError(
                f"{inv.program}: fatal error: cannot specify -o with -c, -S or -E "
                "with multiple files"
            )
        profile = None
        if inv.profile_use:
            profile = self._load_profile(inv, fs, cwd)
        outputs: List[str] = []
        for source in inv.sources:
            path = self._resolve(cwd, source)
            size = self._source_size(fs, path, inv.program)
            if inv.mode == cli.MODE_ASSEMBLE:
                out = inv.output or source.rsplit("/", 1)[-1].rsplit(".", 1)[0] + ".s"
                fs.write_file(
                    self._resolve(cwd, out), f"# asm for {source}\n", create_parents=True
                )
                outputs.append(out)
                continue
            artifact = self._object_for_source(inv, path, size)
            if profile is not None:
                artifact.pgo_profile = profile
            out = inv.output or source.rsplit("/", 1)[-1].rsplit(".", 1)[0] + ".o"
            fs.write_file(
                self._resolve(cwd, out), artifact_content(artifact), create_parents=True
            )
            outputs.append(out)
        return DriverResult(outputs=outputs, invocation=inv)

    # ------------------------------------------------------------------

    def _load_profile(
        self, inv: cli.CompilerInvocation, fs: VirtualFilesystem, cwd: str
    ) -> str:
        """Locate and validate PGO profile data; returns its identifier."""
        value = inv.fflags.get("profile-use")
        candidates: List[str] = []
        if isinstance(value, str):
            candidates.append(self._resolve(cwd, value))
        prof_dir = inv.fflags.get("profile-dir")
        if isinstance(prof_dir, str):
            candidates.append(self._resolve(cwd, prof_dir))
        candidates.append(cwd)
        for candidate in candidates:
            profile = _find_profile(fs, candidate)
            if profile is not None:
                return profile
        raise CompilerError(
            f"{inv.program}: error: -fprofile-use: could not find profile data "
            f"(searched {', '.join(candidates)})"
        )

    # ------------------------------------------------------------------

    def _link(
        self,
        inv: cli.CompilerInvocation,
        fs: VirtualFilesystem,
        cwd: str,
        env: Dict[str, str],
    ) -> DriverResult:
        members: List[ObjectArtifact] = []
        # Inline sources in a link command compile implicitly first.
        for source in inv.sources:
            path = self._resolve(cwd, source)
            size = self._source_size(fs, path, inv.program)
            members.append(self._object_for_source(inv, path, size))
        for obj_path in inv.objects:
            path = self._resolve(cwd, obj_path)
            if not fs.exists(path):
                raise CompilerError(f"{inv.program}: error: {obj_path}: No such file or directory")
            artifact = try_read_artifact(fs.read_file(path))
            if not isinstance(artifact, ObjectArtifact):
                raise CompilerError(
                    f"/usr/bin/ld: {obj_path}: file format not recognized"
                )
            members.append(artifact)
        for ar_path in inv.archives:
            path = self._resolve(cwd, ar_path)
            if not fs.exists(path):
                raise CompilerError(f"{inv.program}: error: {ar_path}: No such file or directory")
            artifact = try_read_artifact(fs.read_file(path))
            if not isinstance(artifact, ArchiveArtifact):
                raise CompilerError(f"/usr/bin/ld: {ar_path}: malformed archive")
            members.extend(artifact.member_objects())

        lib_paths: Dict[str, str] = {}
        for shared_input in inv.shared_inputs:
            path = self._resolve(cwd, shared_input)
            if not fs.exists(path):
                raise CompilerError(
                    f"{inv.program}: error: {shared_input}: No such file or directory"
                )
            name = vpath.basename(path).split(".so", 1)[0]
            lib_paths[name.removeprefix("lib")] = path
        libs = list(inv.libs)
        if self.mpi_wrapper and "mpi" not in libs:
            libs.append("mpi")
        for lib in libs:
            resolved = self._find_library(lib, inv, fs, cwd, env)
            if resolved is None:
                if lib in IMPLICIT_LIBS:
                    continue
                raise CompilerError(f"/usr/bin/ld: cannot find -l{lib}")
            static_members = self._maybe_static_members(fs, resolved)
            if static_members is not None:
                members.extend(static_members)
            else:
                lib_paths[lib] = resolved

        if not members and not lib_paths:
            raise CompilerError(f"{inv.program}: fatal error: no input files")

        profile = None
        if inv.profile_use:
            profile = self._load_profile(inv, fs, cwd)

        isas = {m.isa for m in members}
        if len(isas) > 1:
            raise CompilerError(
                f"/usr/bin/ld: incompatible object ISAs: {sorted(isas)}"
            )
        if members and next(iter(isas)) != self.isa:
            raise CompilerError(
                f"/usr/bin/ld: {next(iter(isas))} objects cannot link on {self.isa}"
            )

        lto_members = sum(1 for m in members if m.lto_ir)
        lto_coverage = lto_members / len(members) if members else 0.0
        member_profiles = [m.pgo_profile for m in members if m.pgo_profile]
        pgo_applied = bool(profile or member_profiles)

        cls = SharedObjectArtifact if inv.shared else ExecutableArtifact
        artifact = cls(
            objects=[m.to_json() for m in members],
            libs=sorted(set(libs)),
            lib_paths=lib_paths,
            toolchain=self.toolchain_id,
            isa=self.isa,
            opt_level=inv.opt_level or _dominant_opt(members),
            march=inv.march or _dominant_march(members),
            openmp=inv.openmp or any(m.openmp for m in members),
            lto_applied=inv.lto and lto_coverage > 0.0,
            lto_coverage=lto_coverage if inv.lto else 0.0,
            pgo_instrumented=inv.profile_generate
            or any(m.pgo_instrumented for m in members),
            pgo_applied=pgo_applied,
            pgo_profile=profile or (member_profiles[0] if member_profiles else None),
            code_size=int(sum(m.code_size for m in members) * 1.1) + 256,
            command=inv.render(),
            soname=_soname_from(inv),
        )
        output = inv.effective_output()
        fs.write_file(
            self._resolve(cwd, output),
            artifact_content(artifact),
            mode=0o755,
            create_parents=True,
        )
        return DriverResult(outputs=[output], invocation=inv)

    # ------------------------------------------------------------------

    def _find_library(
        self,
        name: str,
        inv: cli.CompilerInvocation,
        fs: VirtualFilesystem,
        cwd: str,
        env: Dict[str, str],
    ) -> Optional[str]:
        triple = ARCH_TRIPLE_OF_ISA.get(self.isa, "x86_64-linux-gnu")
        search: List[str] = [self._resolve(cwd, d) for d in inv.lib_dirs]
        search.extend(p for p in env.get("LIBRARY_PATH", "").split(":") if p)
        search.extend([f"/usr/lib/{triple}", "/usr/lib", "/lib",
                       "/opt/intel/lib", "/opt/phytium/lib"])
        prefer_static = inv.static
        suffix_order = [".a", ".so"] if prefer_static else [".so", ".a"]
        for directory in search:
            if not fs.is_dir(directory):
                continue
            names = fs.listdir(directory)
            for suffix in suffix_order:
                exact = f"lib{name}{suffix}"
                found = None
                if exact in names:
                    found = vpath.join(directory, exact)
                elif suffix == ".so":
                    versioned = sorted(
                        n for n in names if n.startswith(exact + ".")
                    )
                    if versioned:
                        found = vpath.join(directory, versioned[0])
                if found is None:
                    continue
                # Real linkers record the SONAME of the library they
                # resolved, not the dev symlink path — emulate by
                # canonicalizing, so the recorded path survives into
                # images that lack the -dev symlinks.
                try:
                    return fs.resolve_path(found)
                except Exception:
                    return found
        return None

    def _maybe_static_members(
        self, fs: VirtualFilesystem, path: str
    ) -> Optional[List[ObjectArtifact]]:
        if not path.endswith(".a"):
            return None
        artifact = try_read_artifact(fs.read_file(path))
        if isinstance(artifact, ArchiveArtifact):
            return artifact.member_objects()
        return []  # synthetic (package-provided) static library: opaque


def classify_or_default(path: str) -> str:
    return cli.classify_source(path) or "c"


def _dominant_opt(members: List[ObjectArtifact]) -> str:
    levels = [m.opt_level for m in members if m.opt_level]
    if not levels:
        return "0"
    order = {"0": 0, "g": 1, "1": 1, "s": 2, "z": 2, "2": 3, "3": 4, "fast": 5}
    return max(levels, key=lambda lv: order.get(lv, 0))


def _dominant_march(members: List[ObjectArtifact]) -> Optional[str]:
    for member in members:
        if member.march:
            return member.march
    return None


def _soname_from(inv: cli.CompilerInvocation) -> Optional[str]:
    for i, arg in enumerate(inv.linker_args):
        if arg == "-soname" and i + 1 < len(inv.linker_args):
            return inv.linker_args[i + 1]
        if arg.startswith("-soname="):
            return arg.split("=", 1)[1]
    return None


def _find_profile(fs: VirtualFilesystem, location: str) -> Optional[str]:
    """Find PGO profile data at *location* (a file or a directory)."""
    if fs.is_file(location):
        return _profile_id(fs, location)
    if fs.is_dir(location):
        for name in fs.listdir(location):
            if name.endswith((".gcda", ".profdata")):
                return _profile_id(fs, vpath.join(location, name))
    return None


def _profile_id(fs: VirtualFilesystem, path: str) -> str:
    try:
        obj = json.loads(fs.read_file(path).decode("utf-8"))
        if isinstance(obj, dict) and "profile" in obj:
            return obj["profile"]
    except (json.JSONDecodeError, UnicodeDecodeError):
        pass
    return vpath.basename(path)
