"""The structured compiler option table.

Every option the parser understands is described by an :class:`OptionSpec`
carrying its syntax (how it consumes arguments) and its semantics flags
(does it affect code generation?  is it optimization-related?  is it tied
to one ISA? which pipeline stage does it belong to?).  The semantics flags
are what coMtainer's analysis consumes: ISA-specific options gate the
cross-ISA study (Figure 11), codegen/optimization options feed the rebuild
planner, and stage flags let the build-graph parser infer what a command
produced.

The table covers the option families that dominate real HPC build logs:
``-O``/``-f``/``-m``/``-W`` groups, preprocessor ``-D/-U/-I``, linker
``-l/-L/-Wl,``/``-shared``/``-static``, language/standard selection, debug
options, LTO and PGO controls, and the GCC pass-through spellings
(``-Wa,``, ``-Wp,``, ``-Xlinker``, ``@file`` response files).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

# Option syntax styles.
FLAG = "flag"                      # -c, -v, -shared
JOINED = "joined"                  # -O2, -DNAME, -Ipath (argument glued on)
SEPARATE = "separate"              # -o file, -x lang (argument is next argv)
JOINED_OR_SEPARATE = "joined-or-separate"   # -I path / -Ipath, -L, -l

# Pipeline stages an option belongs to.
STAGE_ANY = "any"
STAGE_PREPROCESS = "preprocess"
STAGE_COMPILE = "compile"
STAGE_LINK = "link"


@dataclass(frozen=True)
class OptionSpec:
    """Syntax + semantics of one compiler option (or option family prefix)."""

    name: str
    style: str = FLAG
    stage: str = STAGE_ANY
    codegen: bool = False          # influences generated code
    optimization: bool = False     # optimization dial
    isa: Optional[str] = None      # "x86-64" / "aarch64" when ISA-specific
    description: str = ""


def _spec(name: str, style: str = FLAG, **kw) -> Tuple[str, OptionSpec]:
    return name, OptionSpec(name=name, style=style, **kw)


# ---------------------------------------------------------------------------
# -f group: machine-independent codegen/optimization switches.
# Each name implies -fNAME and -fno-NAME spellings.
# ---------------------------------------------------------------------------

F_FLAGS_OPTIMIZATION = [
    "aggressive-loop-optimizations", "align-functions", "align-jumps",
    "align-labels", "align-loops", "associative-math", "auto-inc-dec",
    "branch-count-reg", "caller-saves", "code-hoisting",
    "combine-stack-adjustments", "compare-elim", "cprop-registers",
    "crossjumping", "cse-follow-jumps", "cx-fortran-rules",
    "cx-limited-range", "dce", "defer-pop", "delete-null-pointer-checks",
    "devirtualize", "devirtualize-speculatively", "dse", "early-inlining",
    "expensive-optimizations", "fast-math", "finite-loops",
    "finite-math-only", "float-store", "forward-propagate", "gcse",
    "gcse-after-reload", "gcse-las", "gcse-lm", "gcse-sm", "graphite",
    "graphite-identity", "guess-branch-probability", "hoist-adjacent-loads",
    "if-conversion", "if-conversion2", "indirect-inlining", "inline",
    "inline-functions", "inline-functions-called-once", "inline-small-functions",
    "ipa-bit-cp", "ipa-cp", "ipa-cp-clone", "ipa-icf", "ipa-modref",
    "ipa-profile", "ipa-pta", "ipa-pure-const", "ipa-ra", "ipa-reference",
    "ipa-sra", "ira-hoist-pressure", "isolate-erroneous-paths-dereference",
    "ivopts", "jump-tables", "keep-inline-functions", "live-range-shrinkage",
    "loop-block", "loop-interchange", "loop-nest-optimize",
    "loop-parallelize-all", "loop-unroll-and-jam", "lra-remat", "math-errno",
    "merge-all-constants", "merge-constants", "modulo-sched",
    "move-loop-invariants", "omit-frame-pointer", "optimize-sibling-calls",
    "partial-inlining", "peel-loops", "peephole", "peephole2", "plt",
    "predictive-commoning", "prefetch-loop-arrays", "printf-return-value",
    "reciprocal-math", "ree", "rename-registers", "reorder-blocks",
    "reorder-blocks-and-partition", "reorder-functions", "rerun-cse-after-loop",
    "rounding-math", "rtti", "sched-interblock", "sched-pressure",
    "sched-spec", "schedule-insns", "schedule-insns2", "section-anchors",
    "signed-zeros", "split-ivs-in-unroller", "split-loops", "split-paths",
    "split-wide-types", "ssa-backprop", "ssa-phiopt", "store-merging",
    "strict-aliasing", "thread-jumps", "tracer", "tree-bit-ccp", "tree-ccp",
    "tree-ch", "tree-coalesce-vars", "tree-copy-prop", "tree-dce",
    "tree-dominator-opts", "tree-dse", "tree-forwprop", "tree-fre",
    "tree-loop-distribute-patterns", "tree-loop-distribution", "tree-loop-if-convert",
    "tree-loop-im", "tree-loop-ivcanon", "tree-loop-optimize", "tree-loop-vectorize",
    "tree-partial-pre", "tree-phiprop", "tree-pre", "tree-pta", "tree-reassoc",
    "tree-scev-cprop", "tree-sink", "tree-slp-vectorize", "tree-slsr",
    "tree-sra", "tree-switch-conversion", "tree-tail-merge", "tree-ter",
    "tree-vectorize", "tree-vrp", "unconstrained-commons", "unroll-all-loops",
    "unroll-loops", "unsafe-math-optimizations", "unswitch-loops",
    "variable-expansion-in-unroller", "vect-cost-model", "vpt", "web",
]

F_FLAGS_CODEGEN = [
    "PIC", "PIE", "pic", "pie", "common", "exceptions", "function-sections",
    "data-sections", "asynchronous-unwind-tables", "unwind-tables",
    "stack-protector", "stack-protector-all", "stack-protector-strong",
    "stack-clash-protection", "short-enums", "signed-char", "unsigned-char",
    "pack-struct", "visibility-inlines-hidden", "openmp", "openacc",
    "wrapv", "trapv", "non-call-exceptions", "delete-dead-exceptions",
    "leading-underscore", "verbose-asm", "instrument-functions",
    "sanitize-recover", "zero-initialized-in-bss", "strict-volatile-bitfields",
]

F_FLAGS_OTHER = [
    "diagnostics-color", "diagnostics-show-option", "permissive",
    "syntax-only", "preprocessed", "freestanding", "hosted", "gnu89-inline",
    "builtin", "stack-usage", "dump-tree-all", "time-report", "mem-report",
    "working-directory", "implicit-none", "backslash", "range-check",
    "second-underscore", "default-real-8", "default-integer-8",
]

# -f options that take a value after '='.
F_VALUE_OPTIONS = {
    "visibility": False,           # codegen
    "inline-limit": True,          # optimization (value=True means optimization)
    "lto-partition": True,
    "lto-compression-level": True,
    "profile-dir": True,
    "sanitize": False,
    "abi-version": False,
    "stack-limit-register": False,
    "tls-model": False,
    "ffp-contract": True,
    "vect-cost-model": True,
    "stack-protector-explicit": False,
    "max-errors": False,
}

# LTO / PGO family (the paper's headline optimizations, §4.4).
F_LTO_PGO = [
    "lto", "fat-lto-objects", "lto-odr-type-merging", "whole-program",
    "use-linker-plugin",
    "profile-generate", "profile-use", "profile-arcs", "profile-correction",
    "profile-values", "profile-reorder-functions", "branch-probabilities",
    "test-coverage", "auto-profile",
]

# ---------------------------------------------------------------------------
# -m group: machine-specific switches, tagged per ISA.
# ---------------------------------------------------------------------------

M_FLAGS_X86 = [
    "mmx", "sse", "sse2", "sse3", "ssse3", "sse4", "sse4.1", "sse4.2",
    "sse4a", "avx", "avx2", "avx512f", "avx512cd", "avx512bw", "avx512dq",
    "avx512vl", "avx512vnni", "avx512bf16", "avx512fp16", "avx512ifma",
    "avx512vbmi", "avx512vbmi2", "avx512vpopcntdq", "avx512bitalg",
    "fma", "fma4", "f16c", "bmi", "bmi2", "lzcnt", "popcnt", "adx", "aes",
    "pclmul", "sha", "rdrnd", "rdseed", "xsave", "xsaveopt", "xsavec",
    "fsgsbase", "prfchw", "clflushopt", "clwb", "movbe", "abm", "tbm",
    "3dnow", "x32", "80387", "fp-ret-in-387", "hard-float", "soft-float",
    "align-double", "ieee-fp", "push-args", "accumulate-outgoing-args",
    "red-zone", "cld", "vzeroupper", "stackrealign", "sahf", "cx16",
    "movdiri", "movdir64b", "enqcmd", "serialize", "tsxldtrk", "uintr",
    "amx-tile", "amx-int8", "amx-bf16", "kl", "widekl", "avxvnni",
]

M_VALUE_X86 = [
    "arch", "tune", "cpu", "fpmath", "preferred-stack-boundary",
    "incoming-stack-boundary", "branch-cost", "large-data-threshold",
    "regparm", "veclibabi", "stack-protector-guard", "memcpy-strategy",
    "memset-strategy", "prefer-vector-width", "indirect-branch",
    "function-return", "cmodel",
]

M_FLAGS_AARCH64 = [
    "little-endian", "big-endian", "general-regs-only", "fix-cortex-a53-835769",
    "fix-cortex-a53-843419", "low-precision-recip-sqrt", "low-precision-sqrt",
    "low-precision-div", "pc-relative-literal-loads", "strict-align",
    "omit-leaf-frame-pointer", "track-speculation", "outline-atomics",
    "harden-sls-retbr", "harden-sls-blr", "sve-vector-bits-scalable",
]

M_VALUE_AARCH64 = [
    "abi", "arch", "tune", "cpu", "branch-protection", "sve-vector-bits",
    "stack-protector-guard", "tls-dialect", "tls-size",
]

# -march= / -mcpu= values considered ISA-specific (used by cross-ISA study).
MARCH_VALUES_X86 = {
    "x86-64", "x86-64-v2", "x86-64-v3", "x86-64-v4", "native",
    "nocona", "core2", "nehalem", "westmere", "sandybridge", "ivybridge",
    "haswell", "broadwell", "skylake", "skylake-avx512", "cascadelake",
    "cooperlake", "icelake-client", "icelake-server", "sapphirerapids",
    "alderlake", "znver1", "znver2", "znver3", "znver4",
}
MARCH_VALUES_AARCH64 = {
    "armv8-a", "armv8.1-a", "armv8.2-a", "armv8.3-a", "armv8.4-a",
    "armv8.5-a", "armv8.6-a", "armv9-a", "native",
    "ft-2000plus", "tsv110", "a64fx", "neoverse-n1", "neoverse-n2",
    "neoverse-v1", "neoverse-v2", "cortex-a72", "cortex-a76",
}

# ---------------------------------------------------------------------------
# -W group: warnings (never codegen) + pass-through spellings.
# ---------------------------------------------------------------------------

W_FLAGS = [
    "all", "extra", "error", "pedantic", "abi", "address", "aggregate-return",
    "alloc-zero", "alloca", "array-bounds", "array-parameter", "attributes",
    "bool-compare", "bool-operation", "builtin-declaration-mismatch",
    "cast-align", "cast-function-type", "cast-qual", "char-subscripts",
    "clobbered", "comment", "conversion", "dangling-else", "dangling-pointer",
    "date-time", "declaration-after-statement", "deprecated",
    "deprecated-declarations", "disabled-optimization", "double-promotion",
    "duplicated-branches", "duplicated-cond", "empty-body", "enum-compare",
    "enum-conversion", "error-implicit-function-declaration", "float-conversion",
    "float-equal", "format", "format-nonliteral", "format-overflow",
    "format-security", "format-truncation", "format-y2k", "frame-address",
    "frame-larger-than", "ignored-qualifiers", "implicit",
    "implicit-fallthrough", "implicit-function-declaration", "implicit-int",
    "infinite-recursion", "init-self", "inline", "int-conversion",
    "int-in-bool-context", "int-to-pointer-cast", "invalid-memory-model",
    "invalid-pch", "jump-misses-init", "larger-than", "logical-not-parentheses",
    "logical-op", "long-long", "main", "maybe-uninitialized",
    "memset-elt-size", "memset-transposed-args", "misleading-indentation",
    "missing-braces", "missing-declarations", "missing-field-initializers",
    "missing-include-dirs", "missing-prototypes", "multistatement-macros",
    "narrowing", "nested-externs", "nonnull", "nonnull-compare", "null-dereference",
    "old-style-cast", "old-style-declaration", "old-style-definition",
    "overflow", "overlength-strings", "override-init", "packed",
    "packed-bitfield-compat", "padded", "parentheses", "pedantic-ms-format",
    "pointer-arith", "pointer-compare", "pointer-sign", "pointer-to-int-cast",
    "redundant-decls", "reorder", "restrict", "return-local-addr",
    "return-type", "sequence-point", "shadow", "shift-count-negative",
    "shift-count-overflow", "shift-negative-value", "shift-overflow",
    "sign-compare", "sign-conversion", "sizeof-array-argument",
    "sizeof-pointer-div", "sizeof-pointer-memaccess", "stack-protector",
    "strict-aliasing", "strict-overflow", "strict-prototypes",
    "stringop-overflow", "stringop-truncation", "suggest-attribute=const",
    "suggest-attribute=noreturn", "suggest-attribute=pure", "switch",
    "switch-default", "switch-enum", "sync-nand", "system-headers",
    "tautological-compare", "trampolines", "trigraphs", "type-limits",
    "undef", "uninitialized", "unknown-pragmas", "unreachable-code",
    "unsafe-loop-optimizations", "unused", "unused-but-set-parameter",
    "unused-but-set-variable", "unused-function", "unused-label",
    "unused-local-typedefs", "unused-macros", "unused-parameter",
    "unused-result", "unused-value", "unused-variable", "useless-cast",
    "varargs", "variadic-macros", "vector-operation-performance", "vla",
    "volatile-register-var", "write-strings", "zero-as-null-pointer-constant",
]

# ---------------------------------------------------------------------------
# Singleton options.
# ---------------------------------------------------------------------------

_SINGLETONS = dict(
    [
        # Mode selection.
        _spec("-c", FLAG, stage=STAGE_COMPILE, description="compile only, do not link"),
        _spec("-S", FLAG, stage=STAGE_COMPILE, description="stop after assembly generation"),
        _spec("-E", FLAG, stage=STAGE_PREPROCESS, description="preprocess only"),
        _spec("-o", SEPARATE, description="output file"),
        _spec("-x", SEPARATE, description="language override"),
        _spec("-v", FLAG, description="verbose"),
        _spec("-###", FLAG, description="dry-run verbose"),
        _spec("--version", FLAG),
        _spec("--help", FLAG),
        _spec("-pipe", FLAG),
        _spec("-save-temps", FLAG),
        # Preprocessor.
        _spec("-D", JOINED_OR_SEPARATE, stage=STAGE_PREPROCESS, codegen=True,
              description="define macro"),
        _spec("-U", JOINED_OR_SEPARATE, stage=STAGE_PREPROCESS, codegen=True),
        _spec("-I", JOINED_OR_SEPARATE, stage=STAGE_PREPROCESS),
        _spec("-isystem", SEPARATE, stage=STAGE_PREPROCESS),
        _spec("-iquote", SEPARATE, stage=STAGE_PREPROCESS),
        _spec("-idirafter", SEPARATE, stage=STAGE_PREPROCESS),
        _spec("-include", SEPARATE, stage=STAGE_PREPROCESS, codegen=True),
        _spec("-imacros", SEPARATE, stage=STAGE_PREPROCESS, codegen=True),
        _spec("-nostdinc", FLAG, stage=STAGE_PREPROCESS),
        _spec("-M", FLAG, stage=STAGE_PREPROCESS),
        _spec("-MM", FLAG, stage=STAGE_PREPROCESS),
        _spec("-MD", FLAG, stage=STAGE_PREPROCESS),
        _spec("-MMD", FLAG, stage=STAGE_PREPROCESS),
        _spec("-MP", FLAG, stage=STAGE_PREPROCESS),
        _spec("-MF", SEPARATE, stage=STAGE_PREPROCESS),
        _spec("-MT", SEPARATE, stage=STAGE_PREPROCESS),
        _spec("-MQ", SEPARATE, stage=STAGE_PREPROCESS),
        # Debug.
        _spec("-g", JOINED, description="debug info (-g, -g0..-g3, -ggdb...)"),
        _spec("-p", FLAG, codegen=True),
        _spec("-pg", FLAG, codegen=True, description="gprof instrumentation"),
        # Linker.
        _spec("-l", JOINED_OR_SEPARATE, stage=STAGE_LINK, description="link library"),
        _spec("-L", JOINED_OR_SEPARATE, stage=STAGE_LINK, description="library search dir"),
        _spec("-shared", FLAG, stage=STAGE_LINK, codegen=True),
        _spec("-static", FLAG, stage=STAGE_LINK, codegen=True),
        _spec("-static-libgcc", FLAG, stage=STAGE_LINK),
        _spec("-static-libstdc++", FLAG, stage=STAGE_LINK),
        _spec("-rdynamic", FLAG, stage=STAGE_LINK),
        _spec("-nostdlib", FLAG, stage=STAGE_LINK),
        _spec("-nodefaultlibs", FLAG, stage=STAGE_LINK),
        _spec("-nostartfiles", FLAG, stage=STAGE_LINK),
        _spec("-pthread", FLAG, codegen=True, description="POSIX threads"),
        _spec("-fopenmp", FLAG, codegen=True, optimization=True, description="OpenMP"),
        _spec("-Xlinker", SEPARATE, stage=STAGE_LINK),
        _spec("-Xassembler", SEPARATE),
        _spec("-Xpreprocessor", SEPARATE, stage=STAGE_PREPROCESS),
        _spec("-T", SEPARATE, stage=STAGE_LINK, description="linker script"),
        _spec("-u", JOINED_OR_SEPARATE, stage=STAGE_LINK),
        _spec("-z", SEPARATE, stage=STAGE_LINK),
        _spec("-specs", JOINED, description="-specs=file"),
        # Misc value options.
        _spec("--param", SEPARATE, optimization=True, description="--param name=value"),
        _spec("-dumpbase", SEPARATE),
        _spec("-dumpdir", SEPARATE),
        _spec("-aux-info", SEPARATE),
        _spec("-B", JOINED_OR_SEPARATE, description="compiler file prefix"),
        _spec("--sysroot", JOINED, description="--sysroot=dir"),
    ]
)


def _build_table() -> Dict[str, OptionSpec]:
    table: Dict[str, OptionSpec] = dict(_SINGLETONS)

    def put(name: str, **kw) -> None:
        table[name] = OptionSpec(name=name, **kw)

    # -O family.
    for level in ["-O", "-O0", "-O1", "-O2", "-O3", "-Os", "-Ofast", "-Og", "-Oz"]:
        put(level, style=FLAG, optimization=True, codegen=True,
            description="optimization level")

    # -std= family.
    for std in ["c89", "c99", "c11", "c17", "c2x", "gnu89", "gnu99", "gnu11",
                "gnu17", "c++11", "c++14", "c++17", "c++20", "c++23",
                "gnu++14", "gnu++17", "gnu++20", "f2008", "f2018", "legacy"]:
        put(f"-std={std}", style=FLAG, codegen=True, description="language standard")

    # -f boolean groups.
    for name in F_FLAGS_OPTIMIZATION:
        put(f"-f{name}", codegen=True, optimization=True)
        put(f"-fno-{name}", codegen=True, optimization=True)
    for name in F_FLAGS_CODEGEN:
        put(f"-f{name}", codegen=True)
        put(f"-fno-{name}", codegen=True)
    for name in F_FLAGS_OTHER:
        put(f"-f{name}")
        put(f"-fno-{name}")
    for name in F_LTO_PGO:
        put(f"-f{name}", codegen=True, optimization=True,
            description="LTO/PGO control")
        put(f"-fno-{name}", codegen=True, optimization=True)
    for name, is_opt in F_VALUE_OPTIONS.items():
        put(f"-f{name}", style=JOINED, codegen=True, optimization=is_opt,
            description=f"-f{name}=value")

    # -m machine groups.
    for name in M_FLAGS_X86:
        put(f"-m{name}", codegen=True, isa="x86-64")
        put(f"-mno-{name}", codegen=True, isa="x86-64")
    for name in M_VALUE_X86:
        put(f"-m{name}", style=JOINED, codegen=True, isa="x86-64",
            description=f"-m{name}=value")
    for name in M_FLAGS_AARCH64:
        put(f"-m{name}", codegen=True, isa="aarch64")
        put(f"-mno-{name}", codegen=True, isa="aarch64")
    for name in M_VALUE_AARCH64:
        # -march/-mtune/-mcpu exist on both ISAs; the *value* decides the ISA.
        shared = name in ("arch", "tune", "cpu", "stack-protector-guard")
        put(f"-m{name}", style=JOINED, codegen=True,
            isa=None if shared else "aarch64", description=f"-m{name}=value")

    # -W warnings + pass-throughs.
    put("-W", style=JOINED, description="warning family")
    for name in W_FLAGS:
        put(f"-W{name}")
        put(f"-Wno-{name}")
    put("-Wl", style=JOINED, stage=STAGE_LINK, description="-Wl,args pass-through")
    put("-Wa", style=JOINED, description="-Wa,args pass-through")
    put("-Wp", style=JOINED, stage=STAGE_PREPROCESS, description="-Wp,args pass-through")
    put("-Werror", style=JOINED, description="-Werror / -Werror=warning")

    return table


#: The full option table, keyed by option name (including the leading dash).
OPTION_TABLE: Dict[str, OptionSpec] = _build_table()

_FAMILY_PREFIXES = ("-f", "-m", "-W")


def classify_option(arg: str) -> Optional[OptionSpec]:
    """Look up *arg* in the table, handling ``=``-joined values and families.

    Returns the matching spec; unknown members of the ``-f``/``-m``/``-W``
    families get a synthesized spec (GCC evolves faster than any table —
    the paper reports continually refining theirs) flagged with the family
    defaults.  Returns None for arguments that are not options.
    """
    if not arg.startswith("-") or arg == "-":
        return None
    if arg in OPTION_TABLE:
        return OPTION_TABLE[arg]
    if "=" in arg:
        head = arg.split("=", 1)[0]
        if head in OPTION_TABLE:
            return OPTION_TABLE[head]
    # Prefix matches for joined-style singletons (-DFOO, -Iinclude, -g3, ...).
    for prefix in ("-D", "-U", "-I", "-L", "-l", "-g", "-specs", "--sysroot",
                   "-B", "-Wl", "-Wa", "-Wp", "-Werror", "-W"):
        if arg.startswith(prefix) and prefix in OPTION_TABLE and len(arg) > len(prefix):
            spec = OPTION_TABLE[prefix]
            if spec.style in (JOINED, JOINED_OR_SEPARATE):
                return spec
    # Unknown family members.
    for prefix in _FAMILY_PREFIXES:
        if arg.startswith(prefix):
            return OptionSpec(
                name=arg.split("=", 1)[0],
                style=JOINED if "=" in arg else FLAG,
                codegen=prefix in ("-f", "-m"),
                optimization=prefix == "-f",
                isa=None,
                description="unknown family member",
            )
    return OptionSpec(name=arg, style=FLAG, description="unknown option")


def is_isa_specific(arg: str, isa_of_march_value=None) -> Optional[str]:
    """Return the ISA an option pins the build to, if any.

    ``-mavx2`` -> ``x86-64``; ``-march=skylake`` -> ``x86-64``;
    ``-march=armv8.2-a`` -> ``aarch64``; portable options -> None.
    """
    spec = classify_option(arg)
    if spec is None:
        return None
    if spec.isa is not None:
        return spec.isa
    if spec.name in ("-march", "-mtune", "-mcpu") and "=" in arg:
        value = arg.split("=", 1)[1]
        if value in MARCH_VALUES_X86 and value in MARCH_VALUES_AARCH64:
            return None  # e.g. "native" is spelled identically on both
        if value in MARCH_VALUES_X86:
            return "x86-64"
        if value in MARCH_VALUES_AARCH64:
            return "aarch64"
    return None


def table_size() -> int:
    """Number of distinct options modelled (paper: GCC has 2314)."""
    return len(OPTION_TABLE)
