"""Builders for the generic distro base images.

Produces the "ubuntu:24.04"-like base images the paper's users build on:
a rootfs populated from the synthetic generic repository via apt, with a
sources.list pointing back at it, packaged as a single-layer OCI image.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.containers.engine import ContainerEngine
from repro.oci.diff import layer_from_tree
from repro.oci.image import ImageConfig
from repro.oci.layer import Layer
from repro.pkg import catalog
from repro.pkg.apt import AptFacade
from repro.pkg.repository import RepositoryPool
from repro.vfs import VirtualFilesystem

UBUNTU_REF = "ubuntu:24.04"


def build_ubuntu_base(arch: str) -> Tuple[ImageConfig, List[Layer]]:
    """Build the generic base image for *arch* (one rootfs layer)."""
    repo = catalog.build_generic_repository(arch)
    fs = VirtualFilesystem()
    for directory in ("/bin", "/usr/bin", "/usr/lib", "/etc", "/tmp", "/root",
                      "/var/lib/dpkg", "/usr/share"):
        fs.makedirs(directory)
    fs.write_file("/etc/apt/sources.list", "repo ubuntu-generic\n", create_parents=True)
    fs.write_file(
        "/etc/os-release",
        'NAME="Ubuntu"\nVERSION_ID="24.04"\nID=ubuntu\n',
        create_parents=True,
    )
    apt = AptFacade(fs, RepositoryPool([repo]))
    apt.install(catalog.default_base_install(arch))
    layer = layer_from_tree(fs, comment=f"ubuntu 24.04 base rootfs ({arch})")
    config = ImageConfig(
        architecture=arch,
        env=["PATH=/usr/local/sbin:/usr/local/bin:/usr/sbin:/usr/bin:/sbin:/bin"],
        cmd=["/bin/bash"],
        labels={"org.opencontainers.image.ref.name": UBUNTU_REF},
        diff_ids=[layer.digest],
    )
    config.add_history(f"synthetic ubuntu base for {arch}")
    return config, [layer]


def install_ubuntu_base(engine: ContainerEngine, ref: str = UBUNTU_REF) -> str:
    """Build and register the base image (and its repo) on an engine."""
    engine.register_repository(catalog.build_generic_repository(engine.arch))
    config, layers = build_ubuntu_base(engine.arch)
    engine.add_image(ref, config, layers)
    return ref
