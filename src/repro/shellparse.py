"""A small POSIX-ish shell lexer.

Build processes arrive as shell command lines (Dockerfile ``RUN``
instructions, build scripts).  This module splits scripts into logical
statements and tokenizes single statements with quoting, ``$VAR``/
``${NAME}`` expansion, comments, and the ``&&``/``||``/``;`` operators.

Lexing and expansion are separate phases: the lexer produces
:class:`WordToken` objects made of :class:`Part` fragments; expansion
happens per-command at execution time (so ``X=1; echo $X`` sees the
assignment).  Globs (unquoted ``*``/``?``) are flagged at expansion time
and resolved by the shell executor against the virtual filesystem.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

OP_AND = "&&"
OP_OR = "||"
OP_SEQ = ";"


class ShellSyntaxError(Exception):
    pass


@dataclass(frozen=True)
class Part:
    """A fragment of a word: raw (expand+glob), dquote (expand), literal."""

    text: str
    expand: bool = True
    glob_ok: bool = True


@dataclass(frozen=True)
class WordToken:
    """One word or operator token."""

    parts: Tuple[Part, ...] = ()
    is_operator: bool = False

    @property
    def raw(self) -> str:
        return "".join(p.text for p in self.parts)

    def expanded(self, env: Dict[str, str]) -> Tuple[str, bool]:
        """Expand against *env*; returns (text, may_glob)."""
        chunks: List[str] = []
        may_glob = False
        for part in self.parts:
            text = expand_variables(part.text, env) if part.expand else part.text
            if part.glob_ok and any(c in text for c in "*?"):
                may_glob = True
            chunks.append(text)
        return "".join(chunks), may_glob


@dataclass(frozen=True)
class Token:
    """Eagerly-expanded token (convenience view used by tests/tools)."""

    text: str
    is_operator: bool = False
    glob: bool = False


def split_statements(script: str) -> List[str]:
    """Split a script into logical lines.

    Handles backslash-newline continuations and full-line/trailing
    comments (a ``#`` that starts a word).  Quote-aware: ``#`` inside
    quotes is literal.
    """
    joined: List[str] = []
    pending = ""
    for raw_line in script.split("\n"):
        line = pending + raw_line
        pending = ""
        if line.endswith("\\") and not line.endswith("\\\\"):
            pending = line[:-1] + " "
            continue
        joined.append(line)
    if pending:
        joined.append(pending)

    statements: List[str] = []
    for line in joined:
        stripped = _strip_comment(line).strip()
        if stripped:
            statements.append(stripped)
    return statements


def _strip_comment(line: str) -> str:
    in_single = in_double = False
    previous = ""
    for i, char in enumerate(line):
        if char == "'" and not in_double:
            in_single = not in_single
        elif char == '"' and not in_single:
            in_double = not in_double
        elif (
            char == "#"
            and not in_single
            and not in_double
            and (i == 0 or previous in " \t;")
        ):
            return line[:i]
        previous = char
    return line


def expand_variables(text: str, env: Dict[str, str]) -> str:
    """Expand ``$NAME`` and ``${NAME}`` (undefined names expand empty)."""
    out: List[str] = []
    i = 0
    while i < len(text):
        char = text[i]
        if char == "$" and i + 1 < len(text):
            nxt = text[i + 1]
            if nxt == "{":
                end = text.find("}", i + 2)
                if end == -1:
                    raise ShellSyntaxError(f"unterminated ${{...}} in {text!r}")
                out.append(env.get(text[i + 2:end], ""))
                i = end + 1
                continue
            if nxt.isalpha() or nxt == "_":
                j = i + 1
                while j < len(text) and (text[j].isalnum() or text[j] == "_"):
                    j += 1
                out.append(env.get(text[i + 1:j], ""))
                i = j
                continue
        out.append(char)
        i += 1
    return "".join(out)


def lex(line: str) -> List[WordToken]:
    """Tokenize one statement into deferred-expansion tokens."""
    tokens: List[WordToken] = []
    parts: List[Part] = []
    started = False

    def flush() -> None:
        nonlocal parts, started
        if started:
            tokens.append(WordToken(parts=tuple(parts)))
        parts = []
        started = False

    i = 0
    while i < len(line):
        char = line[i]
        if char in " \t":
            flush()
            i += 1
            continue
        if char == ";":
            flush()
            tokens.append(WordToken(parts=(Part(OP_SEQ),), is_operator=True))
            i += 1
            continue
        if line.startswith("&&", i):
            flush()
            tokens.append(WordToken(parts=(Part(OP_AND),), is_operator=True))
            i += 2
            continue
        if line.startswith("||", i):
            flush()
            tokens.append(WordToken(parts=(Part(OP_OR),), is_operator=True))
            i += 2
            continue
        if char == "'":
            end = line.find("'", i + 1)
            if end == -1:
                raise ShellSyntaxError(f"unterminated single quote: {line!r}")
            parts.append(Part(line[i + 1:end], expand=False, glob_ok=False))
            started = True
            i = end + 1
            continue
        if char == '"':
            end = i + 1
            buf: List[str] = []
            while end < len(line):
                if line[end] == "\\" and end + 1 < len(line) and line[end + 1] in '"\\$':
                    buf.append(line[end + 1])
                    end += 2
                    continue
                if line[end] == '"':
                    break
                buf.append(line[end])
                end += 1
            else:
                raise ShellSyntaxError(f"unterminated double quote: {line!r}")
            parts.append(Part("".join(buf), expand=True, glob_ok=False))
            started = True
            i = end + 1
            continue
        if char == "\\" and i + 1 < len(line):
            parts.append(Part(line[i + 1], expand=False, glob_ok=False))
            started = True
            i += 2
            continue
        j = i
        while j < len(line) and line[j] not in " \t;'\"\\" and not (
            line[j] == "&" and line.startswith("&&", j)
        ) and not (line[j] == "|" and line.startswith("||", j)):
            j += 1
        parts.append(Part(line[i:j], expand=True, glob_ok=True))
        started = True
        i = j
    flush()
    return tokens


def tokenize(line: str, env: Optional[Dict[str, str]] = None) -> List[Token]:
    """Eagerly-expanded tokenization (convenience/testing view)."""
    env = env or {}
    out: List[Token] = []
    for token in lex(line):
        if token.is_operator:
            out.append(Token(token.raw, is_operator=True))
        else:
            text, may_glob = token.expanded(env)
            out.append(Token(text, glob=may_glob))
    return out


def parse_statement_lazy(line: str) -> List[Tuple[str, List[WordToken]]]:
    """Split a statement into an and-or list of unexpanded commands.

    Returns ``[(connector, word_tokens), ...]``; the first connector is
    ``";"``, later ones are the operators joining the commands.
    """
    tokens = lex(line)
    groups: List[Tuple[str, List[WordToken]]] = []
    connector = OP_SEQ
    current: List[WordToken] = []
    for token in tokens:
        if token.is_operator:
            if current:
                groups.append((connector, current))
            elif token.raw != OP_SEQ:
                raise ShellSyntaxError(f"syntax error near {token.raw!r}")
            connector = token.raw
            current = []
        else:
            current.append(token)
    if current:
        groups.append((connector, current))
    return groups


def parse_statement(
    line: str, env: Optional[Dict[str, str]] = None
) -> List[Tuple[str, List[Token]]]:
    """Eagerly-expanded variant of :func:`parse_statement_lazy`."""
    env = env or {}
    out: List[Tuple[str, List[Token]]] = []
    for connector, words in parse_statement_lazy(line):
        expanded: List[Token] = []
        for word in words:
            text, may_glob = word.expanded(env)
            expanded.append(Token(text, glob=may_glob))
        out.append((connector, expanded))
    return out
