"""coMtainer reproduction (SC '25): compilation-assisted HPC container
images with enhanced adaptability.

Public entry points:

* :class:`repro.core.workflow.ComtainerSession` /
  :func:`repro.core.workflow.measure_schemes` — end-to-end evaluation.
* :mod:`repro.reporting` — regenerate the paper's tables and figures.
* :mod:`repro.core` — the coMtainer framework (models, frontend, cache,
  backend, adapters, optimizations, cross-ISA).
* Substrates: :mod:`repro.vfs`, :mod:`repro.oci`, :mod:`repro.pkg`,
  :mod:`repro.toolchain`, :mod:`repro.containers`, :mod:`repro.sysmodel`,
  :mod:`repro.perf`, :mod:`repro.apps`.
"""

__version__ = "1.0.0"
__paper__ = (
    "coMtainer: Compilation-assisted HPC Container Images with Enhanced "
    "Adaptability - Gu, Chen, Chen, Du, Chen, Xiao, Zhang, Lu; SC '25, "
    "doi:10.1145/3712285.3759790"
)
