"""The command-line hijacker.

The paper (§4.5): "The recording is performed by a simple command line
hijacker program that logs the arguments, environment variables, etc.,
and transparently forwards the execution to the real program via execvp.
The hijacking is achieved by replacing the default programs in the Env
image with symbolic links to the hijacker program."

Here the same effect is had by rewriting the tool binaries' program
markers: a hijacked binary carries ``program="hijack"`` plus the original
marker under ``forward``.  The engine's dispatcher appends a JSON trace
record to :data:`TRACE_PATH` and then dispatches the forwarded program.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List

from repro import simbin
from repro.vfs import VirtualFilesystem

TRACE_PATH = "/.coMtainer/trace.jsonl"

#: Binaries the Env image hijacks by default — the build-relevant tools.
DEFAULT_HIJACK_TARGETS = (
    "/usr/bin/gcc-12", "/usr/bin/g++-12", "/usr/bin/gfortran-12",
    "/usr/bin/cpp-12", "/usr/bin/ar", "/usr/bin/ld", "/usr/bin/ranlib",
    "/usr/bin/strip", "/usr/bin/mpicc", "/usr/bin/mpicxx", "/usr/bin/mpif90",
)


def install_hijackers(
    fs: VirtualFilesystem, targets: Iterable[str] = DEFAULT_HIJACK_TARGETS
) -> List[str]:
    """Wrap each existing target binary with the hijacker; returns wrapped paths."""
    wrapped: List[str] = []
    fs.makedirs("/.coMtainer")
    if not fs.exists(TRACE_PATH):
        fs.write_file(TRACE_PATH, b"", create_parents=True)
    for target in targets:
        if not fs.exists(target):
            continue
        data = fs.read_file(target)
        marker = simbin.read_program_marker(data)
        if marker is None or marker.get("program") == "hijack":
            continue
        fs.write_file(
            target,
            simbin.program_marker("hijack", forward=marker),
            mode=0o755,
        )
        wrapped.append(target)
    return wrapped


def record_trace(
    fs: VirtualFilesystem,
    argv: List[str],
    env: Dict[str, str],
    cwd: str,
    forward: Dict,
) -> None:
    """Append one raw-build-process record (argv + env + cwd + real tool)."""
    record = {
        "argv": list(argv),
        "cwd": cwd,
        "env": {k: env[k] for k in sorted(env) if k in _TRACED_ENV},
        "program": forward.get("program"),
        "meta": {k: v for k, v in forward.items() if k != "program"},
    }
    line = json.dumps(record, sort_keys=True) + "\n"
    existing = fs.read_file(TRACE_PATH) if fs.exists(TRACE_PATH) else b""
    fs.write_file(TRACE_PATH, existing + line.encode("utf-8"), create_parents=True)


_TRACED_ENV = {"PATH", "LIBRARY_PATH", "CFLAGS", "CXXFLAGS", "FFLAGS", "LDFLAGS", "PWD"}


def read_trace(fs: VirtualFilesystem) -> List[Dict]:
    """Parse the recorded raw build process."""
    if not fs.exists(TRACE_PATH):
        return []
    records: List[Dict] = []
    for line in fs.read_text(TRACE_PATH).splitlines():
        if line.strip():
            records.append(json.loads(line))
    return records


def clear_trace(fs: VirtualFilesystem) -> None:
    fs.write_file(TRACE_PATH, b"", create_parents=True)
