"""Containers, process contexts and run results."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.oci.image import ImageConfig
from repro.vfs import VirtualFilesystem
from repro.vfs import paths as vpath

ARCH_ISA = {"amd64": "x86-64", "arm64": "aarch64"}

DEFAULT_PATH = "/usr/local/bin:/usr/bin:/bin:/usr/sbin:/sbin:/opt/intel/bin:/opt/phytium/bin"


class ProgramError(Exception):
    """A simulated program failed; message is its stderr diagnostic."""


@dataclass
class RunResult:
    """Outcome of executing a command in a container."""

    exit_code: int = 0
    stdout: str = ""
    stderr: str = ""

    @property
    def ok(self) -> bool:
        return self.exit_code == 0

    def check(self) -> "RunResult":
        if not self.ok:
            raise ProgramError(self.stderr or f"command failed with {self.exit_code}")
        return self


@dataclass
class Container:
    """A writable instance of an image plus runtime state."""

    id: str
    name: str
    image_ref: str
    arch: str
    fs: VirtualFilesystem
    base_fs: VirtualFilesystem
    config: ImageConfig
    mounts: Dict[str, Any] = field(default_factory=dict)

    @property
    def isa(self) -> str:
        return ARCH_ISA.get(self.arch, "x86-64")

    def environment(self) -> Dict[str, str]:
        env = {"PATH": DEFAULT_PATH, "HOME": "/root"}
        env.update(self.config.env_dict())
        return env

    def mount_at(self, path: str) -> Optional[Any]:
        return self.mounts.get(vpath.normalize(path))


@dataclass
class ProcessContext:
    """Everything a simulated program sees when it runs."""

    engine: Any                     # ContainerEngine (untyped to avoid cycle)
    container: Container
    argv: List[str]
    env: Dict[str, str]
    cwd: str
    meta: Dict[str, Any] = field(default_factory=dict)   # program marker metadata
    _stdout: List[str] = field(default_factory=list)

    @property
    def fs(self) -> VirtualFilesystem:
        return self.container.fs

    @property
    def isa(self) -> str:
        return self.container.isa

    def resolve(self, path: str) -> str:
        return vpath.join(self.cwd, path)

    def write(self, text: str) -> None:
        self._stdout.append(text)

    def writeline(self, text: str = "") -> None:
        self._stdout.append(text + "\n")

    def stdout(self) -> str:
        return "".join(self._stdout)

    def arg_after(self, flag: str) -> Optional[str]:
        """Value following *flag* in argv, if present."""
        try:
            index = self.argv.index(flag)
        except ValueError:
            return None
        if index + 1 < len(self.argv):
            return self.argv[index + 1]
        return None
