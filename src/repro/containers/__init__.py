"""Container engine substrate (a buildah/podman simulacrum).

Provides multi-stage Containerfile builds, containers over the virtual
filesystem, a simulated userland (shell + coreutils + apt + toolchain
entry points), commit-to-layer semantics, and the command hijacker that
records the raw build process for coMtainer's front-end.
"""

from repro.containers.container import (
    Container,
    ProcessContext,
    ProgramError,
    RunResult,
)
from repro.containers.dockerfile import ContainerfileError, Stage, parse_containerfile
from repro.containers.engine import ContainerEngine, EngineError, StoredImage
from repro.containers.hijack import install_hijackers, TRACE_PATH

__all__ = [
    "Container",
    "ContainerEngine",
    "ContainerfileError",
    "EngineError",
    "ProcessContext",
    "ProgramError",
    "RunResult",
    "Stage",
    "StoredImage",
    "TRACE_PATH",
    "install_hijackers",
    "parse_containerfile",
]
