"""The simulated userland: programs dispatchable inside containers.

Each program is a callable taking a :class:`ProcessContext` and returning
an exit code (raising :class:`ProgramError` for diagnostics).  The
registry is extensible — the coMtainer toolset registers its
``coMtainer-build``/``-rebuild``/``-redirect`` entry points the same way.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.containers.container import ProcessContext, ProgramError
from repro.pkg.apt import AptFacade
from repro.pkg.database import DpkgDatabase
from repro.toolchain.archiver import ArchiverError, run_ar
from repro.toolchain.drivers import CompilerDriver, CompilerError
from repro.vfs import Directory, RegularFile, Symlink
from repro.vfs import paths as vpath
from repro.vfs.errors import VfsError

ProgramFn = Callable[[ProcessContext], int]

_REGISTRY: Dict[str, ProgramFn] = {}


def register_program(name: str, fn: ProgramFn) -> None:
    _REGISTRY[name] = fn


def program(name: str) -> Callable[[ProgramFn], ProgramFn]:
    def deco(fn: ProgramFn) -> ProgramFn:
        register_program(name, fn)
        return fn
    return deco


def get_program(name: str) -> ProgramFn:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ProgramError(f"{name}: no such simulated program") from None


def has_program(name: str) -> bool:
    return name in _REGISTRY


# ---------------------------------------------------------------------------
# shells
# ---------------------------------------------------------------------------

@program("sh")
@program("bash")
def _sh(ctx: ProcessContext) -> int:
    from repro.containers.shell import Shell  # local import: cycle

    args = ctx.argv[1:]
    if args and args[0] == "-c":
        script = " ".join(args[1:]) if len(args) > 1 else ""
    elif args:
        path = ctx.resolve(args[0])
        if not ctx.fs.exists(path):
            raise ProgramError(f"sh: {args[0]}: No such file or directory")
        script = ctx.fs.read_text(path)
    else:
        return 0
    shell = Shell(ctx.engine, ctx.container)
    result = shell.run_script(script, env=dict(ctx.env), cwd=ctx.cwd)
    ctx.write(result.stdout)
    if result.stderr:
        raise ProgramError(result.stderr)
    return result.exit_code


# ---------------------------------------------------------------------------
# coreutils
# ---------------------------------------------------------------------------

@program("true")
def _true(ctx: ProcessContext) -> int:
    return 0


@program("echo")
def _echo(ctx: ProcessContext) -> int:
    args = ctx.argv[1:]
    newline = True
    if args and args[0] == "-n":
        newline = False
        args = args[1:]
    ctx.write(" ".join(args) + ("\n" if newline else ""))
    return 0


@program("cat")
def _cat(ctx: ProcessContext) -> int:
    for name in ctx.argv[1:]:
        path = ctx.resolve(name)
        if not ctx.fs.exists(path):
            raise ProgramError(f"cat: {name}: No such file or directory")
        ctx.write(ctx.fs.read_file(path).decode("utf-8", errors="replace"))
    return 0


@program("env")
def _env(ctx: ProcessContext) -> int:
    for key in sorted(ctx.env):
        ctx.writeline(f"{key}={ctx.env[key]}")
    return 0


@program("mkdir")
def _mkdir(ctx: ProcessContext) -> int:
    parents = False
    targets: List[str] = []
    for arg in ctx.argv[1:]:
        if arg in ("-p", "--parents"):
            parents = True
        elif arg.startswith("-"):
            continue
        else:
            targets.append(arg)
    if not targets:
        raise ProgramError("mkdir: missing operand")
    for target in targets:
        path = ctx.resolve(target)
        try:
            if parents:
                ctx.fs.makedirs(path)
            else:
                ctx.fs.mkdir(path)
        except VfsError as exc:
            raise ProgramError(f"mkdir: cannot create directory '{target}': {exc}")
    return 0


@program("touch")
def _touch(ctx: ProcessContext) -> int:
    for name in ctx.argv[1:]:
        path = ctx.resolve(name)
        if not ctx.fs.exists(path):
            ctx.fs.write_file(path, b"", create_parents=True)
    return 0


@program("rm")
def _rm(ctx: ProcessContext) -> int:
    recursive = force = False
    targets: List[str] = []
    for arg in ctx.argv[1:]:
        if arg.startswith("-") and len(arg) > 1 and not arg.startswith("--"):
            recursive |= "r" in arg or "R" in arg
            force |= "f" in arg
        elif arg in ("--recursive",):
            recursive = True
        elif arg in ("--force",):
            force = True
        else:
            targets.append(arg)
    for target in targets:
        path = ctx.resolve(target)
        try:
            ctx.fs.remove(path, recursive=recursive, missing_ok=force)
        except VfsError as exc:
            raise ProgramError(f"rm: cannot remove '{target}': {exc}")
    return 0


def _copy_one(ctx: ProcessContext, src: str, dst: str, recursive: bool) -> None:
    src_path = ctx.resolve(src)
    dst_path = ctx.resolve(dst)
    node = ctx.fs.try_get_node(src_path, follow_symlinks=False)
    if node is None:
        raise ProgramError(f"cp: cannot stat '{src}': No such file or directory")
    if isinstance(node, Directory) and not recursive:
        raise ProgramError(f"cp: -r not specified; omitting directory '{src}'")
    if ctx.fs.is_dir(dst_path):
        dst_path = vpath.join(dst_path, vpath.basename(src_path))
    ctx.fs.copy_tree(src_path, dst_path)


@program("cp")
def _cp(ctx: ProcessContext) -> int:
    recursive = False
    operands: List[str] = []
    for arg in ctx.argv[1:]:
        if arg.startswith("-") and len(arg) > 1:
            if any(c in arg for c in "rRa"):
                recursive = True
        else:
            operands.append(arg)
    if len(operands) < 2:
        raise ProgramError("cp: missing file operand")
    *sources, dst = operands
    if len(sources) > 1 and not ctx.fs.is_dir(ctx.resolve(dst)):
        raise ProgramError(f"cp: target '{dst}' is not a directory")
    for src in sources:
        _copy_one(ctx, src, dst, recursive)
    return 0


@program("mv")
def _mv(ctx: ProcessContext) -> int:
    operands = [a for a in ctx.argv[1:] if not a.startswith("-")]
    if len(operands) < 2:
        raise ProgramError("mv: missing file operand")
    *sources, dst = operands
    dst_path = ctx.resolve(dst)
    for src in sources:
        src_path = ctx.resolve(src)
        if not ctx.fs.lexists(src_path):
            raise ProgramError(f"mv: cannot stat '{src}': No such file or directory")
        target = dst_path
        if ctx.fs.is_dir(dst_path):
            target = vpath.join(dst_path, vpath.basename(src_path))
        ctx.fs.rename(src_path, target)
    return 0


@program("ln")
def _ln(ctx: ProcessContext) -> int:
    symbolic = force = False
    operands: List[str] = []
    for arg in ctx.argv[1:]:
        if arg.startswith("-") and len(arg) > 1:
            symbolic |= "s" in arg
            force |= "f" in arg
        else:
            operands.append(arg)
    if not symbolic:
        raise ProgramError("ln: only symbolic links are supported (use -s)")
    if len(operands) != 2:
        raise ProgramError("ln: expected TARGET LINK_NAME")
    target, linkname = operands
    link_path = ctx.resolve(linkname)
    if ctx.fs.is_dir(link_path):
        link_path = vpath.join(link_path, vpath.basename(target))
    if force:
        ctx.fs.remove(link_path, recursive=False, missing_ok=True)
    ctx.fs.symlink(target, link_path, create_parents=True)
    return 0


@program("chmod")
def _chmod(ctx: ProcessContext) -> int:
    operands = [a for a in ctx.argv[1:] if not a.startswith("-")]
    if len(operands) < 2:
        raise ProgramError("chmod: missing operand")
    mode_text, *targets = operands
    try:
        mode = int(mode_text, 8)
    except ValueError:
        mode = 0o755 if "x" in mode_text else 0o644
    for target in targets:
        path = ctx.resolve(target)
        if not ctx.fs.exists(path):
            raise ProgramError(f"chmod: cannot access '{target}': No such file or directory")
        ctx.fs.chmod(path, mode)
    return 0


@program("install")
def _install(ctx: ProcessContext) -> int:
    args = ctx.argv[1:]
    mode = 0o755
    make_dirs = False
    operands: List[str] = []
    i = 0
    while i < len(args):
        arg = args[i]
        if arg == "-d":
            make_dirs = True
        elif arg == "-m":
            mode = int(args[i + 1], 8)
            i += 1
        elif arg.startswith("-m"):
            mode = int(arg[2:], 8)
        elif not arg.startswith("-"):
            operands.append(arg)
        i += 1
    if make_dirs:
        for operand in operands:
            ctx.fs.makedirs(ctx.resolve(operand))
        return 0
    if len(operands) < 2:
        raise ProgramError("install: missing destination")
    *sources, dst = operands
    for src in sources:
        _copy_one(ctx, src, dst, recursive=False)
        dst_path = ctx.resolve(dst)
        if ctx.fs.is_dir(dst_path):
            dst_path = vpath.join(dst_path, vpath.basename(src))
        ctx.fs.chmod(dst_path, mode)
    return 0


@program("tar")
def _tar(ctx: ProcessContext) -> int:
    """Minimal tar: ``-cf``/``-czf`` create, ``-xf``/``-xzf`` extract, ``-tf`` list.

    Archives are real POSIX tar bytes (via the layer tar codec), so they
    interoperate with anything else that reads the virtual filesystem.
    """
    from repro.oci.diff import layer_from_tree
    from repro.oci.layer import Layer, LayerEntry
    from repro.oci.apply import apply_layer
    from repro.vfs import VirtualFilesystem

    args = ctx.argv[1:]
    if not args:
        raise ProgramError("tar: you must specify one of -c, -x, -t")
    flags = args[0].lstrip("-")
    rest = args[1:]
    directory = ctx.cwd
    if "-C" in rest:
        i = rest.index("-C")
        directory = ctx.resolve(rest[i + 1])
        rest = rest[:i] + rest[i + 2:]
    if "f" not in flags or not rest:
        raise ProgramError("tar: archive file must be given with -f")
    archive, *members = rest
    archive_path = ctx.resolve(archive)

    if "c" in flags:
        staging = VirtualFilesystem()
        for member in members:
            src = vpath.join(directory, member)
            if not ctx.fs.lexists(src):
                raise ProgramError(f"tar: {member}: Cannot stat: No such file or directory")
            staging.copy_tree(src, "/" + member.lstrip("/"), source_fs=ctx.fs)
        layer = layer_from_tree(staging)
        ctx.fs.write_file(archive_path, layer.to_tar_bytes(), create_parents=True)
        return 0
    if not ctx.fs.exists(archive_path):
        raise ProgramError(f"tar: {archive}: Cannot open: No such file or directory")
    layer = Layer.from_tar_bytes(ctx.fs.read_file(archive_path))
    if "t" in flags:
        for entry in layer.entries:
            ctx.writeline(entry.path.lstrip("/"))
        return 0
    if "x" in flags:
        rebased = Layer(
            entries=[
                LayerEntry.from_json({
                    **e.to_json(),
                    "path": vpath.join(directory, e.path.lstrip("/")),
                })
                for e in layer.entries
            ]
        )
        apply_layer(ctx.fs, rebased)
        return 0
    raise ProgramError(f"tar: unsupported flags {flags!r}")


# ---------------------------------------------------------------------------
# package management
# ---------------------------------------------------------------------------

def _apt_facade(ctx: ProcessContext) -> AptFacade:
    pool = ctx.engine.repository_pool_for(ctx.container)
    return AptFacade(ctx.fs, pool)


@program("apt-get")
@program("apt")
def _apt_get(ctx: ProcessContext) -> int:
    args = [a for a in ctx.argv[1:] if a not in ("-y", "-q", "-qq", "--yes",
                                                 "--no-install-recommends")]
    if not args:
        raise ProgramError("apt-get: missing command")
    command, *rest = args
    if command == "update":
        ctx.writeline("Reading package lists... Done")
        return 0
    if command in ("install", "reinstall"):
        facade = _apt_facade(ctx)
        try:
            added = facade.install(rest)
        except Exception as exc:
            raise ProgramError(f"apt-get: {exc}")
        ctx.writeline(f"{len(added)} newly installed.")
        return 0
    if command in ("remove", "purge"):
        facade = _apt_facade(ctx)
        for name in rest:
            facade.remove(name)
        return 0
    if command in ("clean", "autoclean", "autoremove"):
        return 0
    raise ProgramError(f"apt-get: unknown command {command!r}")


@program("dpkg-query")
@program("dpkg")
def _dpkg(ctx: ProcessContext) -> int:
    db = DpkgDatabase.read_from(ctx.fs)
    args = ctx.argv[1:]
    if not args:
        raise ProgramError("dpkg: need an action option")
    if args[0] in ("-l", "--list"):
        for name in db.names():
            pkg = db.get(name)
            ctx.writeline(f"ii  {pkg.name}  {pkg.version}  {pkg.architecture}")
        return 0
    if args[0] in ("-S", "--search") and len(args) > 1:
        owner = db.owner_of(args[1])
        if owner is None:
            raise ProgramError(f"dpkg-query: no path found matching pattern {args[1]}")
        ctx.writeline(f"{owner}: {args[1]}")
        return 0
    if args[0] in ("-L", "--listfiles") and len(args) > 1:
        if args[1] not in db:
            raise ProgramError(f"dpkg-query: package '{args[1]}' is not installed")
        for path in db.file_list(args[1]):
            ctx.writeline(path)
        return 0
    raise ProgramError(f"dpkg: unsupported action {args[0]!r}")


# ---------------------------------------------------------------------------
# toolchain entry points
# ---------------------------------------------------------------------------

@program("compiler-driver")
def _compiler_driver(ctx: ProcessContext) -> int:
    meta = ctx.meta
    driver = CompilerDriver(
        toolchain_id=meta.get("toolchain", "gnu-12"),
        role=meta.get("role", "cc"),
        isa=ctx.isa,
        mpi_wrapper=bool(meta.get("mpi_wrapper", False)),
    )
    try:
        result = driver.execute(ctx.argv, ctx.fs, cwd=ctx.cwd, env=ctx.env)
    except CompilerError as exc:
        raise ProgramError(str(exc))
    if result.stdout:
        ctx.write(result.stdout if result.stdout.endswith("\n") else result.stdout + "\n")
    return 0


@program("ar")
def _ar(ctx: ProcessContext) -> int:
    try:
        out = run_ar(ctx.argv, ctx.fs, cwd=ctx.cwd)
    except ArchiverError as exc:
        raise ProgramError(str(exc))
    ctx.write(out)
    return 0


@program("ranlib")
@program("strip")
def _noop_tool(ctx: ProcessContext) -> int:
    return 0


@program("ld")
def _ld(ctx: ProcessContext) -> int:
    driver = CompilerDriver(
        toolchain_id=ctx.meta.get("toolchain", "gnu-12"), role="ld", isa=ctx.isa
    )
    try:
        driver.execute(ctx.argv, ctx.fs, cwd=ctx.cwd, env=ctx.env)
    except CompilerError as exc:
        raise ProgramError(str(exc))
    return 0


@program("make")
def _make(ctx: ProcessContext) -> int:
    raise ProgramError(
        "make: the simulation substrate uses explicit build scripts; "
        "invoke the compiler commands directly"
    )


# ---------------------------------------------------------------------------
# MPI launcher
# ---------------------------------------------------------------------------

@program("mpirun")
def _mpirun(ctx: ProcessContext) -> int:
    args = ctx.argv[1:]
    nprocs = 1
    program_argv: List[str] = []
    i = 0
    while i < len(args):
        arg = args[i]
        if arg in ("-np", "-n", "--np"):
            if i + 1 >= len(args):
                raise ProgramError(f"mpirun: {arg} requires an argument")
            try:
                nprocs = int(args[i + 1])
            except ValueError:
                raise ProgramError(f"mpirun: invalid process count {args[i + 1]!r}")
            i += 2
            continue
        if arg in ("--hostfile", "-hostfile", "--host"):
            i += 2
            continue
        program_argv = args[i:]
        break
    if not program_argv:
        raise ProgramError("mpirun: no executable specified")
    env = dict(ctx.env)
    env["SIM_NPROCS"] = str(nprocs)
    env["SIM_MPI"] = str(ctx.meta.get("mpi", "openmpi-generic"))
    env["SIM_MPI_HSN"] = "1" if ctx.meta.get("hsn") else "0"
    result = ctx.engine.exec_in(ctx.container, program_argv, env=env, cwd=ctx.cwd)
    ctx.write(result.stdout)
    if result.exit_code != 0:
        raise ProgramError(result.stderr or "mpirun: child failed")
    return 0
