"""Containerfile (Dockerfile) parsing.

Supports the subset the coMtainer workflow needs (Figure 2 / Figure 6 of
the paper): multi-stage ``FROM ... AS name``, ``RUN``, ``COPY`` (with
``--from=stage``), ``ADD``, ``WORKDIR``, ``ENV``, ``ARG``, ``LABEL``,
``ENTRYPOINT``/``CMD`` in shell or exec form, and comments/continuations.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional

_INSTRUCTION_RE = re.compile(r"^\s*([A-Za-z]+)\s+(.*)$", re.DOTALL)

SUPPORTED = {
    "FROM", "RUN", "COPY", "ADD", "WORKDIR", "ENV", "ARG", "LABEL",
    "ENTRYPOINT", "CMD", "EXPOSE", "USER", "VOLUME", "SHELL",
}


class ContainerfileError(Exception):
    pass


@dataclass
class Instruction:
    keyword: str
    value: str
    flags: Dict[str, str] = field(default_factory=dict)

    def exec_form(self) -> Optional[List[str]]:
        """Parse a JSON exec-form value (["prog", "arg"]) if present."""
        text = self.value.strip()
        if text.startswith("["):
            try:
                parsed = json.loads(text)
            except json.JSONDecodeError as exc:
                raise ContainerfileError(f"malformed exec form: {text!r}: {exc}")
            if not isinstance(parsed, list) or not all(isinstance(x, str) for x in parsed):
                raise ContainerfileError(f"exec form must be a string array: {text!r}")
            return parsed
        return None


@dataclass
class Stage:
    base_ref: str
    name: Optional[str] = None
    index: int = 0
    instructions: List[Instruction] = field(default_factory=list)

    def ref_name(self) -> str:
        return self.name if self.name is not None else str(self.index)


def _logical_lines(text: str) -> List[str]:
    lines: List[str] = []
    pending = ""
    for raw in text.split("\n"):
        stripped = raw.strip()
        if not pending and (not stripped or stripped.startswith("#")):
            continue
        line = pending + raw
        if line.rstrip().endswith("\\"):
            pending = line.rstrip()[:-1] + " "
            continue
        pending = ""
        lines.append(line.strip())
    if pending:
        lines.append(pending.strip())
    return lines


def _parse_flags(value: str) -> (Dict[str, str], str):
    """Peel leading ``--flag=value`` tokens off an instruction value."""
    flags: Dict[str, str] = {}
    rest = value
    while True:
        match = re.match(r"^--([a-z-]+)=(\S+)\s+(.*)$", rest, re.DOTALL)
        if not match:
            return flags, rest
        flags[match.group(1)] = match.group(2)
        rest = match.group(3)


def parse_containerfile(text: str) -> List[Stage]:
    """Parse a Containerfile into its build stages."""
    stages: List[Stage] = []
    current: Optional[Stage] = None
    args: Dict[str, str] = {}

    for line in _logical_lines(text):
        match = _INSTRUCTION_RE.match(line)
        if not match:
            raise ContainerfileError(f"malformed instruction: {line!r}")
        keyword = match.group(1).upper()
        value = match.group(2).strip()
        if keyword not in SUPPORTED:
            raise ContainerfileError(f"unsupported instruction: {keyword}")

        # ${ARG} substitution (build args declared before use).
        for name, default in args.items():
            value = value.replace("${" + name + "}", default).replace("$" + name, default)

        if keyword == "ARG":
            name, _, default = value.partition("=")
            args[name.strip()] = default.strip()
            continue

        if keyword == "FROM":
            flags, rest = _parse_flags(value)
            parts = rest.split()
            base = parts[0]
            name = None
            if len(parts) >= 3 and parts[1].lower() == "as":
                name = parts[2]
            elif len(parts) not in (1,):
                raise ContainerfileError(f"malformed FROM: {value!r}")
            current = Stage(base_ref=base, name=name, index=len(stages))
            stages.append(current)
            continue

        if current is None:
            raise ContainerfileError(f"{keyword} before any FROM")
        flags, rest = _parse_flags(value)
        current.instructions.append(Instruction(keyword=keyword, value=rest, flags=flags))

    if not stages:
        raise ContainerfileError("Containerfile has no FROM instruction")
    return stages


def find_stage(stages: List[Stage], target: Optional[str]) -> Stage:
    """Locate the build target stage (by name, by index, or the last one)."""
    if target is None:
        return stages[-1]
    for stage in stages:
        if stage.name == target or str(stage.index) == target:
            return stage
    raise ContainerfileError(f"build target not found: {target!r}")
