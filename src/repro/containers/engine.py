"""The container engine (buildah/podman simulacrum).

Owns an image store, creates containers, dispatches command execution to
the simulated userland, builds multi-stage Containerfiles, commits
container changes to layers, and moves images to/from OCI layouts and
registries.  It also owns the repository universe containers' ``apt``
resolves against, and the ``binary_runner`` hook through which the perf
layer executes simulated application binaries.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from repro import simbin
from repro.containers import programs as prog
from repro.containers.container import (
    Container,
    ProcessContext,
    ProgramError,
    RunResult,
)
from repro.containers.dockerfile import (
    ContainerfileError,
    Stage,
    find_stage,
    parse_containerfile,
)
from repro.containers.hijack import record_trace
from repro.oci.diff import diff_filesystems
from repro.oci.image import ImageConfig, Manifest
from repro.oci.layer import Layer
from repro.oci.layout import OCILayout
from repro.oci.registry import ImageRegistry
from repro.pkg.repository import Repository, RepositoryPool
from repro.telemetry import NULL_TELEMETRY
from repro.toolchain.artifacts import ExecutableArtifact, try_read_artifact
from repro.vfs import RegularFile, VirtualFilesystem
from repro.vfs import paths as vpath


class EngineError(Exception):
    pass


#: Upper bound on retained :attr:`ContainerEngine.exec_log` entries.  A
#: :class:`ComtainerSession` dispatches thousands of commands across its
#: many containers; only the most recent window is ever inspected (the
#: chaos suite's journal-resume assertions), so the log is a bounded
#: deque — older entries fall off instead of growing without bound.
EXEC_LOG_CAP = 4096


@dataclass
class StoredImage:
    """An image in the engine's local store."""

    config: ImageConfig
    layers: List[Layer] = field(default_factory=list)

    def layer_key(self) -> tuple:
        return tuple(layer.digest for layer in self.layers)


BinaryRunner = Callable[[ProcessContext, str, ExecutableArtifact], RunResult]


class ContainerEngine:
    """One engine per (virtual) machine; ``arch`` is the machine's arch."""

    def __init__(self, arch: str = "amd64") -> None:
        self.arch = arch
        self.images: Dict[str, StoredImage] = {}
        self.containers: Dict[str, Container] = {}
        self.repos: Dict[str, Repository] = {}
        self.binary_runner: Optional[BinaryRunner] = None
        self._fs_cache: Dict[tuple, VirtualFilesystem] = {}
        self._ids = itertools.count(1)
        #: Optional :class:`repro.resilience.faults.FaultInjector`; armed at
        #: the top of :meth:`run` so chaos tests can crash container entry.
        self.fault_injector = None
        #: Optional :class:`repro.resilience.degrade.ResilienceContext`;
        #: read by ``coMtainer-rebuild`` for per-node retry and journaling.
        self.resilience = None
        #: Telemetry sink (:class:`repro.telemetry.Telemetry`); the no-op
        #: default records nothing and keeps untraced runs byte-identical.
        self.telemetry = NULL_TELEMETRY
        #: The most recent (container name, argv) pairs dispatched through
        #: :meth:`exec_in` — the command log the journal-resume tests
        #: inspect to prove completed compile nodes are not re-executed.
        #: Bounded at :data:`EXEC_LOG_CAP` entries; use :meth:`reset_exec_log`
        #: to start a fresh observation window.
        self.exec_log: Deque[Tuple[str, Tuple[str, ...]]] = deque(maxlen=EXEC_LOG_CAP)

    def reset_exec_log(self) -> None:
        """Clear the command log (the chaos suite calls this between runs)."""
        self.exec_log.clear()

    # ------------------------------------------------------------------
    # repositories
    # ------------------------------------------------------------------

    def register_repository(self, repository: Repository) -> None:
        self.repos[repository.name] = repository

    def repository_pool_for(self, container: Container) -> RepositoryPool:
        """Repositories a container's apt sees, from its sources.list."""
        sources = "/etc/apt/sources.list"
        names: List[str] = []
        if container.fs.exists(sources):
            for line in container.fs.read_text(sources).splitlines():
                line = line.strip()
                if line.startswith("repo "):
                    names.append(line.split(None, 1)[1])
        if not names:
            names = [
                name
                for name, repo in sorted(self.repos.items())
                if repo.architecture == container.arch
            ]
        pool = RepositoryPool()
        for name in names:
            if name in self.repos:
                pool.add_repository(self.repos[name])
        return pool

    # ------------------------------------------------------------------
    # image store
    # ------------------------------------------------------------------

    def add_image(self, ref: str, config: ImageConfig, layers: List[Layer]) -> None:
        self.images[ref] = StoredImage(config=config.clone(), layers=list(layers))

    def tag(self, src_ref: str, dst_ref: str) -> None:
        self.images[dst_ref] = self.image(src_ref)

    def has_image(self, ref: str) -> bool:
        return ref in self.images or ref == "scratch"

    def image(self, ref: str) -> StoredImage:
        if ref == "scratch":
            return StoredImage(config=ImageConfig(architecture=self.arch))
        try:
            return self.images[ref]
        except KeyError:
            raise EngineError(f"image not found: {ref!r}") from None

    def image_filesystem(self, ref: str) -> VirtualFilesystem:
        """Flattened filesystem of an image (returns a private clone)."""
        stored = self.image(ref)
        key = stored.layer_key()
        cached = self._fs_cache.get(key)
        if cached is None:
            from repro.oci.apply import flatten_layers

            cached = flatten_layers(stored.layers)
            self._fs_cache[key] = cached
            if self.telemetry.enabled:
                self.telemetry.metrics.counter("engine_fs_cache_misses_total").inc()
        elif self.telemetry.enabled:
            self.telemetry.metrics.counter("engine_fs_cache_hits_total").inc()
        return cached.clone()

    # ------------------------------------------------------------------
    # containers
    # ------------------------------------------------------------------

    def from_image(
        self,
        ref: str,
        name: Optional[str] = None,
        mounts: Optional[Dict[str, Any]] = None,
    ) -> Container:
        stored = self.image(ref)
        fs = self.image_filesystem(ref)
        container = Container(
            id=f"ctr{next(self._ids)}",
            name=name or f"ctr{len(self.containers) + 1}",
            image_ref=ref,
            arch=stored.config.architecture,
            fs=fs,
            base_fs=fs.clone(),
            config=stored.config.clone(),
            mounts={vpath.normalize(k): v for k, v in (mounts or {}).items()},
        )
        self.containers[container.name] = container
        return container

    def remove_container(self, name: str) -> None:
        self.containers.pop(name, None)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------

    def run(
        self,
        container: Container,
        argv: List[str],
        env: Optional[Dict[str, str]] = None,
        cwd: Optional[str] = None,
    ) -> RunResult:
        tele = self.telemetry
        if not tele.enabled:
            if self.fault_injector is not None and argv:
                self.fault_injector.arm("container.run", argv[0])
            merged = container.environment()
            merged.update(env or {})
            return self.exec_in(container, argv, env=merged,
                                cwd=cwd or container.config.working_dir or "/")
        with tele.span(
            "container.run",
            container=container.name,
            command=argv[0] if argv else "",
        ) as span:
            if self.fault_injector is not None and argv:
                self.fault_injector.arm("container.run", argv[0])
            merged = container.environment()
            merged.update(env or {})
            result = self.exec_in(container, argv, env=merged,
                                  cwd=cwd or container.config.working_dir or "/")
            span.set("exit_code", result.exit_code)
            if not result.ok:
                span.status = "error"
            return result

    def run_image(
        self,
        ref: str,
        argv: Optional[List[str]] = None,
        env: Optional[Dict[str, str]] = None,
    ) -> RunResult:
        """``podman run --rm <ref> [argv...]`` semantics.

        Executes the image's ENTRYPOINT (+ CMD or the given argv) in a
        fresh throwaway container.
        """
        stored = self.image(ref)
        command = list(stored.config.entrypoint)
        command += list(argv) if argv else list(stored.config.cmd)
        if not command:
            return RunResult(exit_code=125,
                             stderr=f"run: image {ref!r} has no command")
        container = self.from_image(ref, name=f"run-{next(self._ids)}")
        try:
            return self.run(container, command, env=env)
        finally:
            self.remove_container(container.name)

    def exec_in(
        self,
        container: Container,
        argv: List[str],
        env: Dict[str, str],
        cwd: str,
    ) -> RunResult:
        """The dispatcher: resolve argv[0] in the container and execute it."""
        if not argv:
            return RunResult(exit_code=0)
        self.exec_log.append((container.name, tuple(argv)))
        if self.telemetry.enabled:
            self.telemetry.metrics.counter("engine_commands_total").inc()
        path = self._resolve_program(container, argv[0], env, cwd)
        if path is None:
            return RunResult(
                exit_code=127, stderr=f"sh: {argv[0]}: command not found"
            )
        node = container.fs.try_get_node(path)
        if not isinstance(node, RegularFile):
            return RunResult(exit_code=126, stderr=f"sh: {argv[0]}: cannot execute")
        data = node.content.read()

        marker = simbin.read_program_marker(data)
        if marker is not None and marker.get("program") == "hijack":
            forward = marker.get("forward", {})
            record_trace(container.fs, argv, env, cwd, forward)
            marker = forward

        if marker is not None:
            name = marker["program"]
            meta = {k: v for k, v in marker.items() if k != "program"}
            if not prog.has_program(name):
                return RunResult(
                    exit_code=127, stderr=f"{argv[0]}: unknown program {name!r}"
                )
            ctx = ProcessContext(
                engine=self, container=container, argv=argv, env=env, cwd=cwd, meta=meta
            )
            try:
                code = prog.get_program(name)(ctx)
            except ProgramError as exc:
                return RunResult(exit_code=1, stdout=ctx.stdout(), stderr=str(exc))
            return RunResult(exit_code=code, stdout=ctx.stdout())

        artifact = try_read_artifact(data)
        if isinstance(artifact, ExecutableArtifact):
            ctx = ProcessContext(
                engine=self, container=container, argv=argv, env=env, cwd=cwd
            )
            if self.binary_runner is not None:
                return self.binary_runner(ctx, path, artifact)
            return RunResult(stdout=f"[simulated execution: {path}]\n")

        if data.startswith(b"#!"):
            from repro.containers.shell import Shell

            script = data.decode("utf-8", errors="replace").split("\n", 1)
            body = script[1] if len(script) > 1 else ""
            return Shell(self, container).run_script(body, env=env, cwd=cwd)

        return RunResult(
            exit_code=126, stderr=f"sh: {argv[0]}: cannot execute binary file"
        )

    def _resolve_program(
        self, container: Container, name: str, env: Dict[str, str], cwd: str
    ) -> Optional[str]:
        fs = container.fs
        if "/" in name:
            path = vpath.join(cwd, name)
            return path if fs.is_file(path) else None
        for directory in env.get("PATH", "").split(":"):
            if not directory:
                continue
            candidate = vpath.join(directory, name)
            if fs.is_file(candidate):
                return candidate
        return None

    # ------------------------------------------------------------------
    # commit & transport
    # ------------------------------------------------------------------

    def commit(
        self,
        container: Container,
        ref: Optional[str] = None,
        comment: str = "",
    ) -> StoredImage:
        """Capture the container's changes as a new layer atop its image."""
        tele = self.telemetry
        span = tele.start_span(
            "engine.commit", container=container.name, ref=ref or ""
        ) if tele.enabled else None
        try:
            base = self.image(container.image_ref)
            layer = diff_filesystems(container.base_fs, container.fs, comment=comment)
            config = container.config.clone()
            layers = list(base.layers)
            if len(layer):
                layers.append(layer)
                config.diff_ids.append(layer.digest)
                config.add_history(comment or f"commit {container.name}")
            stored = StoredImage(config=config, layers=layers)
            if ref is not None:
                self.images[ref] = stored
            if span is not None:
                span.set("layer_entries", len(layer))
                span.set("layer_bytes", layer.size if len(layer) else 0)
                m = tele.metrics
                m.counter("engine_commits_total").inc()
                if len(layer):
                    m.counter("engine_layer_bytes_total").inc(layer.size)
            return stored
        finally:
            if span is not None:
                tele.end_span(span)

    def push_to_layout(
        self, ref: str, layout: OCILayout, tag: Optional[str] = None
    ) -> Manifest:
        stored = self.image(ref)
        manifest = self._manifest_for(stored)
        layout.add_manifest(manifest, stored.config, stored.layers, tag=tag or ref)
        return manifest

    def load_from_layout(
        self, layout: OCILayout, tag: str, ref: Optional[str] = None
    ) -> str:
        resolved = layout.resolve(tag)
        target = ref or tag
        self.add_image(target, resolved.config, resolved.layers)
        return target

    def push_to_registry(
        self, ref: str, registry: ImageRegistry, reference: Optional[str] = None
    ) -> str:
        stored = self.image(ref)
        manifest = self._manifest_for(stored)
        return registry.push(reference or ref, manifest, stored.config, stored.layers)

    def load_from_registry(
        self, registry: ImageRegistry, reference: str, ref: Optional[str] = None
    ) -> str:
        resolved = registry.pull(reference)
        target = ref or reference
        self.add_image(target, resolved.config, resolved.layers)
        return target

    def _manifest_for(self, stored: StoredImage) -> Manifest:
        from repro.oci.blobs import Blob

        return Manifest(
            config=stored.config.descriptor(),
            layers=[Blob.from_layer(layer).descriptor() for layer in stored.layers],
        )

    # ------------------------------------------------------------------
    # Containerfile builds
    # ------------------------------------------------------------------

    def build(
        self,
        containerfile: str,
        context: Optional[VirtualFilesystem] = None,
        target: Optional[str] = None,
        tag: Optional[str] = None,
    ) -> str:
        """Build a (possibly multi-stage) Containerfile; returns the image ref."""
        stages = parse_containerfile(containerfile)
        target_stage = find_stage(stages, target)
        context = context or VirtualFilesystem()
        stage_refs: Dict[str, str] = {}

        for stage in stages[: target_stage.index + 1]:
            ref = self._build_stage(stage, context, stage_refs)
            stage_refs[stage.ref_name()] = ref
            stage_refs[str(stage.index)] = ref

        final_ref = stage_refs[target_stage.ref_name()]
        if tag is not None:
            self.tag(final_ref, tag)
            return tag
        return final_ref

    def build_stages(
        self,
        containerfile: str,
        context: Optional[VirtualFilesystem] = None,
    ) -> Dict[str, str]:
        """Build every stage once; returns stage name -> image ref."""
        stages = parse_containerfile(containerfile)
        context = context or VirtualFilesystem()
        stage_refs: Dict[str, str] = {}
        out: Dict[str, str] = {}
        for stage in stages:
            ref = self._build_stage(stage, context, stage_refs)
            stage_refs[stage.ref_name()] = ref
            stage_refs[str(stage.index)] = ref
            out[stage.ref_name()] = ref
        return out

    def _build_stage(
        self, stage: Stage, context: VirtualFilesystem, stage_refs: Dict[str, str]
    ) -> str:
        base_ref = stage_refs.get(stage.base_ref, stage.base_ref)
        if not self.has_image(base_ref):
            raise EngineError(f"base image not found: {stage.base_ref!r}")
        container = self.from_image(base_ref, name=f"build-{stage.ref_name()}-{next(self._ids)}")
        try:
            for instruction in stage.instructions:
                self._apply_instruction(container, instruction, context, stage_refs)
        finally:
            self.remove_container(container.name)
        ref = f"__stage__:{stage.ref_name()}:{next(self._ids)}"
        self.commit(container, ref=ref, comment=f"stage {stage.ref_name()}")
        return ref

    def _apply_instruction(
        self,
        container: Container,
        instruction,
        context: VirtualFilesystem,
        stage_refs: Dict[str, str],
    ) -> None:
        keyword = instruction.keyword
        if keyword == "RUN":
            self._instr_run(container, instruction)
        elif keyword in ("COPY", "ADD"):
            self._instr_copy(container, instruction, context, stage_refs)
        elif keyword == "WORKDIR":
            path = vpath.join(container.config.working_dir or "/", instruction.value)
            container.fs.makedirs(path)
            container.config.working_dir = path
        elif keyword == "ENV":
            for key, value in _parse_kv(instruction.value).items():
                container.config.env = [
                    e for e in container.config.env if not e.startswith(key + "=")
                ]
                container.config.env.append(f"{key}={value}")
        elif keyword == "LABEL":
            container.config.labels.update(_parse_kv(instruction.value))
        elif keyword == "ENTRYPOINT":
            container.config.entrypoint = (
                instruction.exec_form() or ["/bin/sh", "-c", instruction.value]
            )
        elif keyword == "CMD":
            container.config.cmd = (
                instruction.exec_form() or ["/bin/sh", "-c", instruction.value]
            )
        # EXPOSE / USER / VOLUME / SHELL are accepted and ignored.

    def _instr_run(self, container: Container, instruction) -> None:
        from repro.containers.shell import Shell

        exec_form = instruction.exec_form()
        if exec_form is not None:
            result = self.run(container, exec_form)
        else:
            result = Shell(self, container).run_script(
                instruction.value,
                env=container.environment(),
                cwd=container.config.working_dir or "/",
            )
        if not result.ok:
            raise EngineError(
                f"RUN {instruction.value!r} failed ({result.exit_code}): {result.stderr}"
            )

    def _instr_copy(
        self,
        container: Container,
        instruction,
        context: VirtualFilesystem,
        stage_refs: Dict[str, str],
    ) -> None:
        source_fs = context
        from_ref = instruction.flags.get("from")
        if from_ref is not None:
            resolved = stage_refs.get(from_ref, from_ref)
            source_fs = self.image_filesystem(resolved)
        parts = instruction.value.split()
        if len(parts) < 2:
            raise ContainerfileError(f"COPY needs source(s) and destination: {instruction.value!r}")
        *sources, dst = parts
        dst_abs = vpath.join(container.config.working_dir or "/", dst)
        multiple = len(sources) > 1 or dst.endswith("/")
        for src in sources:
            src_abs = vpath.join("/", src)
            if not source_fs.lexists(src_abs):
                raise EngineError(f"COPY source not found: {src!r}")
            if multiple or (container.fs.is_dir(dst_abs) and not source_fs.is_dir(src_abs)):
                target = vpath.join(dst_abs, vpath.basename(src_abs))
            else:
                target = dst_abs
            container.fs.copy_tree(src_abs, target, source_fs=source_fs)


def _parse_kv(value: str) -> Dict[str, str]:
    """Parse ``K=V K2=V2`` (or legacy ``K V``) instruction values."""
    out: Dict[str, str] = {}
    tokens = value.split()
    if not tokens:
        return out
    if "=" not in tokens[0]:
        parts = value.split(None, 1)
        if len(parts) == 2:
            out[parts[0]] = parts[1]
        return out
    for token in tokens:
        if "=" in token:
            key, _, val = token.partition("=")
            out[key] = val.strip('"')
    return out
