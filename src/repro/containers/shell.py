"""Shell script execution inside containers.

Executes scripts statement by statement with ``&&``/``||``/``;``
semantics, variable assignment, ``cd``/``export``/``exit`` builtins,
glob expansion against the virtual filesystem, and minimal output
redirection.  A failing command aborts the script (``set -e``
semantics) — which is what container build steps want.
"""

from __future__ import annotations

import fnmatch
from typing import Dict, List, Optional, Tuple

from repro import shellparse
from repro.containers.container import Container, ProgramError, RunResult
from repro.vfs import paths as vpath


class Shell:
    def __init__(self, engine, container: Container) -> None:
        self.engine = engine
        self.container = container

    # ------------------------------------------------------------------

    def run_script(
        self,
        script: str,
        env: Optional[Dict[str, str]] = None,
        cwd: str = "/",
    ) -> RunResult:
        env = dict(env if env is not None else self.container.environment())
        state = _ShellState(env=env, cwd=cwd)
        stdout_parts: List[str] = []
        last = RunResult()
        for statement in shellparse.split_statements(script):
            try:
                groups = shellparse.parse_statement_lazy(statement)
            except shellparse.ShellSyntaxError as exc:
                return RunResult(exit_code=2, stdout="".join(stdout_parts),
                                 stderr=f"sh: {exc}")
            previous_ok = True
            first = True
            for connector, tokens in groups:
                if not first:
                    if connector == shellparse.OP_AND and not previous_ok:
                        continue
                    if connector == shellparse.OP_OR and previous_ok:
                        continue
                first = False
                last = self._run_simple(tokens, state)
                stdout_parts.append(last.stdout)
                previous_ok = last.ok
                if state.exited:
                    return RunResult(exit_code=state.exit_code,
                                     stdout="".join(stdout_parts),
                                     stderr=last.stderr)
            # set -e semantics between statements.
            if not last.ok:
                return RunResult(exit_code=last.exit_code,
                                 stdout="".join(stdout_parts), stderr=last.stderr)
        return RunResult(exit_code=last.exit_code, stdout="".join(stdout_parts),
                         stderr=last.stderr)

    # ------------------------------------------------------------------

    def _run_simple(
        self, tokens: List[shellparse.WordToken], state: "_ShellState"
    ) -> RunResult:
        try:
            argv, redirect = self._expand(tokens, state)
        except shellparse.ShellSyntaxError as exc:
            return RunResult(exit_code=2, stderr=f"sh: {exc}")
        if not argv:
            return RunResult()

        # Leading VAR=value assignments.
        assignments: List[Tuple[str, str]] = []
        while argv and _is_assignment(argv[0]):
            name, _, value = argv[0].partition("=")
            assignments.append((name, value))
            argv = argv[1:]
        if not argv:
            for name, value in assignments:
                state.env[name] = value
            return RunResult()

        command = argv[0]
        if command == "cd":
            return self._builtin_cd(argv, state)
        if command == "export":
            for item in argv[1:]:
                if "=" in item:
                    name, _, value = item.partition("=")
                    state.env[name] = value
            return RunResult()
        if command == "set":
            return RunResult()  # set -e is already the default behaviour
        if command == "exit":
            state.exited = True
            try:
                state.exit_code = int(argv[1]) if len(argv) > 1 else 0
            except ValueError:
                state.exit_code = 2
            return RunResult(exit_code=state.exit_code)
        if command == "unset":
            for name in argv[1:]:
                state.env.pop(name, None)
            return RunResult()
        if command in (":", "true"):
            return RunResult()

        env = dict(state.env)
        env.update(assignments)
        result = self.engine.exec_in(self.container, argv, env=env, cwd=state.cwd)
        return self._apply_redirect(result, redirect, state)

    # ------------------------------------------------------------------

    def _expand(
        self, tokens: List[shellparse.WordToken], state: "_ShellState"
    ) -> Tuple[List[str], Optional[Tuple[str, str]]]:
        """Expand variables/globs and peel off output redirection."""
        expanded = [token.expanded(state.env) for token in tokens]
        words: List[str] = []
        redirect: Optional[Tuple[str, str]] = None
        i = 0
        while i < len(expanded):
            text, may_glob = expanded[i]
            if text in (">", ">>") and i + 1 < len(expanded):
                redirect = (text, expanded[i + 1][0])
                i += 2
                continue
            if text.startswith((">", ">>")) and len(text) > 1 and not may_glob:
                op = ">>" if text.startswith(">>") else ">"
                redirect = (op, text[len(op):])
                i += 1
                continue
            if text in ("2>/dev/null", "2>&1", "&>/dev/null"):
                i += 1
                continue
            if may_glob:
                matches = self._glob(text, state.cwd)
                words.extend(matches if matches else [text])
            else:
                words.append(text)
            i += 1
        return words, redirect

    def _glob(self, pattern: str, cwd: str) -> List[str]:
        fs = self.container.fs
        directory, _, name_pattern = vpath.join(cwd, pattern).rpartition("/")
        directory = directory or "/"
        if any(c in directory for c in "*?"):
            return []  # directory-component globs unsupported
        if not fs.is_dir(directory):
            return []
        matches = sorted(
            name for name in fs.listdir(directory)
            if fnmatch.fnmatchcase(name, name_pattern)
        )
        if pattern.startswith("/") or "/" in pattern:
            prefix = pattern.rpartition("/")[0]
            return [f"{prefix}/{m}" for m in matches]
        return matches

    def _apply_redirect(
        self,
        result: RunResult,
        redirect: Optional[Tuple[str, str]],
        state: "_ShellState",
    ) -> RunResult:
        if redirect is None or not result.ok:
            return result
        op, target = redirect
        path = vpath.join(state.cwd, target)
        data = result.stdout.encode("utf-8")
        if op == ">>" and self.container.fs.exists(path):
            data = self.container.fs.read_file(path) + data
        self.container.fs.write_file(path, data, create_parents=True)
        return RunResult(exit_code=result.exit_code, stdout="", stderr=result.stderr)

    def _builtin_cd(self, argv: List[str], state: "_ShellState") -> RunResult:
        target = argv[1] if len(argv) > 1 else state.env.get("HOME", "/")
        path = vpath.join(state.cwd, target)
        if not self.container.fs.is_dir(path):
            return RunResult(exit_code=1, stderr=f"cd: {target}: No such file or directory")
        state.cwd = path
        state.env["PWD"] = path
        return RunResult()


class _ShellState:
    __slots__ = ("env", "cwd", "exited", "exit_code")

    def __init__(self, env: Dict[str, str], cwd: str) -> None:
        self.env = env
        self.cwd = cwd
        self.exited = False
        self.exit_code = 0


def _is_assignment(word: str) -> bool:
    if "=" not in word:
        return False
    name = word.split("=", 1)[0]
    return bool(name) and (name[0].isalpha() or name[0] == "_") and all(
        c.isalnum() or c == "_" for c in name
    )
