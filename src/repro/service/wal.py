"""The service write-ahead log: crash-consistent request accounting.

The :class:`~repro.service.service.AdaptationService` is a long-lived
server, and a long-lived server must survive its own death.  The WAL is
the durability mechanism: every service-level state transition — a
tenant registration, an arrival, an admission (with the shed level it
was granted), a displacement, a dispatch, a circuit-breaker transition,
a shared-cache absorb, a mirror sync, and above all every **terminal
status** — is appended as one self-contained JSONL line *before* the
in-memory state is trusted.  A restart replays the salvaged log against
the durable stores (the origin registry, the mounted tenant layouts)
and reconstructs queue order, token buckets, breaker states and the set
of in-flight requests; in-flight rebuilds then resume through their
per-request rebuild journals, so nothing checkpointed re-executes.

Serialized form follows the same torn-line-salvage discipline as the v2
rebuild journal and the mirror transfer ledger — one header line plus
one line per record::

    {"kind": "service-wal", "version": 1, "seed": 7}
    {"rec": "admit", "t": 12.5, "request_id": "acme/r3", ...,
     "line_digest": "sha256:..."}
    ...

A torn or bit-flipped write damages *lines*, not the document:
:meth:`ServiceWAL.from_bytes` salvages every line that decodes, parses,
validates structurally **and** re-hashes to its recorded
``line_digest`` (a flipped bit inside a field value survives the JSON
parse, so content is only trusted when it hashes to what was appended),
counting the rest in :attr:`ServiceWAL.torn_records_dropped`.  A record
that was mid-append at the crash is simply a torn last line; a dropped
terminal record leaves its request non-terminal, so the restart re-runs
it — and because the request's durable effects (the rebuild journal and
``+coMre`` manifest in the mounted layout) landed before the terminal
record, the re-run executes zero checkpointed nodes and produces the
same bytes.  That is how the service holds its core invariant: **every
admitted request ends in exactly one typed terminal status across any
number of crashes**.

WAL appends ride the existing ``journal.append`` corruption site (the
WAL *is* a journal), keyed ``service-wal`` so scripted corruptions can
target it.

Crash simulation: a :class:`ServiceCrash` is raised from inside a
configured append (``crash_after_records``) or timeline advance
(``crash_at``), optionally tearing the record being appended.  It
derives from ``BaseException`` on purpose — a simulated process death
must not be absorbed by the service's own ``except Exception``
degradation paths (a real ``kill -9`` does not negotiate with error
handlers).
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from repro.oci.digest import digest_bytes

WAL_VERSION = 1

#: Record kinds the salvage accepts.
RECORD_KINDS = frozenset({
    "tenant", "mirror", "submit", "admit", "park", "dispatch",
    "breaker", "absorb", "sync", "terminal", "restart", "failover",
})

#: The ``journal.append`` corruption-site key WAL flushes ride.
WAL_SITE_KEY = "service-wal"


class ServiceCrash(BaseException):
    """Simulated hard process death of the adaptation service.

    Deliberately *not* an ``Exception``: the crash must propagate
    through every ``except Exception`` degradation path in the service
    (breaker fallbacks, ladder rungs) exactly as a SIGKILL would.  Only
    the WAL's flushed bytes and the durable stores survive it.
    """

    def __init__(self, records_flushed: int, torn: bool) -> None:
        self.records_flushed = records_flushed
        self.torn = torn
        super().__init__(
            f"simulated service crash after {records_flushed} WAL record(s)"
            + (" (last record torn)" if torn else "")
        )


def _line_digest(record: dict) -> str:
    """Content digest of one record, excluding the digest field itself."""
    body = {k: v for k, v in record.items() if k != "line_digest"}
    return digest_bytes(json.dumps(body, sort_keys=True).encode("utf-8"))


def _valid_record(record: object) -> bool:
    """Structural check for one WAL line before trusting it."""
    if not isinstance(record, dict):
        return False
    if record.get("rec") not in RECORD_KINDS:
        return False
    t = record.get("t")
    if not isinstance(t, (int, float)) or t < 0:
        return False
    digest = record.get("line_digest")
    if not isinstance(digest, str):
        return False
    return _line_digest(record) == digest


class ServiceWAL:
    """Append-only JSONL log of service state transitions.

    The in-memory :attr:`records` list and the flushed byte buffer move
    in lockstep: :meth:`append` serializes, (optionally) passes the line
    through the ``journal.append`` corruption site, extends the buffer,
    and only then returns — the buffer *is* the durable artifact a
    crash leaves behind.
    """

    def __init__(
        self,
        seed: int = 0,
        injector=None,
        crash_after_records: Optional[int] = None,
        crash_torn: bool = True,
    ) -> None:
        self.seed = seed
        self.injector = injector
        #: Crash simulation: raise :class:`ServiceCrash` while appending
        #: the N-th record from now (1-based); ``crash_torn`` flushes
        #: only a prefix of that record's line, as a real torn write
        #: would.
        self.crash_after_records = crash_after_records
        self.crash_torn = crash_torn
        self.records: List[dict] = []
        #: Lines dropped by the last :meth:`from_bytes` salvage.
        self.torn_records_dropped = 0
        #: Restart records seen (how many crashes this log has survived).
        self.restarts = 0
        self._buf = bytearray()
        self._appended = 0
        self._write_header()

    # -- writing -----------------------------------------------------------

    def _write_header(self) -> None:
        header = json.dumps(
            {"kind": "service-wal", "version": WAL_VERSION, "seed": self.seed},
            sort_keys=True,
        )
        self._buf.extend(header.encode("utf-8") + b"\n")

    def _flush_line(self, line: bytes) -> None:
        inj = self.injector
        if inj is not None and inj.corrupting("journal.append"):
            line = inj.corrupt("journal.append", WAL_SITE_KEY, line)
        self._buf.extend(line)

    def append(self, record: dict) -> dict:
        """Durably append one record (adds ``line_digest``); honours the
        crash trigger — the configured append flushes a (possibly torn)
        line and then raises :class:`ServiceCrash`."""
        record = dict(record)
        record["line_digest"] = _line_digest(record)
        line = (json.dumps(record, sort_keys=True) + "\n").encode("utf-8")
        self._appended += 1
        if (self.crash_after_records is not None
                and self._appended >= self.crash_after_records):
            if self.crash_torn:
                # A torn write: a prefix of the line reaches the log.
                self._flush_line(line[: max(1, len(line) // 2)])
            else:
                self._flush_line(line)
                self.records.append(record)
            raise ServiceCrash(len(self.records), torn=self.crash_torn)
        self._flush_line(line)
        self.records.append(record)
        return record

    @property
    def flushed_bytes(self) -> bytes:
        """What would be on disk right now (survives a crash)."""
        return bytes(self._buf)

    def __len__(self) -> int:
        return len(self.records)

    # -- queries -----------------------------------------------------------

    def by_kind(self, kind: str) -> List[dict]:
        return [r for r in self.records if r.get("rec") == kind]

    def terminal_counts(self) -> Dict[str, int]:
        """request_id -> number of terminal records (the invariant says
        this is exactly 1 for every admitted request, eventually)."""
        counts: Dict[str, int] = {}
        for record in self.by_kind("terminal"):
            rid = record.get("request_id", "")
            counts[rid] = counts.get(rid, 0) + 1
        return counts

    def open_request_ids(self) -> List[str]:
        """Admitted (or dispatched) requests with no terminal record yet
        — the service's recovery exposure ("WAL lag")."""
        terminal = set(self.terminal_counts())
        seen: List[str] = []
        for record in self.records:
            if record.get("rec") not in ("admit", "dispatch"):
                continue
            rid = record.get("request_id", "")
            if rid and rid not in terminal and rid not in seen:
                seen.append(rid)
        return seen

    def open_request_count(self) -> int:
        return len(self.open_request_ids())

    def stats(self) -> dict:
        kinds: Dict[str, int] = {}
        for record in self.records:
            kind = record.get("rec", "?")
            kinds[kind] = kinds.get(kind, 0) + 1
        return {
            "records": len(self.records),
            "bytes": len(self._buf),
            "torn_records_dropped": self.torn_records_dropped,
            "restarts": self.restarts,
            "open_requests": self.open_request_count(),
            "by_kind": kinds,
        }

    # -- salvage -----------------------------------------------------------

    @classmethod
    def from_bytes(
        cls,
        data: bytes,
        injector=None,
        crash_after_records: Optional[int] = None,
        crash_torn: bool = True,
    ) -> "ServiceWAL":
        """Salvage a WAL from its flushed bytes, line by line.

        Never raises: a truncated header yields an empty-but-valid log,
        a torn or flipped record line is dropped and counted, and a
        record whose content does not re-hash to its ``line_digest`` is
        treated as torn (never resurrected with altered fields).
        """
        wal = cls(injector=injector,
                  crash_after_records=crash_after_records,
                  crash_torn=crash_torn)
        wal._buf = bytearray()
        lines = data.split(b"\n")
        start = 0
        seed = 0
        try:
            header = json.loads(lines[0].decode("utf-8"))
            if not (isinstance(header, dict)
                    and header.get("kind") == "service-wal"):
                wal.torn_records_dropped += 1
            elif isinstance(header.get("seed"), int):
                seed = header["seed"]
            start = 1
        except (IndexError, UnicodeDecodeError, json.JSONDecodeError):
            wal.torn_records_dropped += 1
            start = 1
        wal.seed = seed
        wal._write_header()
        for raw in lines[start:]:
            if not raw.strip(b" \t\r\x00"):
                continue
            try:
                record = json.loads(raw.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError):
                wal.torn_records_dropped += 1
                continue
            if not _valid_record(record):
                wal.torn_records_dropped += 1
                continue
            wal.records.append(record)
            wal._buf.extend(raw + b"\n")
            if record.get("rec") == "restart":
                wal.restarts += 1
        wal._appended = len(wal.records)
        return wal


__all__ = [
    "RECORD_KINDS",
    "WAL_SITE_KEY",
    "WAL_VERSION",
    "ServiceCrash",
    "ServiceWAL",
]
