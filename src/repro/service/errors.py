"""Typed errors of the multi-tenant adaptation service.

Everything a caller can hit is typed and carries enough structure to
react programmatically: overload rejections quote a ``retry_after``
(simulated seconds until capacity is plausibly available), circuit
rejections quote the dependency and when its breaker will half-open.
String matching is never required.
"""

from __future__ import annotations

from typing import Optional


class ServiceError(Exception):
    """Base class for adaptation-service errors."""


class ServiceOverloadError(ServiceError):
    """An admission rejection: the service is shedding this request.

    ``reason`` is one of the admission layer's stable labels
    (``queue-full``, ``rate-limited``, ``displaced``); ``retry_after``
    is the simulated-seconds hint after which resubmission is expected
    to be admitted.
    """

    def __init__(self, tenant: str, reason: str,
                 retry_after: float = 0.0) -> None:
        self.tenant = tenant
        self.reason = reason
        self.retry_after = float(retry_after)
        super().__init__(
            f"service overloaded for tenant {tenant!r}: {reason} "
            f"(retry after {self.retry_after:.1f}s)"
        )


class CircuitOpenError(ServiceError):
    """A shared dependency's circuit breaker is open (fail-fast).

    Raised instead of attempting the call; ``retry_after`` is when the
    breaker moves to half-open and will admit a probe.
    """

    def __init__(self, dependency: str, retry_after: float = 0.0,
                 detail: Optional[str] = None) -> None:
        self.dependency = dependency
        self.retry_after = float(retry_after)
        message = (
            f"circuit open for dependency {dependency!r} "
            f"(half-open in {self.retry_after:.1f}s)"
        )
        if detail:
            message += f": {detail}"
        super().__init__(message)


__all__ = ["CircuitOpenError", "ServiceError", "ServiceOverloadError"]
