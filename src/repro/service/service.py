"""The multi-tenant adaptation service: one shared system side, many users.

An HPC centre runs *one* adaptation pipeline and every research group
(tenant) submits extended images to it.  :class:`AdaptationService`
wraps the single-session workflow of :mod:`repro.core.workflow` in the
server-side machinery such a deployment needs, all on a **pure
timeline**: a discrete-event loop over one
:class:`~repro.resilience.retry.SimulatedClock`, zero wall-clock
anywhere, deterministic under a seed.  Faults and load reshape *when*
things finish, never *what bytes* they produce — the same invariant the
rest of the reproduction holds.

The moving parts, each its own module:

* admission (:mod:`repro.service.admission`) — bounded queue, priority
  classes, weighted-fair queuing across tenants, token-bucket rate
  limits, watermark-based load shedding down the degradation ladder
  (full -> redirect-only -> generic) and displacement before a typed
  :class:`~repro.service.errors.ServiceOverloadError`.
* bulkheads — per-tenant caps on concurrent rebuild fleet workers plus
  a global worker pool: a tenant can exhaust its own compartment, never
  the ship.
* circuit breakers (:mod:`repro.service.breaker`) — around the origin
  registry, the worker fleet and the federation mirrors; an open
  breaker routes around the dependency (local-replica transfer,
  redirect-only adaptation, skipped mirror sync) instead of queueing
  behind it.
* deadlines — a request's remaining budget is threaded into the rebuild
  (``--deadline``); a blown budget is a clean typed cancellation with
  the journal resumable, and queued requests whose deadline expires are
  cancelled before ever starting.
* retry budgets — each request runs under its own scoped
  :class:`~repro.resilience.retry.RetryStats`, merged into per-tenant
  aggregates; a tenant's simulated-backoff budget caps how much retry
  time its requests may burn service-wide.
* shared artifact cache
  (:class:`~repro.core.cache.artifacts.SharedArtifactCache`) — one
  capacity-bounded LRU pool of compile outputs across all tenants, with
  single-flight dedup: concurrent identical rebuild work runs once, the
  followers re-dispatch against the leader-warmed pool.

Every *admitted* request terminates in exactly one of four typed
outcomes — ``completed``, ``degraded``, ``rejected`` (displacement) or
``deadline-exceeded`` — and the final :class:`ServiceReport` accounts
for all of them; no request is ever lost.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Tuple

from repro.apps import get_app
from repro.containers.engine import ContainerEngine
from repro.core.cache.artifacts import SharedArtifactCache
from repro.core.cache.storage import decode_rebuild, extended_tag
from repro.core.images import install_system_side_images, install_user_side_images
from repro.core.workflow import build_extended_image
from repro.oci.layout import OCILayout
from repro.oci.registry import ImageRegistry
from repro.perf.runtime import attach_perf
from repro.resilience import (
    RUNG_DEADLINE_EXCEEDED,
    RUNG_FLEET_EXHAUSTED,
    RUNG_FULL,
    RUNG_GENERIC,
    RUNG_REDIRECT_ONLY,
    ResilienceContext,
    ResiliencePolicy,
    RetryPolicy,
    RetryStats,
    SimulatedClock,
    adapt_with_resilience,
    redirect_only_adapt,
    resilient_transfer,
)
from repro.service.admission import (
    MODE_FULL,
    MODE_GENERIC,
    MODE_REDIRECT_ONLY,
    PRIORITY_NORMAL,
    AdmissionQueue,
    TokenBucket,
    priority_rank,
)
from repro.service.breaker import STATE_OPEN, CircuitBreaker
from repro.service.errors import CircuitOpenError, ServiceError, ServiceOverloadError
from repro.service.wal import ServiceCrash, ServiceWAL
from repro.sysmodel import SystemModel, X86_CLUSTER
from repro.telemetry import Telemetry, install_telemetry

STATUS_COMPLETED = "completed"
STATUS_DEGRADED = "degraded"
STATUS_REJECTED = "rejected"
STATUS_DEADLINE_EXCEEDED = "deadline-exceeded"

#: Every terminal state an admitted request can reach.
TERMINAL_STATUSES = (
    STATUS_COMPLETED, STATUS_DEGRADED, STATUS_REJECTED,
    STATUS_DEADLINE_EXCEEDED,
)

#: Default retry policy for service requests: modest attempts so a
#: genuinely sick dependency *fails* (feeding the circuit breaker)
#: instead of being absorbed by the single-session PERMISSIVE_RETRY's
#: near-infinite patience.
SERVICE_RETRY = RetryPolicy(max_attempts=4, budget_seconds=120.0)

#: Simulated seconds of fixed per-dispatch overhead (scheduling,
#: container setup); keeps zero-cost cache-warm requests from finishing
#: in literally zero time.
DISPATCH_OVERHEAD = 0.05


def percentile(values: List[float], q: float) -> float:
    """Nearest-rank percentile (q in [0, 1]); 0.0 for an empty list."""
    if not values:
        return 0.0
    ordered = sorted(values)
    index = max(0, min(len(ordered) - 1, int(q * len(ordered) + 0.999999) - 1))
    return ordered[index]


@dataclass
class AdaptationRequest:
    """One tenant's ask: adapt *app* for the service's system."""

    tenant: str
    app: str
    priority: str = PRIORITY_NORMAL
    #: End-to-end budget in simulated seconds from ``submit_at``; what is
    #: left at dispatch becomes the rebuild's ``--deadline``.
    deadline: Optional[float] = None
    jobs: int = 2
    submit_at: float = 0.0
    seq: int = 0
    request_id: str = ""
    #: Service level granted at admission (shedding may lower it).
    mode: str = MODE_FULL
    shed: bool = False
    #: Set when the request was parked behind an identical in-flight
    #: leader and re-dispatched against the leader-warmed shared cache.
    deduped: bool = False
    eff_jobs: int = 1


@dataclass
class RequestOutcome:
    """The typed terminal record of one request."""

    request_id: str
    tenant: str
    app: str
    priority: str
    mode: str
    status: str = STATUS_COMPLETED
    rung: Optional[str] = None
    ref: Optional[str] = None
    error: Optional[str] = None
    retry_after: Optional[float] = None
    submitted_at: float = 0.0
    started_at: Optional[float] = None
    finished_at: float = 0.0
    cost: float = 0.0
    latency: float = 0.0
    deduped: bool = False
    shed: bool = False
    reasons: List[str] = field(default_factory=list)
    retry_spend: float = 0.0
    retry_causes: Dict[str, int] = field(default_factory=dict)
    cache_hit_nodes: int = 0
    executed_nodes: int = 0
    reused_nodes: int = 0
    #: Plan-level short-circuit fired: the rebuild pruned every command
    #: group against the tenant's previous adaptation and executed
    #: nothing — the repeat-tenant fast path.
    incremental_fast_path: bool = False
    #: Restored from the WAL by a restart rather than produced by this
    #: process's own event loop (the terminal status happened *before*
    #: the crash and must not be re-earned).
    recovered: bool = False
    report: object = None
    _layout: Optional[Tuple[OCILayout, str]] = None

    def to_json(self) -> dict:
        return {
            "request_id": self.request_id,
            "tenant": self.tenant,
            "app": self.app,
            "priority": self.priority,
            "mode": self.mode,
            "status": self.status,
            "rung": self.rung,
            "ref": self.ref,
            "error": self.error,
            "retry_after": self.retry_after,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "cost": self.cost,
            "latency": self.latency,
            "deduped": self.deduped,
            "shed": self.shed,
            "reasons": list(self.reasons),
            "retry_spend": self.retry_spend,
            "retry_causes": dict(self.retry_causes),
            "cache_hit_nodes": self.cache_hit_nodes,
            "executed_nodes": self.executed_nodes,
            "reused_nodes": self.reused_nodes,
            "incremental_fast_path": self.incremental_fast_path,
            "recovered": self.recovered,
        }


@dataclass
class TenantState:
    """Per-tenant runtime: engine, bulkhead, budgets, fairness state."""

    name: str
    weight: float = 1.0
    #: Bulkhead: max concurrent rebuild fleet workers this tenant may
    #: hold out of the service's global pool.
    max_workers: int = 2
    retry_budget: float = 600.0
    bucket: Optional[TokenBucket] = None
    engine: ContainerEngine = None
    recorder: object = None
    vtime: float = 0.0
    served_seconds: float = 0.0
    retry_spent: float = 0.0
    budget_exhausted: bool = False
    workers_in_use: int = 0
    stats: RetryStats = None
    submitted: int = 0
    completed: int = 0
    degraded: int = 0
    rejected: int = 0
    deadline_exceeded: int = 0
    latencies: List[float] = field(default_factory=list)

    def summary(self) -> dict:
        return {
            "tenant": self.name,
            "weight": self.weight,
            "max_workers": self.max_workers,
            "submitted": self.submitted,
            "completed": self.completed,
            "degraded": self.degraded,
            "rejected": self.rejected,
            "deadline_exceeded": self.deadline_exceeded,
            "p50": percentile(self.latencies, 0.50),
            "p99": percentile(self.latencies, 0.99),
            "retry_spend": self.retry_spent,
            "retry_budget": self.retry_budget,
            "vtime": self.vtime,
        }


@dataclass
class ServiceReport:
    """Everything one :meth:`AdaptationService.run` did, accounted."""

    outcomes: List[RequestOutcome]
    tenants: Dict[str, dict]
    breakers: Dict[str, dict]
    queue: dict
    cache: dict
    simulated_seconds: float = 0.0
    deduped_requests: int = 0
    mirror_syncs: int = 0
    mirror_sync_failures: int = 0
    #: Terminal outcomes restored from the WAL by a restart.
    recovered_requests: int = 0
    #: In-flight (dispatched, non-terminal) requests a restart resumed.
    resumed_requests: int = 0
    #: Origin failover promotions this service triggered.
    failovers: int = 0
    #: :meth:`ServiceWAL.stats` of the backing log (None when volatile).
    wal: Optional[dict] = None

    def by_status(self) -> Dict[str, int]:
        counts: Dict[str, int] = {status: 0 for status in TERMINAL_STATUSES}
        for outcome in self.outcomes:
            counts[outcome.status] = counts.get(outcome.status, 0) + 1
        return counts

    @property
    def dedup_ratio(self) -> float:
        """Fraction of rebuild node-work served from the shared cache."""
        hits = sum(o.cache_hit_nodes for o in self.outcomes)
        executed = sum(o.executed_nodes for o in self.outcomes)
        total = hits + executed
        return hits / total if total else 0.0

    def to_json(self) -> dict:
        return {
            "outcomes": [o.to_json() for o in self.outcomes],
            "tenants": dict(self.tenants),
            "breakers": dict(self.breakers),
            "queue": dict(self.queue),
            "cache": dict(self.cache),
            "by_status": self.by_status(),
            "dedup_ratio": self.dedup_ratio,
            "deduped_requests": self.deduped_requests,
            "mirror_syncs": self.mirror_syncs,
            "mirror_sync_failures": self.mirror_sync_failures,
            "simulated_seconds": self.simulated_seconds,
            "recovered_requests": self.recovered_requests,
            "resumed_requests": self.resumed_requests,
            "failovers": self.failovers,
            "wal": dict(self.wal) if self.wal else None,
        }

    def summary(self) -> str:
        counts = self.by_status()
        bits = [
            f"{len(self.outcomes)} requests in {self.simulated_seconds:.1f}s "
            f"simulated: "
            + ", ".join(f"{counts[s]} {s}" for s in TERMINAL_STATUSES if counts[s])
        ]
        if self.deduped_requests:
            bits.append(f"{self.deduped_requests} deduped in flight")
        if self.dedup_ratio:
            bits.append(f"{self.dedup_ratio:.0%} of rebuild work from shared cache")
        if self.recovered_requests:
            bits.append(f"{self.recovered_requests} outcome(s) recovered from WAL")
        if self.resumed_requests:
            bits.append(f"{self.resumed_requests} in-flight request(s) resumed")
        if self.failovers:
            bits.append(f"{self.failovers} origin failover(s)")
        open_breakers = [n for n, b in self.breakers.items()
                        if b["state"] != "closed"]
        if open_breakers:
            bits.append("breakers not closed: " + ", ".join(sorted(open_breakers)))
        return "; ".join(bits)


class AdaptationService:
    """Discrete-event, multi-tenant front end over the adaptation pipeline."""

    def __init__(
        self,
        system: SystemModel = X86_CLUSTER,
        flavor: str = "vendor",
        workers: int = 8,
        nodes: int = 16,
        queue_capacity: int = 32,
        shed_watermark: float = 0.75,
        full_watermark: float = 0.9,
        seed: int = 0,
        injector=None,
        policy: Optional[ResiliencePolicy] = None,
        telemetry: Optional[Telemetry] = None,
        cache_capacity: int = 512,
        breaker_threshold: int = 3,
        breaker_reset: float = 180.0,
        dispatch_overhead: float = DISPATCH_OVERHEAD,
        durable: bool = False,
        wal: Optional[ServiceWAL] = None,
        crash_after_records: Optional[int] = None,
        crash_at: Optional[float] = None,
        crash_torn: bool = True,
        federation=None,
        auto_failover: bool = True,
    ) -> None:
        self.system = system
        self.flavor = flavor
        self.workers = max(1, workers)
        self.nodes = nodes
        self.seed = seed
        self.injector = injector
        #: Constructor shape a :meth:`restart` rebuilds the process from
        #: (everything except the volatile telemetry/WAL/crash knobs).
        self._config = {
            "system": system, "flavor": flavor, "workers": workers,
            "nodes": nodes, "queue_capacity": queue_capacity,
            "shed_watermark": shed_watermark, "full_watermark": full_watermark,
            "seed": seed, "injector": injector, "policy": policy,
            "cache_capacity": cache_capacity,
            "breaker_threshold": breaker_threshold,
            "breaker_reset": breaker_reset,
            "dispatch_overhead": dispatch_overhead,
        }
        # Request cost is measured as telemetry-clock progress (rebuild
        # makespans, retry backoff, workload runs all charge it), so the
        # service needs a *live* recorder even when the caller brought none.
        self.telemetry = (
            telemetry if telemetry is not None and telemetry.enabled
            else Telemetry()
        )
        #: The service timeline every event runs on.
        self.clock = SimulatedClock()
        if policy is None:
            policy = ResiliencePolicy.permissive(
                seed=seed, injector=injector, retry=SERVICE_RETRY
            )
        self.policy = policy
        self.registry = ImageRegistry()
        self.user_engine = ContainerEngine(arch=system.arch)
        install_user_side_images(self.user_engine)
        if injector is not None:
            self.registry.fault_injector = injector
            self.registry.blobs.fault_injector = injector
        install_telemetry(
            self.telemetry, registry=self.registry, engines=[self.user_engine]
        )
        self.queue = AdmissionQueue(
            capacity=queue_capacity, shed_watermark=shed_watermark,
            full_watermark=full_watermark, telemetry=self.telemetry,
        )
        self.shared_cache = SharedArtifactCache(
            capacity=cache_capacity, telemetry=self.telemetry
        )
        self.breakers: Dict[str, CircuitBreaker] = {
            name: CircuitBreaker(
                name, clock=self.clock, failure_threshold=breaker_threshold,
                reset_timeout=breaker_reset, telemetry=self.telemetry,
            )
            for name in ("registry", "fleet", "mirrors")
        }
        self.dispatch_overhead = dispatch_overhead
        self.tenants: Dict[str, TenantState] = {}
        self.mirrors: Dict[str, ImageRegistry] = {}
        self.outcomes: List[RequestOutcome] = []
        self.workers_in_use = 0
        self.deduped_requests = 0
        self.mirror_syncs = 0
        self.mirror_sync_failures = 0
        self._arrivals: List[AdaptationRequest] = []
        self._seq = 0
        self._extended: Dict[str, Tuple[OCILayout, str]] = {}
        self._tenant_layouts: Dict[Tuple[str, str], Tuple[OCILayout, str]] = {}
        self._leaders: Dict[Tuple[str, str], int] = {}
        self._followers: Dict[Tuple[str, str], List[AdaptationRequest]] = {}
        self._cost_sum = 0.0
        self._cost_n = 0
        # -- durability (the service WAL) ------------------------------
        self.durable = bool(
            durable or wal is not None or crash_after_records is not None
            or crash_at is not None
        )
        self.wal: Optional[ServiceWAL] = None
        if self.durable:
            if wal is None:
                self.wal = ServiceWAL(
                    seed=seed, injector=injector,
                    crash_after_records=crash_after_records,
                    crash_torn=crash_torn,
                )
            else:
                self.wal = wal
                self.wal.injector = injector
                if crash_after_records is not None:
                    self.wal.crash_after_records = crash_after_records
                    self.wal.crash_torn = crash_torn
        self.crash_at = crash_at
        self.crashed = False
        self._replaying = False
        self.recovered_requests = 0
        self.resumed_requests = 0
        self._resumed_ids: set = set()
        self._open_ids: set = set()
        # -- federation (origin failover) ------------------------------
        self.federation = federation
        self.auto_failover = auto_failover
        self.failovers = 0
        if federation is not None:
            # The service's origin registry *is* the federation's; the
            # breaker's half-open probes naturally route through
            # whichever registry the federation currently calls origin.
            self.registry = federation.origin
            if injector is not None:
                self.registry.fault_injector = injector
                self.registry.blobs.fault_injector = injector
            install_telemetry(self.telemetry, registry=self.registry)
        if self.durable:
            for breaker in self.breakers.values():
                breaker.listener = self._on_breaker_transition
        elif federation is not None and auto_failover:
            self.breakers["registry"].listener = self._on_breaker_transition

    # -- tenancy and submission -----------------------------------------

    def add_tenant(
        self,
        name: str,
        weight: float = 1.0,
        max_workers: int = 2,
        rate: Optional[float] = None,
        burst: Optional[float] = None,
        retry_budget: float = 600.0,
    ) -> TenantState:
        """Register a tenant: its own engine (bulkhead), budget, bucket."""
        if name in self.tenants:
            raise ServiceError(f"tenant {name!r} already registered")
        engine = ContainerEngine(arch=self.system.arch)
        install_system_side_images(engine, self.system, self.flavor)
        recorder = attach_perf(engine, self.system)
        install_telemetry(self.telemetry, engines=[engine])
        bucket = None
        if rate is not None:
            bucket = TokenBucket(rate=rate, burst=burst if burst is not None
                                 else max(1.0, 2.0 * rate))
        state = TenantState(
            name=name, weight=max(weight, 1e-6),
            max_workers=max(1, min(max_workers, self.workers)),
            retry_budget=retry_budget, bucket=bucket,
            engine=engine, recorder=recorder,
            stats=RetryStats(scope=name),
        )
        self.tenants[name] = state
        self._wal("tenant", name=name, weight=state.weight,
                  max_workers=state.max_workers, rate=rate, burst=burst,
                  retry_budget=retry_budget)
        return state

    def add_mirror(self, name: str) -> ImageRegistry:
        """Register a federation mirror synced after each full adaptation."""
        registry = ImageRegistry()
        install_telemetry(self.telemetry, registry=registry)
        self.mirrors[name] = registry
        self._wal("mirror", name=name)
        return registry

    def submit(
        self,
        tenant: str,
        app: str,
        at: float = 0.0,
        priority: str = PRIORITY_NORMAL,
        deadline: Optional[float] = None,
        jobs: int = 2,
    ) -> AdaptationRequest:
        """Schedule an arrival at simulated time *at*; admission happens
        when the event loop reaches it."""
        if tenant not in self.tenants:
            raise ServiceError(f"unknown tenant {tenant!r}")
        get_app(app)   # typed KeyError now, not mid-run
        self._seq += 1
        request = AdaptationRequest(
            tenant=tenant, app=app, priority=priority, deadline=deadline,
            jobs=max(1, jobs), submit_at=float(at), seq=self._seq,
            request_id=f"{tenant}/r{self._seq}",
        )
        self._arrivals.append(request)
        self._wal("submit", request_id=request.request_id, tenant=tenant,
                  app=app, priority=priority, deadline=deadline,
                  jobs=request.jobs, submit_at=request.submit_at,
                  seq=request.seq)
        return request

    # -- durability: WAL, crash, restart ---------------------------------

    def _wal(self, kind: str, **fields) -> None:
        """Durably append one WAL record (no-op when volatile/replaying)."""
        if self.wal is None or self._replaying:
            return
        record = {"rec": kind, "t": float(self.clock.now)}
        record.update(fields)
        self.wal.append(record)
        if self.telemetry.enabled:
            self.telemetry.metrics.counter("service_wal_records_total").inc()

    def _wal_terminal(self, outcome: RequestOutcome,
                      charged: float = 0.0) -> None:
        """The commit point of one request: exactly one terminal record
        per request_id ever reaches the log (a torn terminal line is
        dropped by salvage, so the restart re-earns it — once)."""
        self._open_ids.discard(outcome.request_id)
        self._wal("terminal", request_id=outcome.request_id,
                  charged=float(charged), outcome=outcome.to_json())

    def _on_breaker_transition(self, name: str, from_state: str,
                               to_state: str, t: float) -> None:
        self._wal("breaker", breaker=name, from_state=from_state,
                  to_state=to_state)
        if (name == "registry" and to_state == STATE_OPEN
                and self.federation is not None and self.auto_failover
                and not self._replaying):
            self._failover_origin()

    def _failover_origin(self) -> None:
        """The registry breaker opened against a federated origin: fail
        the origin over to the freshest converged mirror, so the
        breaker's half-open probe lands on the promoted origin."""
        from repro.federation import FederationError

        fed = self.federation
        try:
            promotion = fed.fail_over()
        except FederationError as exc:
            if self.telemetry.enabled:
                self.telemetry.event("service.failover_unavailable",
                                     error=str(exc))
            return
        self.registry = fed.origin
        if self.injector is not None:
            # The injector stays attached to the *failed* origin; the
            # promoted one is a healthy replica.
            self.registry.fault_injector = None
        install_telemetry(self.telemetry, registry=self.registry)
        self.failovers += 1
        self._wal("failover", elected=promotion.elected,
                  fence=promotion.fence_token)
        if self.telemetry.enabled:
            self.telemetry.event("service.origin_failover",
                                 elected=promotion.elected,
                                 fence=promotion.fence_token)
            self.telemetry.metrics.counter("service_failovers_total").inc()

    def crash(self) -> bytes:
        """Simulate hard process death *now*.

        Everything volatile — the admission queue, in-flight leases,
        single-flight parking, breaker counters, tenant engines — is
        considered lost; only the WAL's flushed bytes (returned) and the
        durable stores (origin registry, mirror registries, mounted
        layouts) survive.  :meth:`restart` builds the next process from
        exactly those.
        """
        if not self.durable or self.wal is None:
            raise ServiceError("crash/restart simulation requires durable mode")
        self.crashed = True
        return self.wal.flushed_bytes

    def restart(
        self,
        crash_after_records: Optional[int] = None,
        crash_at: Optional[float] = None,
        crash_torn: bool = True,
        telemetry: Optional[Telemetry] = None,
    ) -> "AdaptationService":
        """The next process: salvage the WAL, replay it, resume.

        Returns a *new* :class:`AdaptationService` whose queue order,
        tenant token buckets, breaker states and terminal outcomes are
        reconstructed from the salvaged log; requests that were admitted
        (or in flight) without a terminal record are re-queued and will
        re-dispatch against the surviving mounted layouts — their
        rebuild journals and ``+coMre`` manifests mean the re-execution
        prunes every checkpointed node.  Fresh crash triggers may be
        armed for multi-crash chains (``crash_after_records`` counts
        *all* records including the salvaged ones).
        """
        if not self.durable or self.wal is None:
            raise ServiceError("crash/restart simulation requires durable mode")
        salvaged = ServiceWAL.from_bytes(
            self.wal.flushed_bytes, injector=self.injector,
            crash_after_records=crash_after_records, crash_torn=crash_torn,
        )
        config = dict(self._config)
        service = AdaptationService(
            telemetry=telemetry, durable=True, wal=salvaged,
            crash_at=crash_at, federation=self.federation,
            auto_failover=self.auto_failover, **config,
        )
        service._recover(self)
        return service

    def _recover(self, prior: "AdaptationService") -> None:
        """Adopt the durable stores of the crashed process and replay."""
        if self.federation is None:
            self.registry = prior.registry
            if self.injector is not None:
                self.registry.fault_injector = self.injector
                self.registry.blobs.fault_injector = self.injector
            install_telemetry(self.telemetry, registry=self.registry)
        self._extended = dict(prior._extended)
        self._tenant_layouts = dict(prior._tenant_layouts)
        self._carry_mirrors = dict(prior.mirrors)
        self._replay()

    def _replay(self) -> None:
        """Reconstruct volatile state from the salvaged WAL records."""
        wal = self.wal
        carry_mirrors = getattr(self, "_carry_mirrors", {})
        admits: Dict[str, dict] = {}
        submits: Dict[str, dict] = {}
        terminals: List[dict] = []
        terminal_ids: set = set()
        dispatched: set = set()
        last_t = 0.0
        self._replaying = True
        try:
            for record in wal.records:
                t = float(record.get("t", 0.0))
                last_t = max(last_t, t)
                kind = record.get("rec")
                if kind == "tenant":
                    name = record.get("name", "")
                    if name and name not in self.tenants:
                        self.add_tenant(
                            name, weight=record.get("weight", 1.0),
                            max_workers=record.get("max_workers", 2),
                            rate=record.get("rate"),
                            burst=record.get("burst"),
                            retry_budget=record.get("retry_budget", 600.0),
                        )
                elif kind == "mirror":
                    name = record.get("name", "")
                    if name and name not in self.mirrors:
                        carried = carry_mirrors.get(name)
                        if carried is not None:
                            install_telemetry(self.telemetry, registry=carried)
                            self.mirrors[name] = carried
                        else:
                            self.add_mirror(name)
                elif kind == "submit":
                    submits[record.get("request_id", "")] = record
                elif kind == "admit":
                    rid = record.get("request_id", "")
                    admits[rid] = record
                    tenant = self.tenants.get(record.get("tenant", ""))
                    if tenant is not None and tenant.bucket is not None:
                        # Replaying the successful takes at their original
                        # times reproduces the bucket's exact token level
                        # (refill is linear-capped, so skipped failed
                        # takes change nothing).
                        tenant.bucket.try_take(t)
                elif kind == "dispatch":
                    dispatched.add(record.get("request_id", ""))
                elif kind == "breaker":
                    breaker = self.breakers.get(record.get("breaker", ""))
                    to_state = record.get("to_state")
                    if breaker is not None and isinstance(to_state, str):
                        breaker.transitions.append(
                            (t, str(record.get("from_state")), to_state))
                        breaker.state = to_state
                        if to_state == STATE_OPEN:
                            breaker.opened_at = t
                        # Consecutive-failure/success counters restart at
                        # zero: the state machine position is durable, the
                        # streak is not.
                        breaker.failures = 0
                        breaker.successes = 0
                elif kind == "terminal":
                    rid = record.get("request_id", "")
                    if rid and rid not in terminal_ids:
                        terminal_ids.add(rid)
                        terminals.append(record)
                elif kind == "absorb":
                    memo = self._tenant_layouts.get(
                        (record.get("tenant", ""), record.get("app", "")))
                    if memo is not None:
                        self.shared_cache.absorb_layout(
                            memo[0], record.get("dist_tag", memo[1]))
                elif kind == "sync":
                    if record.get("ok", False):
                        self.mirror_syncs += 1
                    else:
                        self.mirror_sync_failures += 1
            self._restore_terminals(terminals, admits)
            self._requeue_open(admits, submits, terminal_ids, dispatched)
            seqs = [int(r.get("seq", 0)) for r in admits.values()]
            seqs += [int(r.get("seq", 0)) for r in submits.values()]
            self._seq = max(seqs + [self._seq])
            if last_t > self.clock.now:
                self.clock.sleep(last_t - self.clock.now)
        finally:
            self._replaying = False
        wal.restarts += 1
        self._wal("restart", recovered=self.recovered_requests,
                  resumed=self.resumed_requests,
                  torn_dropped=wal.torn_records_dropped)
        if self.telemetry.enabled:
            self.telemetry.metrics.counter("service_recoveries_total").inc()
            self.telemetry.event(
                "service.restarted", recovered=self.recovered_requests,
                requeued=len(self._open_ids), resumed=self.resumed_requests,
                torn_dropped=wal.torn_records_dropped,
            )
            self._gauges()

    def _restore_terminals(self, terminals: List[dict],
                           admits: Dict[str, dict]) -> None:
        """Terminal records are facts: restore outcomes + accounting."""
        for record in terminals:
            data = record.get("outcome") or {}
            status = data.get("status", STATUS_REJECTED)
            if status not in TERMINAL_STATUSES:
                continue
            rid = data.get("request_id") or record.get("request_id", "")
            outcome = RequestOutcome(
                request_id=rid,
                tenant=data.get("tenant", ""), app=data.get("app", ""),
                priority=data.get("priority", PRIORITY_NORMAL),
                mode=data.get("mode", MODE_FULL), status=status,
                rung=data.get("rung"), ref=data.get("ref"),
                error=data.get("error"), retry_after=data.get("retry_after"),
                submitted_at=data.get("submitted_at", 0.0),
                started_at=data.get("started_at"),
                finished_at=data.get("finished_at", 0.0),
                cost=data.get("cost", 0.0), latency=data.get("latency", 0.0),
                deduped=data.get("deduped", False),
                shed=data.get("shed", False),
                reasons=list(data.get("reasons", [])),
                retry_spend=data.get("retry_spend", 0.0),
                retry_causes=dict(data.get("retry_causes", {})),
                cache_hit_nodes=data.get("cache_hit_nodes", 0),
                executed_nodes=data.get("executed_nodes", 0),
                reused_nodes=data.get("reused_nodes", 0),
                incremental_fast_path=data.get(
                    "incremental_fast_path", False),
                recovered=True,
            )
            self.outcomes.append(outcome)
            self.recovered_requests += 1
            tenant = self.tenants.get(outcome.tenant)
            if tenant is None:
                continue
            if status == STATUS_COMPLETED:
                tenant.completed += 1
                tenant.latencies.append(outcome.latency)
            elif status == STATUS_DEGRADED:
                tenant.degraded += 1
                tenant.latencies.append(outcome.latency)
            elif status == STATUS_REJECTED:
                tenant.rejected += 1
            else:
                tenant.deadline_exceeded += 1
            tenant.retry_spent += outcome.retry_spend
            charged = float(record.get("charged", 0.0))
            if charged > 0.0:
                tenant.served_seconds += charged
                tenant.vtime += charged / tenant.weight
                self._cost_sum += charged
                self._cost_n += 1
            # Arrival-level rejections (rate-limited, queue-full) never
            # got an admit record, but their arrival was counted.
            if status == STATUS_REJECTED and rid not in admits:
                tenant.submitted += 1

    def _requeue_open(self, admits: Dict[str, dict], submits: Dict[str, dict],
                      terminal_ids: set, dispatched: set) -> None:
        """Admitted-but-non-terminal requests re-enter the queue with
        their granted service level; unprocessed arrivals re-arrive."""
        open_requests: List[AdaptationRequest] = []
        for rid, record in admits.items():
            tenant_name = record.get("tenant", "")
            tenant = self.tenants.get(tenant_name)
            if tenant is None:
                continue
            tenant.submitted += 1
            if rid in terminal_ids:
                continue
            open_requests.append(AdaptationRequest(
                tenant=tenant_name, app=record.get("app", ""),
                priority=record.get("priority", PRIORITY_NORMAL),
                deadline=record.get("deadline"),
                jobs=int(record.get("jobs", 2)),
                submit_at=float(record.get("submit_at", 0.0)),
                seq=int(record.get("seq", 0)), request_id=rid,
                mode=record.get("mode", MODE_FULL),
                shed=bool(record.get("shed", False)),
            ))
        for request in sorted(open_requests, key=lambda r: r.seq):
            self.queue.restore(request)
            self._open_ids.add(request.request_id)
            if request.request_id in dispatched:
                # In flight at the crash: its durable effects (rebuild
                # journal, +coMre manifest) are already in the mounted
                # layout, so the re-dispatch executes zero checkpointed
                # nodes.
                self.resumed_requests += 1
                self._resumed_ids.add(request.request_id)
        for rid, record in submits.items():
            if rid in admits or rid in terminal_ids:
                continue
            if record.get("tenant", "") not in self.tenants:
                continue
            self._arrivals.append(AdaptationRequest(
                tenant=record.get("tenant", ""), app=record.get("app", ""),
                priority=record.get("priority", PRIORITY_NORMAL),
                deadline=record.get("deadline"),
                jobs=int(record.get("jobs", 2)),
                submit_at=float(record.get("submit_at", 0.0)),
                seq=int(record.get("seq", 0)), request_id=rid,
            ))

    # -- the event loop --------------------------------------------------

    def run(self) -> ServiceReport:
        """Drain every submitted arrival through the timeline; report.

        In durable mode a :class:`ServiceCrash` (armed via
        ``crash_after_records`` / ``crash_at``) propagates out of here
        with :attr:`crashed` set; call :meth:`restart` to build the next
        process from the WAL and ``run()`` it again.
        """
        if self.crashed:
            raise ServiceError("service crashed; restart() it first")
        try:
            return self._run_loop()
        except ServiceCrash:
            self.crashed = True
            raise

    def _run_loop(self) -> ServiceReport:
        arrivals = sorted(self._arrivals, key=lambda r: (r.submit_at, r.seq))
        self._arrivals = []
        # The user side publishes extended images ahead of serving; their
        # build cost is not any one request's latency.
        for request in arrivals:
            self._prepare_extended(request.app)
        running: List[Tuple[float, int, AdaptationRequest, RequestOutcome]] = []
        index = 0
        while index < len(arrivals) or running or len(self.queue):
            times = []
            if running:
                times.append(running[0][0])
            if index < len(arrivals):
                times.append(arrivals[index].submit_at)
            if times:
                self._advance_to(max(self.clock.now, min(times)))
            now = self.clock.now
            while running and running[0][0] <= now:
                _, _, request, outcome = heapq.heappop(running)
                self._finish(request, outcome)
            while index < len(arrivals) and arrivals[index].submit_at <= now:
                self._admit(arrivals[index])
                index += 1
            self._expire_queued()
            dispatched_any = False
            while True:
                request = self.queue.pop_next(self._wfq_key, self._eligible)
                if request is None:
                    break
                dispatched_any = True
                finish, outcome = self._dispatch(request)
                if finish is not None:
                    heapq.heappush(running, (finish, request.seq, request, outcome))
            self._gauges()
            if not times and len(self.queue) and not dispatched_any and not running:
                raise ServiceError(
                    "admission deadlock: queued work cannot be scheduled "
                    "(a request needs more workers than exist?)"
                )
        report = self._report()
        if self.telemetry.controlplane is not None:
            self.telemetry.controlplane.poll()
        return report

    # -- timeline helpers ------------------------------------------------

    def _advance_to(self, t: float) -> None:
        if (self.crash_at is not None and not self._replaying
                and t >= self.crash_at):
            # Die mid-advance: the clock stops at the crash point, the WAL
            # keeps only what was flushed before it.
            t = max(self.clock.now, self.crash_at)
            self.crash_at = None
            dt = t - self.clock.now
            if dt > 0:
                self.clock.sleep(dt)
                if self.telemetry.controlplane is not None:
                    self.telemetry.controlplane.advance(dt)
            raise ServiceCrash(
                len(self.wal.records) if self.wal is not None else 0,
                torn=False,
            )
        dt = t - self.clock.now
        if dt <= 0:
            return
        self.clock.sleep(dt)
        controlplane = self.telemetry.controlplane
        if controlplane is not None:
            # Queue-wait and idle gaps are service progress too; execution
            # intervals are already advanced by the fleet's own hooks.
            controlplane.advance(dt)

    def _retry_after_hint(self) -> float:
        average = (self._cost_sum / self._cost_n) if self._cost_n else 30.0
        return max(1.0, average * (len(self.queue) + 1) / self.workers)

    def _wfq_key(self, request: AdaptationRequest):
        tenant = self.tenants[request.tenant]
        return (priority_rank(request.priority), tenant.vtime, request.seq)

    def _effective_jobs(self, request: AdaptationRequest) -> int:
        tenant = self.tenants[request.tenant]
        if request.mode != MODE_FULL:
            return 1   # no rebuild fleet below the full rung
        return max(1, min(request.jobs, tenant.max_workers, self.workers))

    def _eligible(self, request: AdaptationRequest) -> bool:
        tenant = self.tenants[request.tenant]
        eff = self._effective_jobs(request)
        return (
            tenant.workers_in_use + eff <= tenant.max_workers
            and self.workers_in_use + eff <= self.workers
        )

    # -- admission -------------------------------------------------------

    def _admit(self, request: AdaptationRequest) -> None:
        tele = self.telemetry
        tenant = self.tenants[request.tenant]
        tenant.submitted += 1
        if tele.enabled:
            tele.metrics.counter("service_requests_submitted_total").inc()
        if tenant.bucket is not None and not tenant.bucket.try_take(self.clock.now):
            error = ServiceOverloadError(
                request.tenant, "rate-limited",
                retry_after=tenant.bucket.retry_after(self.clock.now),
            )
            if tele.enabled:
                tele.metrics.counter("service_rate_limited_total").inc()
            self._reject(request, error)
            return
        try:
            displaced = self.queue.admit(
                request, retry_after=self._retry_after_hint()
            )
        except ServiceOverloadError as error:
            self._reject(request, error)
            return
        # The admission is durable only once this record lands: the shed
        # level granted here is the service level a restart re-queues at.
        self._open_ids.add(request.request_id)
        self._wal("admit", request_id=request.request_id,
                  tenant=request.tenant, app=request.app,
                  priority=request.priority, deadline=request.deadline,
                  jobs=request.jobs, submit_at=request.submit_at,
                  seq=request.seq, mode=request.mode, shed=request.shed)
        if displaced is not None:
            self._reject(displaced, ServiceOverloadError(
                displaced.tenant, "displaced",
                retry_after=self._retry_after_hint(),
            ))
        if request.shed and tele.enabled:
            tele.event("service.shed", request=request.request_id,
                       mode=request.mode,
                       occupancy=round(self.queue.occupancy(), 3))
            tele.metrics.counter("service_requests_shed_total").inc()
        self._gauges()

    def _reject(self, request: AdaptationRequest,
                error: ServiceOverloadError) -> None:
        tenant = self.tenants[request.tenant]
        tenant.rejected += 1
        outcome = RequestOutcome(
            request_id=request.request_id, tenant=request.tenant,
            app=request.app, priority=request.priority, mode=request.mode,
            status=STATUS_REJECTED, error=str(error),
            retry_after=error.retry_after, submitted_at=request.submit_at,
            finished_at=self.clock.now, shed=request.shed,
        )
        outcome.reasons.append(error.reason)
        self.outcomes.append(outcome)
        self._wal_terminal(outcome)
        tele = self.telemetry
        if tele.enabled:
            tele.event("service.rejected", request=request.request_id,
                       reason=error.reason,
                       retry_after=round(error.retry_after, 3))
            tele.metrics.counter("service_requests_rejected_total").inc()

    def _expire_queued(self) -> None:
        now = self.clock.now
        expired = self.queue.expire(
            lambda r: r.deadline is not None and now >= r.submit_at + r.deadline
        )
        for request in expired:
            tenant = self.tenants[request.tenant]
            tenant.deadline_exceeded += 1
            outcome = RequestOutcome(
                request_id=request.request_id, tenant=request.tenant,
                app=request.app, priority=request.priority,
                mode=request.mode, status=STATUS_DEADLINE_EXCEEDED,
                rung=RUNG_DEADLINE_EXCEEDED,
                submitted_at=request.submit_at, finished_at=now,
                latency=now - request.submit_at, shed=request.shed,
            )
            outcome.reasons.append("deadline expired while queued")
            self.outcomes.append(outcome)
            self._wal_terminal(outcome)
            if self.telemetry.enabled:
                self.telemetry.event("service.deadline_expired_queued",
                                     request=request.request_id)
                self.telemetry.metrics.counter(
                    "service_requests_deadline_total").inc()

    # -- dispatch and execution ------------------------------------------

    def _dispatch(self, request: AdaptationRequest):
        tenant = self.tenants[request.tenant]
        work = (request.app, request.mode)
        if request.mode == MODE_FULL and work in self._leaders:
            # Single-flight: identical rebuild work is already in flight.
            # Park the follower; it re-dispatches when the leader lands
            # (and then runs against the leader-warmed shared cache).
            self._followers.setdefault(work, []).append(request)
            self.deduped_requests += 1
            self._wal("park", request_id=request.request_id,
                      app=request.app)
            if self.telemetry.enabled:
                self.telemetry.event("service.singleflight",
                                     request=request.request_id,
                                     app=request.app)
                self.telemetry.metrics.counter(
                    "service_singleflight_followers_total").inc()
            return None, None
        request.eff_jobs = self._effective_jobs(request)
        tenant.workers_in_use += request.eff_jobs
        self.workers_in_use += request.eff_jobs
        outcome = self._execute(request, tenant)
        outcome.started_at = self.clock.now
        if request.mode == MODE_FULL and outcome.status != STATUS_REJECTED:
            self._leaders[work] = request.seq
        finish = self.clock.now + self.dispatch_overhead + outcome.cost
        # Written *after* _execute returns: this record asserts the
        # request's durable effects (rebuild journal, +coMre manifest in
        # the mounted layout) exist, which is what lets a restart resume
        # it with zero checkpointed nodes re-executed.  A crash before
        # this line leaves only the admit record — a clean cold re-run.
        self._wal("dispatch", request_id=request.request_id,
                  eff_jobs=request.eff_jobs, mode=request.mode,
                  cost=outcome.cost, finish=finish)
        return finish, outcome

    def _request_ctx(self, request: AdaptationRequest,
                     tenant: TenantState) -> ResilienceContext:
        remaining = max(0.0, tenant.retry_budget - tenant.retry_spent)
        base = self.policy.retry
        if remaining <= 0.0:
            retry = replace(base, max_attempts=1, budget_seconds=0.0)
        else:
            retry = replace(base,
                            budget_seconds=min(base.budget_seconds, remaining))
        policy = replace(self.policy, retry=retry, injector=self.injector)
        return ResilienceContext(
            policy=policy, injector=self.injector,
            stats=RetryStats(scope=request.request_id),
            rng=random.Random(
                f"comtainer-service:{self.seed}:{request.request_id}"),
            telemetry=self.telemetry,
        )

    def _execute(self, request: AdaptationRequest,
                 tenant: TenantState) -> RequestOutcome:
        tele = self.telemetry
        outcome = RequestOutcome(
            request_id=request.request_id, tenant=request.tenant,
            app=request.app, priority=request.priority, mode=request.mode,
            submitted_at=request.submit_at, shed=request.shed,
            deduped=request.deduped,
        )
        ctx = self._request_ctx(request, tenant)
        tenant.engine.resilience = ctx
        tenant.engine.fault_injector = self.injector
        before = tele.clock.now
        try:
            with tele.span("service.request", request=request.request_id,
                           tenant=request.tenant, app=request.app,
                           mode=request.mode):
                self._perform(request, tenant, ctx, outcome)
        finally:
            outcome.cost = tele.clock.now - before
            self._account(request, tenant, ctx, outcome)
        return outcome

    def _perform(self, request: AdaptationRequest, tenant: TenantState,
                 ctx: ResilienceContext, outcome: RequestOutcome) -> None:
        remaining = None
        if request.deadline is not None:
            remaining = request.submit_at + request.deadline - self.clock.now
            if remaining <= 0:
                outcome.status = STATUS_DEADLINE_EXCEEDED
                outcome.rung = RUNG_DEADLINE_EXCEEDED
                outcome.reasons.append("deadline expired before dispatch")
                return
        mode = request.mode
        fleet = self.breakers["fleet"]
        if mode == MODE_FULL and not fleet.allow():
            mode = MODE_REDIRECT_ONLY
            outcome.reasons.append(
                f"fleet circuit open; degraded to redirect-only "
                f"(half-open in {fleet.retry_after():.0f}s)"
            )
        layout, dist_tag, transfer_note = self._tenant_layout(request, ctx)
        if transfer_note:
            outcome.reasons.append(transfer_note)
        ref = f"{request.tenant}/{request.app}:adapted"
        if mode == MODE_FULL:
            self.shared_cache.seed_layout(layout, dist_tag)
            report = adapt_with_resilience(
                tenant.engine, layout, self.system, ctx=ctx,
                recorder=tenant.recorder, flavor=self.flavor, ref=ref,
                nodes=self.nodes, jobs=request.eff_jobs, deadline=remaining,
            )
            outcome.report = report
            outcome.rung = report.rung
            outcome.ref = report.ref
            outcome._layout = (layout, dist_tag)
            if report.rung == RUNG_DEADLINE_EXCEEDED:
                outcome.status = STATUS_DEADLINE_EXCEEDED
            elif report.rung == RUNG_FULL:
                outcome.status = STATUS_COMPLETED
            else:
                outcome.status = STATUS_DEGRADED
                outcome.reasons.extend(report.reasons)
            # The fleet breaker sees rebuild *outcomes*: a rung at or
            # below fleet-exhausted means the parallel fleet could not
            # deliver the requested rebuild.
            if report.rung in (RUNG_FLEET_EXHAUSTED, RUNG_REDIRECT_ONLY,
                               RUNG_GENERIC):
                fleet.record_failure()
            elif report.rung in (RUNG_FULL,):
                fleet.record_success()
            try:
                meta = decode_rebuild(layout, dist_tag)[0]
                outcome.cache_hit_nodes = len(meta.get("cache_hits", []))
                outcome.executed_nodes = len(meta.get("executed_nodes", []))
                outcome.reused_nodes = len(meta.get("reused_nodes", []))
                pruned = len(meta.get("pruned_nodes", []))
                if pruned and outcome.executed_nodes == 0:
                    # Repeat tenant, unchanged request: the plan diff
                    # pruned everything and no node executed.
                    outcome.incremental_fast_path = True
                    outcome.reasons.append(
                        f"incremental fast path: {pruned} nodes pruned, "
                        "0 executed"
                    )
                    if self.telemetry.enabled:
                        self.telemetry.metrics.counter(
                            "service_incremental_fast_path_total").inc()
            except Exception:
                pass   # no rebuild manifest on the lowest rungs
        elif mode == MODE_REDIRECT_ONLY:
            try:
                outcome.ref = redirect_only_adapt(
                    tenant.engine, layout, dist_tag, self.system,
                    self.flavor, ref, ctx,
                )
                outcome.rung = RUNG_REDIRECT_ONLY
            except Exception as exc:
                outcome.reasons.append(f"redirect-only failed: {exc}")
                outcome.ref = ctx.retry(
                    lambda: tenant.engine.load_from_layout(
                        layout, dist_tag, ref=ref),
                    site="layout.load",
                )
                outcome.rung = RUNG_GENERIC
            outcome.status = STATUS_DEGRADED
        else:   # MODE_GENERIC
            outcome.ref = ctx.retry(
                lambda: tenant.engine.load_from_layout(layout, dist_tag, ref=ref),
                site="layout.load",
            )
            outcome.rung = RUNG_GENERIC
            outcome.status = STATUS_DEGRADED
        if outcome.status == STATUS_COMPLETED and transfer_note:
            # Full-rung bytes, but served around an unhealthy registry.
            outcome.status = STATUS_DEGRADED

    def _account(self, request: AdaptationRequest, tenant: TenantState,
                 ctx: ResilienceContext, outcome: RequestOutcome) -> None:
        spend = ctx.stats.total_spend
        outcome.retry_spend = spend
        outcome.retry_causes = ctx.stats.exhausted_by_cause()
        tenant.retry_spent += spend
        tenant.stats.merge(ctx.stats)
        if (tenant.retry_budget > 0 and not tenant.budget_exhausted
                and tenant.retry_spent >= tenant.retry_budget):
            tenant.budget_exhausted = True
            if self.telemetry.enabled:
                self.telemetry.event("service.retry_budget_exhausted",
                                     tenant=tenant.name,
                                     spent=round(tenant.retry_spent, 3),
                                     budget=tenant.retry_budget)
                self.telemetry.metrics.counter(
                    "service_retry_budget_exhausted_total").inc()

    def _finish(self, request: AdaptationRequest,
                outcome: RequestOutcome) -> None:
        tenant = self.tenants[request.tenant]
        tenant.workers_in_use -= request.eff_jobs
        self.workers_in_use -= request.eff_jobs
        outcome.finished_at = self.clock.now
        outcome.latency = outcome.finished_at - request.submit_at
        charged = outcome.cost + self.dispatch_overhead
        tenant.served_seconds += charged
        tenant.vtime += charged / tenant.weight
        self._cost_sum += charged
        self._cost_n += 1
        tele = self.telemetry
        if outcome.status == STATUS_COMPLETED:
            tenant.completed += 1
            tenant.latencies.append(outcome.latency)
            if tele.enabled:
                tele.metrics.counter("service_requests_completed_total").inc()
        elif outcome.status == STATUS_DEGRADED:
            tenant.degraded += 1
            tenant.latencies.append(outcome.latency)
            if tele.enabled:
                tele.metrics.counter("service_requests_degraded_total").inc()
        elif outcome.status == STATUS_DEADLINE_EXCEEDED:
            tenant.deadline_exceeded += 1
            if tele.enabled:
                tele.metrics.counter("service_requests_deadline_total").inc()
        self.outcomes.append(outcome)
        self._wal_terminal(outcome, charged=charged)
        if tele.enabled:
            tele.event("service.finished", request=request.request_id,
                       status=outcome.status, rung=outcome.rung or "",
                       latency=round(outcome.latency, 3))
        # Single-flight epilogue: absorb the leader's compile outputs into
        # the shared pool *at completion time* (cache benefits must not
        # flow backwards on the timeline), then release the followers.
        work = (request.app, request.mode)
        if self._leaders.get(work) == request.seq:
            del self._leaders[work]
            if outcome._layout is not None and outcome.status in (
                    STATUS_COMPLETED, STATUS_DEGRADED):
                self.shared_cache.absorb_layout(*outcome._layout)
                self._wal("absorb", tenant=request.tenant, app=request.app,
                          dist_tag=outcome._layout[1])
            for follower in self._followers.pop(work, []):
                follower.deduped = True
                self.queue.restore(follower)
        if (self.mirrors and outcome._layout is not None
                and outcome.status == STATUS_COMPLETED):
            self._sync_mirrors(request.app, *outcome._layout)
        self._update_dedup_gauge()

    # -- shared dependencies ---------------------------------------------

    def _prepare_extended(self, app: str) -> Tuple[OCILayout, str]:
        if app not in self._extended:
            self._extended[app] = build_extended_image(
                self.user_engine, get_app(app)
            )
        return self._extended[app]

    def _tenant_layout(self, request: AdaptationRequest,
                       ctx: ResilienceContext):
        """The tenant's system-side layout for the app, breaker-guarded.

        The happy path transfers through the shared origin registry and
        memoizes per (tenant, app).  When the registry breaker is open
        (or the transfer exhausts its retries) the service degrades to a
        direct copy of the pristine user-side layout — bytes identical,
        but *not* memoized, so a later request probes the registry again
        once the breaker half-opens.
        """
        key = (request.tenant, request.app)
        memo = self._tenant_layouts.get(key)
        if memo is not None:
            return memo[0], memo[1], None
        source, dist_tag = self._prepare_extended(request.app)
        tags = (dist_tag, extended_tag(dist_tag))
        repository = f"{request.tenant}/repro/{request.app}"
        breaker = self.breakers["registry"]
        try:
            remote = breaker.call(lambda: resilient_transfer(
                self.registry, source, repository, tags, ctx=ctx,
            ))
            if self.federation is not None:
                # The transfer pushed straight into the origin registry,
                # bypassing the federation's generation counter.
                self.federation.record_origin_write()
            self._tenant_layouts[key] = (remote, dist_tag)
            return remote, dist_tag, None
        except CircuitOpenError as exc:
            note = f"registry circuit open; served from local replica ({exc})"
        except Exception as exc:
            note = (f"registry transfer failed ({exc}); "
                    f"served from local replica")
        if self.telemetry.enabled:
            self.telemetry.event("service.local_replica",
                                 request=request.request_id, app=request.app)
            self.telemetry.metrics.counter(
                "service_local_replica_transfers_total").inc()
        replica = OCILayout()
        for tag in tags:
            resolved = source.resolve(tag)
            replica.add_manifest(resolved.manifest, resolved.config,
                                 resolved.layers, tag=tag)
        return replica, dist_tag, note

    def _sync_mirrors(self, app: str, layout: OCILayout,
                      dist_tag: str) -> None:
        breaker = self.breakers["mirrors"]

        def sync() -> None:
            for name, registry in self.mirrors.items():
                if self.injector is not None:
                    self.injector.arm("mirror.sync", f"{name}/{app}")
                registry.push_layout(
                    f"{name}/repro/{app}:{dist_tag}", layout, tag=dist_tag
                )

        try:
            breaker.call(sync)
            self.mirror_syncs += 1
            self._wal("sync", app=app, ok=True)
            if self.telemetry.enabled:
                self.telemetry.metrics.counter(
                    "service_mirror_syncs_total").inc()
        except Exception as exc:
            self.mirror_sync_failures += 1
            self._wal("sync", app=app, ok=False)
            if self.telemetry.enabled:
                self.telemetry.event("service.mirror_sync_failed",
                                     app=app, error=str(exc))
                self.telemetry.metrics.counter(
                    "service_mirror_sync_failures_total").inc()

    # -- observability ----------------------------------------------------

    def _gauges(self) -> None:
        if not self.telemetry.enabled:
            return
        m = self.telemetry.metrics
        m.gauge("service_queue_depth").set(float(len(self.queue)))
        m.gauge("service_queue_occupancy").set(self.queue.occupancy())
        m.gauge("service_workers_in_use").set(float(self.workers_in_use))
        m.gauge("service_breakers_open").set(float(sum(
            1 for b in self.breakers.values() if b.state == STATE_OPEN
        )))
        if self.wal is not None:
            # WAL lag: admitted requests whose terminal record has not
            # landed yet — the restart exposure right now.
            m.gauge("service_wal_open_requests").set(float(len(self._open_ids)))

    def _update_dedup_gauge(self) -> None:
        if not self.telemetry.enabled:
            return
        hits = sum(o.cache_hit_nodes for o in self.outcomes)
        executed = sum(o.executed_nodes for o in self.outcomes)
        if hits + executed:
            self.telemetry.metrics.gauge("service_dedup_ratio").set(
                hits / (hits + executed)
            )

    def _report(self) -> ServiceReport:
        return ServiceReport(
            outcomes=list(self.outcomes),
            tenants={name: state.summary()
                     for name, state in sorted(self.tenants.items())},
            breakers={name: breaker.to_json()
                      for name, breaker in self.breakers.items()},
            queue=self.queue.snapshot(),
            cache=self.shared_cache.stats(),
            simulated_seconds=self.clock.now,
            deduped_requests=self.deduped_requests,
            mirror_syncs=self.mirror_syncs,
            mirror_sync_failures=self.mirror_sync_failures,
            recovered_requests=self.recovered_requests,
            resumed_requests=self.resumed_requests,
            failovers=self.failovers,
            wal=self.wal.stats() if self.wal is not None else None,
        )


__all__ = [
    "DISPATCH_OVERHEAD",
    "SERVICE_RETRY",
    "STATUS_COMPLETED",
    "STATUS_DEADLINE_EXCEEDED",
    "STATUS_DEGRADED",
    "STATUS_REJECTED",
    "TERMINAL_STATUSES",
    "AdaptationRequest",
    "AdaptationService",
    "RequestOutcome",
    "ServiceCrash",
    "ServiceReport",
    "ServiceWAL",
    "TenantState",
    "percentile",
]
