"""Multi-tenant adaptation service (admission, bulkheads, breakers).

See ``docs/SERVICE.md`` for the service model: admission control and
weighted-fair queuing, per-tenant bulkheads and retry budgets, circuit
breakers around shared dependencies, deadline propagation, load
shedding down the degradation ladder, and the shared cross-tenant
artifact cache with single-flight dedup — all on one simulated
timeline, deterministic under a seed.
"""

from repro.service.admission import (
    MODE_FULL,
    MODE_GENERIC,
    MODE_REDIRECT_ONLY,
    PRIORITY_BATCH,
    PRIORITY_HIGH,
    PRIORITY_NORMAL,
    PRIORITY_ORDER,
    SHED_LADDER,
    AdmissionQueue,
    TokenBucket,
    priority_rank,
)
from repro.service.breaker import (
    STATE_CLOSED,
    STATE_HALF_OPEN,
    STATE_OPEN,
    CircuitBreaker,
)
from repro.service.errors import (
    CircuitOpenError,
    ServiceError,
    ServiceOverloadError,
)
from repro.service.service import (
    DISPATCH_OVERHEAD,
    SERVICE_RETRY,
    STATUS_COMPLETED,
    STATUS_DEADLINE_EXCEEDED,
    STATUS_DEGRADED,
    STATUS_REJECTED,
    TERMINAL_STATUSES,
    AdaptationRequest,
    AdaptationService,
    RequestOutcome,
    ServiceReport,
    TenantState,
    percentile,
)
from repro.service.wal import (
    RECORD_KINDS,
    WAL_SITE_KEY,
    WAL_VERSION,
    ServiceCrash,
    ServiceWAL,
)

__all__ = [
    "DISPATCH_OVERHEAD",
    "MODE_FULL",
    "MODE_GENERIC",
    "MODE_REDIRECT_ONLY",
    "PRIORITY_BATCH",
    "PRIORITY_HIGH",
    "PRIORITY_NORMAL",
    "PRIORITY_ORDER",
    "RECORD_KINDS",
    "SERVICE_RETRY",
    "SHED_LADDER",
    "STATE_CLOSED",
    "STATE_HALF_OPEN",
    "STATE_OPEN",
    "STATUS_COMPLETED",
    "STATUS_DEADLINE_EXCEEDED",
    "STATUS_DEGRADED",
    "STATUS_REJECTED",
    "TERMINAL_STATUSES",
    "WAL_SITE_KEY",
    "WAL_VERSION",
    "AdaptationRequest",
    "AdaptationService",
    "AdmissionQueue",
    "CircuitBreaker",
    "CircuitOpenError",
    "RequestOutcome",
    "ServiceCrash",
    "ServiceError",
    "ServiceOverloadError",
    "ServiceReport",
    "ServiceWAL",
    "TenantState",
    "TokenBucket",
    "percentile",
]
