"""Circuit breakers for the service's shared dependencies.

One :class:`CircuitBreaker` guards each dependency every tenant shares —
the origin registry, the rebuild worker fleet, the federation mirrors.
The classic three-state machine runs entirely on the service's simulated
clock (no wall time, deterministic under a seed):

* **closed** — calls flow; ``failure_threshold`` *consecutive* failures
  open the breaker (one success resets the count).
* **open** — calls fail fast with a typed
  :class:`~repro.service.errors.CircuitOpenError` carrying the time
  until half-open; after ``reset_timeout`` simulated seconds the next
  admission check moves the breaker to half-open.
* **half-open** — probe traffic is admitted; ``half_open_successes``
  consecutive successes close the breaker, any failure re-opens it
  (restarting the reset timeout).

Failing fast is itself a degradation tool: the service reacts to an
open breaker by routing around the dependency (local-replica transfer,
redirect-only adaptation, skipped mirror sync) instead of queueing work
behind a dependency that is known-bad.
"""

from __future__ import annotations

from typing import Callable, List, Tuple, TypeVar

from repro.resilience.retry import SimulatedClock
from repro.service.errors import CircuitOpenError
from repro.telemetry import NULL_TELEMETRY

T = TypeVar("T")

STATE_CLOSED = "closed"
STATE_OPEN = "open"
STATE_HALF_OPEN = "half-open"


class CircuitBreaker:
    """Three-state breaker on a simulated clock, with typed fail-fast."""

    def __init__(
        self,
        name: str,
        clock: SimulatedClock,
        failure_threshold: int = 3,
        reset_timeout: float = 180.0,
        half_open_successes: int = 1,
        telemetry=NULL_TELEMETRY,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if reset_timeout <= 0:
            raise ValueError("reset_timeout must be positive")
        self.name = name
        self.clock = clock
        self.failure_threshold = failure_threshold
        self.reset_timeout = float(reset_timeout)
        self.half_open_successes = max(1, half_open_successes)
        self.telemetry = telemetry or NULL_TELEMETRY
        self.state = STATE_CLOSED
        self.failures = 0          # consecutive failures while closed
        self.successes = 0         # consecutive successes while half-open
        self.opened_at = 0.0
        self.calls = 0
        self.rejections = 0
        #: Every transition as ``(simulated t, from-state, to-state)``.
        self.transitions: List[Tuple[float, str, str]] = []
        #: Optional transition hook ``listener(name, from, to, t)``; the
        #: durable service writes WAL records (and triggers origin
        #: failover) from here.
        self.listener = None

    # ------------------------------------------------------------------

    def _move(self, state: str) -> None:
        if state == self.state:
            return
        previous = self.state
        self.transitions.append((self.clock.now, previous, state))
        if self.telemetry.enabled:
            self.telemetry.event(
                "breaker.transition", dependency=self.name,
                from_state=previous, to_state=state, t=self.clock.now,
            )
            self.telemetry.metrics.counter(
                "service_breaker_transitions_total").inc()
        self.state = state
        if self.listener is not None:
            self.listener(self.name, previous, state, self.clock.now)

    def retry_after(self) -> float:
        """Simulated seconds until an open breaker admits a probe."""
        if self.state != STATE_OPEN:
            return 0.0
        return max(0.0, self.opened_at + self.reset_timeout - self.clock.now)

    def allow(self) -> bool:
        """May a call proceed right now?  (Open -> half-open on timeout.)"""
        if self.state == STATE_OPEN:
            if self.clock.now >= self.opened_at + self.reset_timeout:
                self.successes = 0
                self._move(STATE_HALF_OPEN)
                return True
            return False
        return True

    def record_success(self) -> None:
        if self.state == STATE_HALF_OPEN:
            self.successes += 1
            if self.successes >= self.half_open_successes:
                self.failures = 0
                self._move(STATE_CLOSED)
        else:
            self.failures = 0

    def record_failure(self) -> None:
        if self.state == STATE_HALF_OPEN:
            # The probe failed: straight back to open, timer restarted.
            self.opened_at = self.clock.now
            self._move(STATE_OPEN)
            return
        self.failures += 1
        if self.state == STATE_CLOSED and self.failures >= self.failure_threshold:
            self.opened_at = self.clock.now
            self._move(STATE_OPEN)

    def call(self, fn: Callable[[], T]) -> T:
        """Run *fn* through the breaker (typed fail-fast when open)."""
        self.calls += 1
        if not self.allow():
            self.rejections += 1
            if self.telemetry.enabled:
                self.telemetry.event("breaker.rejected", dependency=self.name)
                self.telemetry.metrics.counter(
                    "service_breaker_rejections_total").inc()
            raise CircuitOpenError(self.name, retry_after=self.retry_after())
        try:
            result = fn()
        except Exception:
            self.record_failure()
            raise
        self.record_success()
        return result

    # ------------------------------------------------------------------

    def to_json(self) -> dict:
        return {
            "name": self.name,
            "state": self.state,
            "calls": self.calls,
            "rejections": self.rejections,
            "transitions": [
                {"t": t, "from": a, "to": b} for t, a, b in self.transitions
            ],
        }


__all__ = ["STATE_CLOSED", "STATE_HALF_OPEN", "STATE_OPEN", "CircuitBreaker"]
