"""Admission control: bounded queue, WFQ, priorities, shedding, rates.

The admission layer decides three things about every arriving request,
all on simulated time and all deterministically:

**Whether it enters at all.**  The queue is capacity-bounded.  A full
queue first tries *displacement* — a strictly lower-priority queued
request is evicted (it ends typed-rejected, never silently dropped) to
make room for a higher-priority arrival — and otherwise rejects the
arrival with a typed :class:`~repro.service.errors.ServiceOverloadError`
carrying a retry-after hint.  Per-tenant token buckets
(:class:`TokenBucket`) bound sustained arrival rates before the queue is
even consulted.

**At what service level.**  Under queue pressure low-priority work is
*shed down the ladder* instead of rejected: past ``shed_watermark``
occupancy, batch arrivals are degraded to redirect-only adaptation;
past ``full_watermark``, batch falls to generic and normal to
redirect-only.  High-priority arrivals always request the full rebuild.
(The ladder's ``partial`` rung is not an admission choice — it emerges
from per-node fallback during a full rebuild.)

**In what order it leaves.**  Dequeue order is priority class first
(high, normal, batch), then weighted-fair across tenants within a
class: the eligible request of the tenant with the least *virtual time*
(accumulated service seconds / weight) goes next, FIFO within a tenant.
A noisy tenant at 10x fair load therefore delays its own backlog, not
its neighbours'.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.service.errors import ServiceOverloadError
from repro.telemetry import NULL_TELEMETRY

PRIORITY_HIGH = "high"
PRIORITY_NORMAL = "normal"
PRIORITY_BATCH = "batch"

#: Dispatch-order priority classes, best first.
PRIORITY_ORDER = (PRIORITY_HIGH, PRIORITY_NORMAL, PRIORITY_BATCH)

_PRIORITY_RANK = {p: i for i, p in enumerate(PRIORITY_ORDER)}


def priority_rank(priority: str) -> int:
    """Smaller is better; unknown priorities sort as batch."""
    return _PRIORITY_RANK.get(priority, len(PRIORITY_ORDER) - 1)


MODE_FULL = "full"
MODE_REDIRECT_ONLY = "redirect-only"
MODE_GENERIC = "generic"

#: The load-shedding ladder: how far an admitted request is degraded
#: before the service starts rejecting outright.
SHED_LADDER = (MODE_FULL, MODE_REDIRECT_ONLY, MODE_GENERIC)


@dataclass
class TokenBucket:
    """Per-tenant rate limit on the simulated clock.

    *rate* tokens refill per simulated second up to *burst*; each
    admission takes one token.  ``retry_after`` quotes the deficit in
    simulated seconds, which the typed overload error carries back.
    """

    rate: float
    burst: float
    tokens: float = field(default=-1.0)
    updated: float = 0.0

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError("token bucket rate must be positive")
        if self.burst < 1:
            raise ValueError("token bucket burst must be >= 1")
        if self.tokens < 0:
            self.tokens = self.burst

    def _refill(self, now: float) -> None:
        if now > self.updated:
            self.tokens = min(self.burst, self.tokens + (now - self.updated) * self.rate)
        self.updated = max(self.updated, now)

    def try_take(self, now: float) -> bool:
        self._refill(now)
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False

    def retry_after(self, now: float) -> float:
        """Simulated seconds until one token is available."""
        self._refill(now)
        if self.tokens >= 1.0:
            return 0.0
        return (1.0 - self.tokens) / self.rate


class AdmissionQueue:
    """The bounded, priority- and fairness-aware wait queue."""

    def __init__(
        self,
        capacity: int = 32,
        shed_watermark: float = 0.75,
        full_watermark: float = 0.9,
        telemetry=NULL_TELEMETRY,
    ) -> None:
        if capacity < 1:
            raise ValueError("queue capacity must be >= 1")
        if not 0.0 < shed_watermark <= full_watermark <= 1.0:
            raise ValueError(
                "need 0 < shed_watermark <= full_watermark <= 1"
            )
        self.capacity = capacity
        self.shed_watermark = shed_watermark
        self.full_watermark = full_watermark
        self.telemetry = telemetry or NULL_TELEMETRY
        self._items: List = []
        self.admitted = 0
        self.displaced = 0
        self.rejected = 0
        self.shed = 0
        self.peak_depth = 0

    def __len__(self) -> int:
        return len(self._items)

    def occupancy(self) -> float:
        return len(self._items) / self.capacity

    # ------------------------------------------------------------------

    def _shed_mode(self, priority: str) -> str:
        """The service level the current occupancy grants *priority*."""
        occupancy = self.occupancy()
        if occupancy < self.shed_watermark or priority == PRIORITY_HIGH:
            return MODE_FULL
        if occupancy < self.full_watermark:
            return MODE_REDIRECT_ONLY if priority == PRIORITY_BATCH else MODE_FULL
        return MODE_GENERIC if priority == PRIORITY_BATCH else MODE_REDIRECT_ONLY

    def _displaceable(self, arriving_rank: int):
        """Worst strictly-lower-priority queued request (newest last)."""
        worst = None
        for item in self._items:
            rank = priority_rank(item.priority)
            if rank <= arriving_rank:
                continue
            if worst is None or (rank, item.seq) > (
                priority_rank(worst.priority), worst.seq
            ):
                worst = item
        return worst

    def admit(self, request, retry_after: float = 0.0):
        """Admit *request*; returns the displaced request (usually None).

        Sets ``request.mode`` to the shed-ladder level the current
        occupancy grants.  Raises :class:`ServiceOverloadError` when the
        queue is full and nothing displaceable is queued.  A displaced
        request is *returned*, not dropped — the caller owes it a typed
        rejection outcome.
        """
        displaced = None
        if len(self._items) >= self.capacity:
            displaced = self._displaceable(priority_rank(request.priority))
            if displaced is None:
                self.rejected += 1
                if self.telemetry.enabled:
                    self.telemetry.metrics.counter(
                        "service_queue_rejections_total").inc()
                raise ServiceOverloadError(
                    request.tenant, "queue-full", retry_after=retry_after
                )
            self._items.remove(displaced)
            self.displaced += 1
        request.mode = self._shed_mode(request.priority)
        if request.mode != MODE_FULL:
            request.shed = True
            self.shed += 1
        self._items.append(request)
        self.admitted += 1
        self.peak_depth = max(self.peak_depth, len(self._items))
        return displaced

    def restore(self, request) -> None:
        """Re-queue an already-admitted request (single-flight followers).

        Bypasses capacity and shedding on purpose: the request was
        admitted once and its service level is already decided.
        """
        self._items.append(request)
        self.peak_depth = max(self.peak_depth, len(self._items))

    def pop_next(self, key_fn: Callable, eligible_fn: Callable) -> Optional[object]:
        """Remove and return the best eligible request, or None.

        *key_fn* maps a request to its dispatch key (smaller wins);
        *eligible_fn* gates on resources (tenant bulkhead, worker pool).
        A linear scan keeps the structure trivial and the ordering exact;
        queue depths are bounded by ``capacity``.
        """
        best = None
        best_key = None
        for item in self._items:
            if not eligible_fn(item):
                continue
            key = key_fn(item)
            if best_key is None or key < best_key:
                best, best_key = item, key
        if best is not None:
            self._items.remove(best)
        return best

    def expire(self, predicate: Callable) -> List:
        """Remove and return every queued request matching *predicate*."""
        expired = [item for item in self._items if predicate(item)]
        for item in expired:
            self._items.remove(item)
        return expired

    def snapshot(self) -> dict:
        return {
            "depth": len(self._items),
            "capacity": self.capacity,
            "occupancy": self.occupancy(),
            "admitted": self.admitted,
            "displaced": self.displaced,
            "rejected": self.rejected,
            "shed": self.shed,
            "peak_depth": self.peak_depth,
        }


__all__ = [
    "MODE_FULL",
    "MODE_GENERIC",
    "MODE_REDIRECT_ONLY",
    "PRIORITY_BATCH",
    "PRIORITY_HIGH",
    "PRIORITY_NORMAL",
    "PRIORITY_ORDER",
    "SHED_LADDER",
    "AdmissionQueue",
    "TokenBucket",
    "priority_rank",
]
