"""Federated registry tier (origin + edge mirrors).

See :mod:`repro.federation.registry` for the topology,
:mod:`repro.federation.sync` for the manifest-first incremental sync
protocol, and :mod:`repro.federation.ledger` for the chunk-level
transfer ledger that makes syncs resumable.
"""

from repro.federation.failover import (
    FencedWriteError,
    FencedWriter,
    Promotion,
)
from repro.federation.ledger import LEDGER_VERSION, TransferLedger
from repro.federation.registry import (
    FederatedRegistry,
    FederationError,
    Mirror,
    MirrorStatus,
)
from repro.federation.sync import (
    DEFAULT_BANDWIDTH,
    DEFAULT_CHUNK_SIZE,
    STAGE_ATTEMPTS,
    SyncEngine,
    SyncReport,
    chunk_spans,
)

__all__ = [
    "DEFAULT_BANDWIDTH",
    "DEFAULT_CHUNK_SIZE",
    "LEDGER_VERSION",
    "STAGE_ATTEMPTS",
    "FederatedRegistry",
    "FederationError",
    "FencedWriteError",
    "FencedWriter",
    "Mirror",
    "MirrorStatus",
    "Promotion",
    "SyncEngine",
    "SyncReport",
    "TransferLedger",
    "chunk_spans",
]
