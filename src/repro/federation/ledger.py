"""The transfer ledger: durable chunk-level progress of a mirror sync.

A mirror sync moves blobs in fixed-size chunks.  The ledger records, per
in-flight blob, which chunks have landed in the staging area and what
each received chunk hashed to — so a sync that crashes (or is aborted by
an injected ``mirror.sync``/``transfer.chunk`` fault) resumes mid-blob:
the next attempt re-hashes the staged bytes against the ledger, keeps
every chunk that still verifies, and fetches only the rest.

Like the v2 rebuild journal the serialized form is **JSONL** — one
header line plus one self-contained line per recorded chunk::

    {"kind": "transfer-ledger", "version": 1, "mirror": "edge-0"}
    {"blob": "sha256:...", "index": 0, "digest": "sha256:...",
     "offset": 0, "length": 65536, "size": 180224, "chunk_size": 65536}
    ...

The line-oriented format is the crash-consistency mechanism: a torn or
bit-flipped ledger write damages *lines*, not the whole document, so
:meth:`TransferLedger.from_bytes` salvages every parseable entry and
counts the rest in :attr:`torn_entries_dropped` — those chunks simply
re-transfer.  Ledger flushes ride the existing ``journal.append``
corruption site (the ledger *is* a journal), keyed
``transfer-ledger:<mirror>`` so scripted corruptions can target it.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Tuple

LEDGER_VERSION = 1

_CHUNK_KEYS = ("blob", "index", "digest", "offset", "length", "size", "chunk_size")


def _valid_chunk(entry: object) -> bool:
    """Structural check for one ledger line before trusting it."""
    if not isinstance(entry, dict):
        return False
    if not isinstance(entry.get("blob"), str) or not isinstance(
        entry.get("digest"), str
    ):
        return False
    for key in ("index", "offset", "length", "size", "chunk_size"):
        if not isinstance(entry.get(key), int) or entry[key] < 0:
            return False
    if entry["chunk_size"] <= 0 or entry["length"] > entry["chunk_size"]:
        return False
    return entry["offset"] + entry["length"] <= entry["size"]


class TransferLedger:
    """Chunk-completion journal for one mirror's staging area."""

    def __init__(self, mirror: str = "") -> None:
        self.mirror = mirror
        #: blob digest -> {chunk index -> chunk record dict}
        self._chunks: Dict[str, Dict[int, dict]] = {}
        #: Ledger lines dropped during load (torn, flipped, invalid);
        #: those chunks re-transfer on the resumed sync.
        self.torn_entries_dropped = 0

    # -- queries -----------------------------------------------------------

    def __len__(self) -> int:
        return sum(len(chunks) for chunks in self._chunks.values())

    def blobs(self) -> List[str]:
        return sorted(self._chunks)

    def chunks(self, blob_digest: str) -> Dict[int, dict]:
        """Recorded chunk entries of one blob, keyed on chunk index."""
        return dict(self._chunks.get(blob_digest, {}))

    def chunk_digest(self, blob_digest: str, index: int) -> Optional[str]:
        entry = self._chunks.get(blob_digest, {}).get(index)
        return entry["digest"] if entry else None

    # -- mutation ----------------------------------------------------------

    def record_chunk(
        self,
        blob_digest: str,
        index: int,
        digest: str,
        offset: int,
        length: int,
        size: int,
        chunk_size: int,
    ) -> None:
        """Note that chunk *index* of *blob_digest* landed hashing to
        *digest*.  Durable only after the next :meth:`to_bytes` flush."""
        self._chunks.setdefault(blob_digest, {})[index] = {
            "blob": blob_digest,
            "index": index,
            "digest": digest,
            "offset": offset,
            "length": length,
            "size": size,
            "chunk_size": chunk_size,
        }

    def discard_chunk(self, blob_digest: str, index: int) -> None:
        """Drop one chunk record (it failed verification; re-fetch it)."""
        chunks = self._chunks.get(blob_digest)
        if chunks is not None:
            chunks.pop(index, None)
            if not chunks:
                del self._chunks[blob_digest]

    def discard_blob(self, blob_digest: str) -> None:
        """Drop every record of one blob (it was promoted, or abandoned)."""
        self._chunks.pop(blob_digest, None)

    def clear(self) -> None:
        self._chunks = {}

    # -- persistence -------------------------------------------------------

    def to_bytes(self) -> bytes:
        """Serialize as JSONL (header + one line per recorded chunk)."""
        lines = [
            json.dumps(
                {
                    "kind": "transfer-ledger",
                    "version": LEDGER_VERSION,
                    "mirror": self.mirror,
                },
                sort_keys=True,
            )
        ]
        for blob_digest in sorted(self._chunks):
            for index in sorted(self._chunks[blob_digest]):
                entry = self._chunks[blob_digest][index]
                lines.append(
                    json.dumps(
                        {key: entry[key] for key in _CHUNK_KEYS}, sort_keys=True
                    )
                )
        return ("\n".join(lines) + "\n").encode("utf-8")

    @staticmethod
    def from_bytes(data: bytes, mirror: str = "") -> "TransferLedger":
        """Salvage a ledger from serialized bytes.

        Every line that fails to decode, parse, or validate is dropped
        (and counted in :attr:`torn_entries_dropped`); the rest of the
        ledger is still used, so one flipped bit costs one chunk's worth
        of re-transfer, never a full restart.
        """
        ledger = TransferLedger(mirror=mirror)
        lines = data.split(b"\n")
        head = lines[0] if lines else b""
        if head.strip(b" \t\r\x00"):
            # A flush torn *inside the header line* leaves a JSON prefix
            # here; that costs one dropped line, never a raise — the
            # result is an empty-but-valid ledger and a full re-transfer.
            try:
                header = json.loads(head.decode("utf-8"))
                if not (
                    isinstance(header, dict)
                    and header.get("kind") == "transfer-ledger"
                ):
                    ledger.torn_entries_dropped += 1
                elif not mirror:
                    ledger.mirror = str(header.get("mirror", ""))
            except Exception:
                ledger.torn_entries_dropped += 1
        for raw in lines[1:]:
            if not raw.strip(b" \t\r\x00"):
                continue
            try:
                entry = json.loads(raw.decode("utf-8"))
                valid = _valid_chunk(entry)
            except Exception:
                ledger.torn_entries_dropped += 1
                continue
            if not valid:
                ledger.torn_entries_dropped += 1
                continue
            ledger._chunks.setdefault(entry["blob"], {})[entry["index"]] = {
                key: entry[key] for key in _CHUNK_KEYS
            }
        return ledger


__all__ = ["LEDGER_VERSION", "TransferLedger"]
