"""Manifest-first incremental mirror sync with verify-then-promote.

One :class:`SyncEngine` serves one origin registry and syncs any number
of :class:`~repro.federation.registry.Mirror` replicas.  The protocol,
per sync attempt:

1. **Diff** — compare the origin's ``name:tag -> manifest digest`` map
   (a fault-transparent metadata read) with the mirror's; only changed
   references proceed.  The blob want-list is the referenced closure of
   the changed manifests minus whatever the mirror already stores
   *intact* — a blob present but rotten counts as missing, so sync also
   heals replicas.
2. **Stage** — fetch each wanted blob from the origin in fixed-size
   chunks into the mirror's shadow staging area.  Every chunk arms the
   ``transfer.chunk`` fault site (a transient fault aborts the sync
   mid-blob) and may be silently corrupted in flight; each completed
   chunk is recorded in the mirror's :class:`TransferLedger` and the
   ledger flushed, so a resumed sync re-transfers only unfinished or
   unverifiable chunks.
3. **Verify** — re-hash every staged blob against its declared digest.
   A mismatch is localized by re-hashing chunks against the origin's
   chunk plan; only the damaged chunks are discarded from the ledger and
   re-fetched (bounded attempts).  Changed references are then
   Merkle-verified end to end (manifest → config → layers) against the
   staged + stored blobs.
4. **Promote** — write the verified blobs into the mirror's registry
   (post-write re-verified) and only then flip tags.  A torn, crashed,
   or corrupted sync therefore can never make a mirror serve bad bytes:
   until the final metadata flip the mirror keeps serving its previous
   content.

Transfer time is charged to a :class:`SimulatedClock` at a configurable
bandwidth, so chaos sweeps and the federation bench measure sync time
without sleeping.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.federation.ledger import TransferLedger
from repro.integrity import (
    KIND_DIGEST_MISMATCH,
    IntegrityError,
    IntegrityFinding,
)
from repro.oci import mediatypes
from repro.oci.blobs import Blob, check_blob
from repro.oci.digest import digest_bytes
from repro.oci.image import ImageConfig, Manifest
from repro.oci.layer import Layer
from repro.oci.layout import ResolvedImage
from repro.resilience.retry import SimulatedClock
from repro.telemetry import NULL_TELEMETRY

#: Default transfer chunk size (bytes).  Small enough that typical layer
#: blobs span several chunks (so mid-blob resume is observable), large
#: enough that ledger flushes stay cheap.
DEFAULT_CHUNK_SIZE = 1 << 16

#: Simulated replication bandwidth (bytes per simulated second).
DEFAULT_BANDWIDTH = 100e6

#: How many times one blob is re-staged when chunks keep arriving (or
#: resting) corrupt before the sync gives up with a typed error.
STAGE_ATTEMPTS = 6


def chunk_spans(size: int, chunk_size: int) -> List[Tuple[int, int, int]]:
    """``(index, offset, length)`` spans covering *size* bytes."""
    if size <= 0:
        return []
    return [
        (index, offset, min(chunk_size, size - offset))
        for index, offset in enumerate(range(0, size, chunk_size))
    ]


@dataclass
class SyncReport:
    """What one sync attempt checked, moved, and promoted."""

    mirror: str
    references_checked: int = 0
    #: Changed references promoted by this attempt (sorted).
    references_promoted: List[str] = field(default_factory=list)
    blobs_needed: int = 0
    blobs_fetched: int = 0
    chunks_total: int = 0
    chunks_fetched: int = 0
    #: Chunks skipped because the ledger + staged bytes already verified.
    chunks_resumed: int = 0
    #: Chunks discarded (in-flight or at-rest corruption) and re-fetched.
    chunks_corrupted: int = 0
    bytes_on_wire: int = 0
    artifact_caches_synced: int = 0
    #: Ledger lines dropped by a salvaged reload before this attempt.
    ledger_lines_dropped: int = 0
    simulated_seconds: float = 0.0
    up_to_date: bool = False

    def to_json(self) -> dict:
        return {
            "mirror": self.mirror,
            "references_checked": self.references_checked,
            "references_promoted": list(self.references_promoted),
            "blobs_needed": self.blobs_needed,
            "blobs_fetched": self.blobs_fetched,
            "chunks_total": self.chunks_total,
            "chunks_fetched": self.chunks_fetched,
            "chunks_resumed": self.chunks_resumed,
            "chunks_corrupted": self.chunks_corrupted,
            "bytes_on_wire": self.bytes_on_wire,
            "artifact_caches_synced": self.artifact_caches_synced,
            "ledger_lines_dropped": self.ledger_lines_dropped,
            "simulated_seconds": self.simulated_seconds,
            "up_to_date": self.up_to_date,
        }


class SyncEngine:
    """Incremental, resumable, verify-then-promote replication engine."""

    def __init__(
        self,
        origin,
        injector=None,
        telemetry=NULL_TELEMETRY,
        clock: Optional[SimulatedClock] = None,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        bandwidth: float = DEFAULT_BANDWIDTH,
    ) -> None:
        self.origin = origin
        self.injector = injector
        self.telemetry = telemetry
        self.clock = clock or SimulatedClock()
        self.chunk_size = max(1, int(chunk_size))
        self.bandwidth = bandwidth

    # ------------------------------------------------------------------

    def _arm(self, site: str, key: str) -> None:
        if self.injector is not None:
            self.injector.arm(site, key)

    def _charge(self, nbytes: int) -> None:
        if self.bandwidth > 0:
            seconds = nbytes / self.bandwidth
            self.clock.sleep(seconds)
            controlplane = self.telemetry.controlplane
            if controlplane is not None:
                # Each chunk's transfer time advances the sampler, so a
                # long sync is observable while it runs, not just after.
                controlplane.advance(seconds)

    # ------------------------------------------------------------------
    # diff
    # ------------------------------------------------------------------

    def plan(self, mirror) -> Tuple[Dict[str, str], Dict[str, str], List[str]]:
        """(changed references, changed artifact caches, wanted blobs).

        Metadata-only: uses the fault-transparent ``manifest_map`` probes
        plus origin blob reads for the changed manifests, so an in-sync
        mirror costs one catalogue diff and zero transfers.
        """
        origin_map = self.origin.manifest_map()
        mirror_map = mirror.registry.manifest_map()
        changed: Dict[str, str] = {}
        for ref, digest in origin_map.items():
            if mirror_map.get(ref) != digest:
                changed[ref] = digest
                continue
            # Tag already current: a purely local health check of the
            # replica's referenced closure (no origin reads, no transfer)
            # re-opens the reference when at-rest rot is found, so an
            # incremental sync also heals rotten replicas.
            referenced = self._referenced_of(mirror.registry, digest)
            if referenced is None or mirror.registry.blobs.missing_of(referenced):
                changed[ref] = digest
        caches: Dict[str, str] = {}
        for repo in self.origin.repositories():
            blob = self.origin.get_artifact_cache(repo)
            if blob is None:
                continue
            ours = mirror.registry.get_artifact_cache(repo)
            if ours is None or ours.digest != blob.digest or check_blob(ours):
                caches[repo] = blob.digest
        wanted: set = set(caches.values())
        for digest in changed.values():
            wanted.add(digest)
            manifest = Manifest.from_json(self.origin.blobs.get(digest).as_json())
            wanted.add(manifest.config.digest)
            wanted.update(ld.digest for ld in manifest.layers)
        return changed, caches, mirror.registry.blobs.missing_of(wanted)

    @staticmethod
    def _referenced_of(registry, manifest_digest: str):
        """The referenced digest closure of one manifest, read from
        *registry*'s local store; None when the manifest itself is
        absent or unreadable (which also means: re-sync it)."""
        blob = registry.blobs.try_get(manifest_digest)
        if blob is None or check_blob(blob) is not None:
            return None
        try:
            manifest = Manifest.from_json(blob.as_json())
        except Exception:
            return None
        refs = {manifest_digest, manifest.config.digest}
        refs.update(ld.digest for ld in manifest.layers)
        return refs

    # ------------------------------------------------------------------
    # stage (chunked + resumable)
    # ------------------------------------------------------------------

    def _flush_ledger(self, mirror) -> None:
        """Persist the ledger journal-style (``journal.append`` faults
        model a torn flush; damage costs dropped lines, not restarts)."""
        data = mirror.ledger.to_bytes()
        inj = self.injector
        if inj is not None and inj.corrupting("journal.append"):
            data = inj.corrupt(
                "journal.append", f"transfer-ledger:{mirror.name}", data
            )
        mirror.ledger_bytes = data

    def _stage_blob(self, mirror, digest: str, report: SyncReport) -> bytes:
        """Bring one blob fully into the mirror's staging area, verified.

        Returns the verified staged bytes.  Chunks already recorded in
        the ledger whose staged bytes still re-hash clean are skipped
        (resume); everything else is fetched, with corruption localized
        to chunks and bounded re-fetch attempts.
        """
        ledger: TransferLedger = mirror.ledger
        origin_blob = self.origin.blobs.get(digest)
        media_type = origin_blob.media_type
        data = origin_blob.as_bytes()
        size = len(data)
        spans = chunk_spans(size, self.chunk_size)
        report.chunks_total += len(spans)
        buf = mirror.staging.get(digest)
        if buf is None or len(buf) != size:
            buf = bytearray(size)
            mirror.staging[digest] = buf
            ledger.discard_blob(digest)

        resumed_counted = False
        for attempt in range(STAGE_ATTEMPTS):
            recorded = ledger.chunks(digest)
            for index, offset, length in spans:
                entry = recorded.get(index)
                staged = bytes(buf[offset:offset + length])
                if (
                    entry is not None
                    and entry["length"] == length
                    and entry["offset"] == offset
                    and digest_bytes(staged) == entry["digest"]
                ):
                    if not resumed_counted:
                        report.chunks_resumed += 1
                    continue
                key = f"{mirror.name}/{digest}#{index}"
                self._arm("transfer.chunk", key)
                chunk = data[offset:offset + length]
                inj = self.injector
                if inj is not None and inj.corrupting("transfer.chunk"):
                    chunk = inj.corrupt("transfer.chunk", key, chunk)
                buf[offset:offset + length] = chunk
                ledger.record_chunk(
                    digest, index, digest_bytes(chunk),
                    offset=offset, length=length, size=size,
                    chunk_size=self.chunk_size,
                )
                self._flush_ledger(mirror)
                report.chunks_fetched += 1
                report.bytes_on_wire += length
                self._charge(length)
            resumed_counted = True
            staged = bytes(buf)
            if self._staged_intact(media_type, digest, staged):
                return staged
            # Localize the damage: only chunks whose staged bytes differ
            # from the origin's chunk plan re-transfer.
            bad = 0
            for index, offset, length in spans:
                if bytes(buf[offset:offset + length]) != data[offset:offset + length]:
                    ledger.discard_chunk(digest, index)
                    bad += 1
            if bad == 0:   # whole-blob mismatch with no bad chunk: restart blob
                ledger.discard_blob(digest)
                bad = len(spans)
            report.chunks_corrupted += bad
            self._flush_ledger(mirror)
        raise IntegrityError(
            site="mirror.stage",
            finding=IntegrityFinding(
                digest=digest,
                kind=KIND_DIGEST_MISMATCH,
                detail=(
                    f"staged blob kept failing verification after "
                    f"{STAGE_ATTEMPTS} attempts"
                ),
            ),
        )

    @classmethod
    def _staged_intact(cls, media_type: str, digest: str, data: bytes) -> bool:
        """Whole-blob verification of staged bytes.

        Raw blobs re-hash their bytes; simulated layer blobs carry a
        digest over entry identities (not the serialization), so they
        must parse and their recomputed layer digest must match.
        """
        try:
            blob = cls._assemble(media_type, digest, data)
        except Exception:
            return False   # unparseable staging == corrupt
        return check_blob(blob) is None

    @staticmethod
    def _assemble(media_type: str, digest: str, data: bytes) -> Blob:
        """Reconstruct a typed blob from verified staged bytes."""
        if media_type == mediatypes.SIM_LAYER:
            layer = Layer.from_bytes(data)
            return Blob(
                media_type=media_type, digest=digest,
                size=layer.size, payload=layer,
            )
        return Blob(
            media_type=media_type, digest=digest, size=len(data), payload=data
        )

    # ------------------------------------------------------------------
    # sync = diff + stage + verify + promote
    # ------------------------------------------------------------------

    def sync(self, mirror) -> SyncReport:
        tele = self.telemetry
        if not tele.enabled:
            return self._sync_inner(mirror)
        with tele.span("mirror.sync", mirror=mirror.name) as span:
            try:
                report = self._sync_inner(mirror)
            except Exception:
                tele.metrics.counter("federation_sync_failures_total").inc()
                raise
            span.set("references_promoted", len(report.references_promoted))
            span.set("blobs_fetched", report.blobs_fetched)
            span.set("bytes_on_wire", report.bytes_on_wire)
            m = tele.metrics
            m.counter("federation_syncs_total").inc()
            m.counter("federation_blobs_synced_total").inc(report.blobs_fetched)
            m.counter("federation_chunks_fetched_total").inc(report.chunks_fetched)
            m.counter("federation_chunks_resumed_total").inc(report.chunks_resumed)
            m.counter("federation_chunks_corrupted_total").inc(
                report.chunks_corrupted)
            m.counter("federation_bytes_on_wire_total").inc(report.bytes_on_wire)
            return report

    def _sync_inner(self, mirror) -> SyncReport:
        report = SyncReport(mirror=mirror.name)
        started = self.clock.now
        report.ledger_lines_dropped = mirror.ledger.torn_entries_dropped
        self._arm("mirror.sync", mirror.name)
        changed, caches, wanted = self.plan(mirror)
        report.references_checked = len(self.origin.manifest_map())
        report.blobs_needed = len(wanted)
        if not changed and not caches:
            report.up_to_date = True
            report.simulated_seconds = self.clock.now - started
            return report

        # Stage + verify every wanted blob before touching the registry.
        staged: Dict[str, Blob] = {}
        for digest in wanted:
            data = self._stage_blob(mirror, digest, report)
            media_type = self.origin.blobs.get(digest).media_type
            blob = self._assemble(media_type, digest, data)
            finding = check_blob(blob)
            if finding is not None:   # defense in depth; staging verified
                raise IntegrityError(site="mirror.stage", finding=finding)
            staged[digest] = blob

        # Merkle-verify each changed reference across staged + stored blobs.
        def blob_of(digest: str) -> Blob:
            if digest in staged:
                return staged[digest]
            return mirror.registry.blobs.get(digest)

        for ref in sorted(changed):
            manifest = Manifest.from_json(blob_of(changed[ref]).as_json())
            config = ImageConfig.from_json(
                blob_of(manifest.config.digest).as_json()
            )
            layers = [blob_of(ld.digest).as_layer() for ld in manifest.layers]
            ResolvedImage(
                manifest=manifest, config=config, layers=layers
            ).check("mirror.promote")

        # Promote: verified blobs first, then the metadata flips.
        for digest in sorted(staged):
            mirror.registry.blobs.put_verified(staged[digest])
            report.blobs_fetched += 1
        for ref in sorted(changed):
            mirror.registry.tag_manifest(ref, changed[ref])
            report.references_promoted.append(ref)
        for repo in sorted(caches):
            blob = staged[caches[repo]]
            mirror.registry.put_artifact_cache(repo, blob)
            stored = mirror.registry.blobs.try_get(blob.digest)
            if stored is None or check_blob(stored) is not None:
                # put_artifact_cache's transfer path can be corrupted by
                # the injector; the promotion contract re-verifies.
                mirror.registry.blobs.put_verified(blob)
            report.artifact_caches_synced += 1

        # Staging bookkeeping for promoted blobs is done with.
        for digest in staged:
            mirror.staging.pop(digest, None)
            mirror.ledger.discard_blob(digest)
        self._flush_ledger(mirror)
        mirror.syncs += 1
        mirror.last_sync_seconds = self.clock.now
        report.simulated_seconds = self.clock.now - started
        return report


__all__ = [
    "DEFAULT_BANDWIDTH",
    "DEFAULT_CHUNK_SIZE",
    "STAGE_ATTEMPTS",
    "SyncEngine",
    "SyncReport",
    "chunk_spans",
]
