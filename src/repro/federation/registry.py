"""Federated registry tier: one origin, N edge mirrors.

The :class:`FederatedRegistry` wraps the existing in-memory
:class:`~repro.oci.registry.ImageRegistry` with a replication topology:

* the **origin** is authoritative — every push lands there and bumps a
  monotonic *generation* counter;
* each :class:`Mirror` is a full :class:`ImageRegistry` of its own with
  a chunk-level :class:`TransferLedger` and a shadow staging area, kept
  convergent by the :class:`~repro.federation.sync.SyncEngine`'s
  manifest-first incremental sync;
* **pulls fail over**: origin first, then mirrors nearest-fresh-first.
  A mirror whose content lags the origin (or whose ``mirror.stale``
  probe fires) is skipped for references it would serve stale;
* **mirrors are repair sources**: every mirror registers as a
  :class:`~repro.integrity.repair.RegistrySource`, so a corrupted origin
  blob self-heals from any replica holding a verified copy.

Staleness is tracked as *generations behind*: the origin's generation at
the mirror's last successful sync versus the origin's generation now.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.federation.failover import FencedWriter, Promotion
from repro.federation.ledger import TransferLedger
from repro.federation.sync import (
    DEFAULT_BANDWIDTH,
    DEFAULT_CHUNK_SIZE,
    SyncEngine,
    SyncReport,
)
from repro.integrity import IntegrityError
from repro.oci.layout import ResolvedImage
from repro.oci.registry import ImageNotFound, ImageRegistry, RegistryError
from repro.resilience.faults import InjectedFault
from repro.resilience.retry import SimulatedClock
from repro.telemetry import NULL_TELEMETRY


class FederationError(RegistryError):
    """No member of the federation could serve the request."""


class Mirror:
    """One edge replica: registry + transfer ledger + staging shadow area."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.registry = ImageRegistry()
        self.ledger = TransferLedger(mirror=name)
        #: Last flushed serialization of the ledger (what would be on
        #: disk); :meth:`reload_ledger` re-parses it, as a crash would.
        self.ledger_bytes: bytes = self.ledger.to_bytes()
        #: Shadow staging area: blob digest -> partially received bytes.
        #: Nothing here is ever served; promotion copies verified bytes
        #: into :attr:`registry`.
        self.staging: Dict[str, bytearray] = {}
        #: Origin generation captured at the last successful sync;
        #: -1 means never synced.
        self.synced_generation = -1
        self.syncs = 0
        self.last_sync_seconds: Optional[float] = None

    def reload_ledger(self) -> int:
        """Simulate a restart: drop in-memory ledger state and salvage
        the last flushed bytes.  Returns the number of torn/invalid
        lines dropped (those chunks will simply re-transfer)."""
        self.ledger = TransferLedger.from_bytes(self.ledger_bytes, mirror=self.name)
        return self.ledger.torn_entries_dropped

    def crash(self) -> int:
        """Simulate a hard crash mid-sync: staging survives (it is the
        on-disk shadow area) but all volatile state resets and the
        ledger reloads from its last flush."""
        return self.reload_ledger()


@dataclass
class MirrorStatus:
    """One row of ``coMtainer mirror status``."""

    name: str
    generations_behind: int
    references: int
    blobs: int
    ledger_chunks: int
    in_flight_blobs: int
    syncs: int

    def to_json(self) -> dict:
        return {
            "name": self.name,
            "generations_behind": self.generations_behind,
            "references": self.references,
            "blobs": self.blobs,
            "ledger_chunks": self.ledger_chunks,
            "in_flight_blobs": self.in_flight_blobs,
            "syncs": self.syncs,
        }


class FederatedRegistry:
    """Origin + mirrors with incremental sync, failover, and repair."""

    def __init__(
        self,
        origin: Optional[ImageRegistry] = None,
        injector=None,
        telemetry=NULL_TELEMETRY,
        clock: Optional[SimulatedClock] = None,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        bandwidth: float = DEFAULT_BANDWIDTH,
    ) -> None:
        self.origin = origin if origin is not None else ImageRegistry()
        self.injector = injector
        self.telemetry = telemetry
        self.mirrors: Dict[str, Mirror] = {}
        #: Bumped on every origin mutation; mirrors record the generation
        #: they last converged to, giving a staleness measure that does
        #: not depend on wall-clock time.
        self.generation = 0
        #: Fence epoch: bumped on every origin promotion.  Writers hold
        #: :class:`~repro.federation.failover.FencedWriter` handles that
        #: captured this token; a stale handle's writes are rejected —
        #: the split-brain guard against a resurrected old origin.
        self.fence_token = 0
        #: The origin is down (``fail_origin``); pulls skip it and a
        #: failover can promote a mirror in its place.
        self.origin_offline = False
        #: Stale-fence writes rejected since construction.
        self.fenced_rejections = 0
        #: Completed origin promotions.
        self.failovers = 0
        self._demoted: Optional[ImageRegistry] = None
        self._demoted_name: Optional[str] = None
        self.engine = SyncEngine(
            self.origin,
            injector=injector,
            telemetry=telemetry,
            clock=clock,
            chunk_size=chunk_size,
            bandwidth=bandwidth,
        )

    @property
    def clock(self) -> SimulatedClock:
        return self.engine.clock

    # ------------------------------------------------------------------
    # topology
    # ------------------------------------------------------------------

    def add_mirror(self, name: str) -> Mirror:
        if name in self.mirrors:
            raise FederationError(f"mirror already registered: {name!r}")
        mirror = Mirror(name)
        self.mirrors[name] = mirror
        if self.telemetry.enabled:
            self.telemetry.metrics.gauge("federation_mirrors").set(len(self.mirrors))
        return mirror

    def mirror(self, name: str) -> Mirror:
        try:
            return self.mirrors[name]
        except KeyError:
            raise FederationError(f"no such mirror: {name!r}") from None

    def generations_behind(self, mirror: Mirror) -> int:
        if mirror.synced_generation < 0:
            return self.generation + 1
        return max(0, self.generation - mirror.synced_generation)

    def _freshest_first(self) -> List[Mirror]:
        return sorted(
            self.mirrors.values(),
            key=lambda m: (self.generations_behind(m), m.name),
        )

    # ------------------------------------------------------------------
    # origin writes (bump the generation)
    # ------------------------------------------------------------------

    def push(self, reference, manifest, config, layers) -> str:
        digest = self.origin.push(reference, manifest, config, layers)
        self.generation += 1
        return digest

    def push_layout(self, reference, layout, tag=None) -> str:
        digest = self.origin.push_layout(reference, layout, tag=tag)
        self.generation += 1
        return digest

    def put_artifact_cache(self, repository: str, blob) -> str:
        digest = self.origin.put_artifact_cache(repository, blob)
        self.generation += 1
        return digest

    def record_origin_write(self) -> None:
        """Bump the generation for a write that went to the origin
        registry directly (e.g. the service's resilient transfer, which
        pushes to the origin's :class:`ImageRegistry` without going
        through the federation's wrappers)."""
        self.generation += 1

    # ------------------------------------------------------------------
    # origin failover: fencing, election, promotion
    # ------------------------------------------------------------------

    def fenced_writer(self) -> FencedWriter:
        """Acquire a write handle bound to the current fence epoch."""
        return FencedWriter(self)

    def reject_fenced_write(self, stale_token: int) -> None:
        """Account one stale-fence write (called by the fence check)."""
        self.fenced_rejections += 1
        if self.telemetry.enabled:
            self.telemetry.event(
                "federation.fenced_write_rejected",
                stale_token=stale_token, current_token=self.fence_token,
            )
            self.telemetry.metrics.counter(
                "federation_fenced_writes_rejected_total").inc()

    def fail_origin(self) -> None:
        """Mark the origin down: pulls skip it, a failover may promote."""
        if self.origin_offline:
            return
        self.origin_offline = True
        if self.telemetry.enabled:
            self.telemetry.event("federation.origin_failed",
                                 generation=self.generation)

    def electable(self) -> List[Mirror]:
        """Mirrors eligible to become origin, deterministically ordered:
        locally intact (clean registry audit), no in-flight sync (empty
        ledger and staging — staged-but-unverified bytes must never be
        served as origin truth), freshest ``synced_generation`` first,
        ties broken by name."""
        candidates = [
            m for m in self.mirrors.values()
            if not m.registry.audit() and not len(m.ledger) and not m.staging
            and m.synced_generation >= 0
        ]
        return sorted(candidates, key=lambda m: (-m.synced_generation, m.name))

    def promote(self, name: Optional[str] = None) -> Promotion:
        """Promote a mirror to origin under a new fence epoch.

        With no *name* the freshest electable mirror wins.  The old
        origin is kept aside (see :meth:`rejoin_demoted`); its unsynced
        generations are gone — by definition no surviving replica holds
        them.  Every pre-failover :class:`FencedWriter` handle is now
        stale and will be rejected on first write.
        """
        notes: List[str] = []
        if name is None:
            ranked = self.electable()
            if not ranked:
                raise FederationError(
                    "no electable mirror: need a converged, intact replica "
                    "with no in-flight sync"
                )
            winner = ranked[0]
            notes.extend(
                f"runner-up {m.name} at generation {m.synced_generation}"
                for m in ranked[1:]
            )
        else:
            winner = self.mirror(name)
            if winner.registry.audit():
                raise FederationError(
                    f"mirror {name!r} fails its local audit; refusing to "
                    f"promote damaged bytes to origin"
                )
            if len(winner.ledger) or winner.staging:
                raise FederationError(
                    f"mirror {name!r} has an in-flight sync; refusing to "
                    f"promote unverified staged bytes to origin"
                )
        del self.mirrors[winner.name]
        self._demoted = self.origin
        self._demoted_name = f"demoted-origin-{self.fence_token}"
        self.origin = winner.registry
        self.engine.origin = winner.registry
        self.fence_token += 1
        self.origin_offline = False
        self.failovers += 1
        # The promoted origin's truth starts at what it had converged to;
        # peers at most that fresh re-sync against it.
        self.generation = max(0, winner.synced_generation)
        for mirror in self.mirrors.values():
            mirror.synced_generation = min(
                mirror.synced_generation, self.generation)
        promotion = Promotion(
            elected=winner.name, fence_token=self.fence_token,
            generation=self.generation, demoted=self._demoted_name,
            notes=notes,
        )
        if self.telemetry.enabled:
            self.telemetry.event(
                "federation.promoted", elected=winner.name,
                fence_token=self.fence_token, generation=self.generation,
            )
            self.telemetry.metrics.counter("federation_failovers_total").inc()
            self.telemetry.metrics.gauge("federation_fence_token").set(
                float(self.fence_token))
            self.telemetry.metrics.gauge("federation_mirrors").set(
                len(self.mirrors))
        return promotion

    def fail_over(self, name: Optional[str] = None) -> Promotion:
        """Origin-down path in one step: fence + elect + promote."""
        self.fail_origin()
        return self.promote(name)

    def rejoin_demoted(self, ctx=None) -> Optional[SyncReport]:
        """Reconcile the demoted origin back in as a mirror.

        References the fenced epoch never accepted (writes that only the
        old origin saw) are untagged first, then the regular
        :class:`SyncEngine` converges it like any other replica.  Returns
        the sync report, or None when there is nothing to rejoin.
        """
        if self._demoted is None or self._demoted_name is None:
            return None
        registry, name = self._demoted, self._demoted_name
        self._demoted = None
        self._demoted_name = None
        current = set(self.origin.manifest_map())
        for ref in sorted(set(registry.manifest_map()) - current):
            registry.delete_reference(ref)
        mirror = self.add_mirror(name)
        mirror.registry = registry
        report = self.sync_mirror(name, ctx=ctx)
        if self.telemetry.enabled:
            self.telemetry.event("federation.demoted_rejoined", mirror=name)
        return report

    # ------------------------------------------------------------------
    # sync
    # ------------------------------------------------------------------

    def sync_mirror(self, name: str, ctx=None) -> SyncReport:
        """Sync one mirror; with a :class:`ResilienceContext` the whole
        attempt retries under the ``mirror.sync`` site (the ledger makes
        retried attempts cheap — only unfinished chunks re-transfer)."""
        mirror = self.mirror(name)
        target_generation = self.generation
        if ctx is not None:
            report = ctx.retry(
                lambda: self.engine.sync(mirror), site="mirror.sync"
            )
        else:
            report = self.engine.sync(mirror)
        mirror.synced_generation = max(mirror.synced_generation, target_generation)
        if self.telemetry.enabled:
            self.telemetry.metrics.gauge(
                "federation_max_generations_behind"
            ).set(max(
                (self.generations_behind(m) for m in self.mirrors.values()),
                default=0,
            ))
        return report

    def sync_all(self, ctx=None) -> Dict[str, SyncReport]:
        return {
            name: self.sync_mirror(name, ctx=ctx)
            for name in sorted(self.mirrors)
        }

    # ------------------------------------------------------------------
    # reads: origin -> nearest-fresh-mirror failover
    # ------------------------------------------------------------------

    def pull(self, reference: str) -> ResolvedImage:
        """Pull with failover.

        The origin is authoritative: an :class:`ImageNotFound` from it is
        final (a mirror serving the tag would be serving a deleted or
        never-pushed reference).  Transfer and integrity failures fail
        over to mirrors, freshest first; a mirror is skipped when it does
        not hold the tag at the origin's digest (stale) or when its
        ``mirror.stale`` probe fires (simulating a replica whose
        metadata view lags its own content).
        """
        tele = self.telemetry
        errors: List[str] = []
        if self.origin_offline:
            # A failed, not-yet-promoted origin serves nothing and its
            # metadata cannot be trusted as the freshness bar; mirrors
            # serve by existence until a promotion restores authority.
            expected = None
            errors.append("origin: offline")
        else:
            expected = self.origin.manifest_digest(reference)
            try:
                return self.origin.pull(reference)
            except ImageNotFound:
                raise
            except (RegistryError, IntegrityError, InjectedFault) as exc:
                errors.append(f"origin: {exc}")
        for mirror in self._freshest_first():
            if expected is not None:
                if mirror.registry.manifest_digest(reference) != expected:
                    errors.append(f"{mirror.name}: stale or missing reference")
                    continue
            elif not mirror.registry.exists(reference):
                errors.append(f"{mirror.name}: reference not replicated")
                continue
            inj = self.injector
            if inj is not None and inj.probe(
                "mirror.stale", f"{mirror.name}/{reference}"
            ):
                errors.append(f"{mirror.name}: stale probe fired")
                if tele.enabled:
                    tele.metrics.counter("federation_stale_skips_total").inc()
                continue
            try:
                resolved = mirror.registry.pull(reference)
            except (RegistryError, IntegrityError, InjectedFault) as exc:
                errors.append(f"{mirror.name}: {exc}")
                continue
            if tele.enabled:
                tele.metrics.counter("federation_failover_pulls_total").inc()
                tele.event(
                    "federation.failover", reference=reference,
                    served_by=mirror.name,
                )
            return resolved
        raise FederationError(
            f"no federation member could serve {reference!r}: "
            + "; ".join(errors)
        )

    # ------------------------------------------------------------------
    # repair integration
    # ------------------------------------------------------------------

    def repair_sources(self) -> List:
        """Mirrors as :class:`RegistrySource`s, freshest first, so the
        PR 3 repair engine restores corrupted origin blobs from the
        nearest-fresh replica holding a verified copy."""
        from repro.integrity.repair import RegistrySource

        return [
            RegistrySource(m.registry, label=f"mirror:{m.name}")
            for m in self._freshest_first()
        ]

    def repair_engine(self, telemetry=None):
        from repro.integrity.repair import RepairEngine

        engine = RepairEngine(
            telemetry=telemetry if telemetry is not None else self.telemetry
        )
        engine.sources.extend(self.repair_sources())
        return engine

    # ------------------------------------------------------------------
    # convergence / audit
    # ------------------------------------------------------------------

    def converged(self, mirror: Mirror) -> bool:
        """True when *mirror* is digest-identical to the origin: same
        catalogue, same artifact caches, every referenced blob stored
        byte-equal."""
        return not self.divergences(mirror)

    def divergences(self, mirror: Mirror) -> List[str]:
        """Human-readable divergences of one mirror from the origin."""
        problems: List[str] = []
        origin_map = self.origin.manifest_map()
        mirror_map = mirror.registry.manifest_map()
        for ref in sorted(origin_map):
            theirs = mirror_map.get(ref)
            if theirs is None:
                problems.append(f"missing reference {ref}")
            elif theirs != origin_map[ref]:
                problems.append(
                    f"divergent reference {ref}: origin {origin_map[ref]},"
                    f" mirror {theirs}"
                )
        for ref in sorted(set(mirror_map) - set(origin_map)):
            problems.append(f"extra reference {ref}")
        for repo in self.origin.repositories():
            blob = self.origin.get_artifact_cache(repo)
            if blob is None:
                continue
            theirs = mirror.registry.get_artifact_cache(repo)
            if theirs is None or theirs.digest != blob.digest:
                problems.append(f"divergent artifact cache for {repo}")
        for digest in sorted(self.origin.referenced_digests()):
            ours = self.origin.blobs.try_get(digest)
            theirs = mirror.registry.blobs.try_get(digest)
            if ours is None:
                continue   # origin damage is the audit's job, not sync's
            if theirs is None:
                problems.append(f"missing blob {digest}")
            elif theirs.as_bytes() != ours.as_bytes():
                problems.append(f"divergent blob {digest}")
        return problems

    def audit(self) -> Dict[str, List[str]]:
        """Replica-divergence audit: mirror name -> problems (the
        federation half of ``coMtainer fsck --federation``)."""
        return {
            name: self.divergences(self.mirrors[name])
            for name in sorted(self.mirrors)
        }

    def status_rows(self) -> List[MirrorStatus]:
        rows = []
        for name in sorted(self.mirrors):
            mirror = self.mirrors[name]
            rows.append(
                MirrorStatus(
                    name=name,
                    generations_behind=self.generations_behind(mirror),
                    references=len(mirror.registry.manifest_map()),
                    blobs=len(mirror.registry.blobs),
                    ledger_chunks=len(mirror.ledger),
                    in_flight_blobs=len(mirror.staging),
                    syncs=mirror.syncs,
                )
            )
        return rows


__all__ = [
    "FederatedRegistry",
    "FederationError",
    "Mirror",
    "MirrorStatus",
]
