"""Generation-fenced origin failover for the federated registry tier.

When the origin registry fails, the federation promotes the freshest
*converged* mirror to be the new origin.  The dangerous part is not the
election — it is the old origin coming back.  A resurrected origin that
still believes it is authoritative would accept writes and split the
brain: two registries, both "origin", diverging silently.

The fence closes that hole.  Every promotion bumps a monotonic
**fence token** (an epoch counter).  Writers do not talk to the origin
directly; they hold a :class:`FencedWriter` handle that captured the
fence token at creation.  A write through a handle whose token is no
longer current — the resurrected stale origin's handle, by construction
— is rejected with a typed :class:`FencedWriteError`, counted in
:attr:`~repro.federation.registry.FederatedRegistry.fenced_rejections`,
and surfaced through telemetry (``federation_fenced_writes_rejected_total``).
The stale origin can *rejoin*, but only as a mirror: its extra
references (writes the fenced epoch never accepted) are untagged and the
:class:`~repro.federation.sync.SyncEngine` reconciles it against the
promoted origin like any other replica.

Election is deterministic: among mirrors that are locally intact (their
own :meth:`~repro.oci.registry.ImageRegistry.audit` is clean) and
converged (no in-flight sync: empty transfer ledger and staging area),
pick the highest ``synced_generation``; ties break on name.  A mirror
mid-sync is *not* electable — its ledger says some blobs are staged but
unverified, and an origin must never serve bytes it has not promoted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.oci.registry import RegistryError


class FencedWriteError(RegistryError):
    """A write arrived bearing a stale fence token (pre-failover epoch)."""

    def __init__(self, stale_token: int, current_token: int) -> None:
        self.stale_token = stale_token
        self.current_token = current_token
        super().__init__(
            f"write fenced: token {stale_token} is stale "
            f"(current epoch is {current_token}); this writer was demoted "
            f"by an origin failover — re-acquire a writer from the "
            f"federation (the old origin must rejoin as a mirror)"
        )


@dataclass
class Promotion:
    """The outcome of one origin failover."""

    elected: str
    fence_token: int
    #: Generation the promoted origin starts at (the winner's last
    #: converged generation; unsynced writes on the failed origin are
    #: lost, which is exactly what "freshest converged replica" means).
    generation: int
    demoted: Optional[str] = None
    #: Mirrors that were considered and why the losers lost.
    notes: List[str] = field(default_factory=list)

    def to_json(self) -> dict:
        return {
            "elected": self.elected,
            "fence_token": self.fence_token,
            "generation": self.generation,
            "demoted": self.demoted,
            "notes": list(self.notes),
        }


class FencedWriter:
    """A write handle bound to the fence epoch it was acquired under.

    All origin mutations flow through one of these; the handle delegates
    to the federation (so the generation counter bumps) only after
    checking that its token is still the current epoch.  A handle issued
    before a failover keeps pointing at whatever registry *was* origin —
    and is rejected on first use, which is the split-brain guard.
    """

    def __init__(self, federation) -> None:
        self._federation = federation
        self.token = federation.fence_token
        #: The registry this writer believes is origin (captured, not
        #: looked up per call — exactly how a stale process behaves).
        self.registry = federation.origin

    def _check(self) -> None:
        if self.token != self._federation.fence_token:
            self._federation.reject_fenced_write(self.token)
            raise FencedWriteError(self.token, self._federation.fence_token)

    @property
    def stale(self) -> bool:
        return self.token != self._federation.fence_token

    def push(self, reference, manifest, config, layers) -> str:
        self._check()
        return self._federation.push(reference, manifest, config, layers)

    def push_layout(self, reference, layout, tag=None) -> str:
        self._check()
        return self._federation.push_layout(reference, layout, tag=tag)

    def put_artifact_cache(self, repository: str, blob) -> str:
        self._check()
        return self._federation.put_artifact_cache(repository, blob)

    def tag_manifest(self, reference: str, digest: str) -> None:
        self._check()
        self._federation.origin.tag_manifest(reference, digest)
        self._federation.record_origin_write()


__all__ = ["FencedWriteError", "FencedWriter", "Promotion"]
