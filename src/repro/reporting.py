"""Evaluation harness: regenerate every table and figure of the paper.

Each ``figureNN_rows`` / ``tableNN_rows`` function returns structured rows
(and, where the paper reports numbers, a paper-reference column) so the
benchmarks under ``benchmarks/`` and the examples can print the same
series the paper does.  ``render_table`` turns rows into aligned text.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.apps import get_app
from repro.apps.specs import CROSSISA_APPS, MIB, TABLE3_APPS
from repro.containers import ContainerEngine
from repro.core.cache.storage import decode_cache, extended_tag
from repro.core.crossisa import CrossIsaReport, analyze_cross_isa
from repro.core.workflow import (
    ComtainerSession,
    build_extended_image,
    build_original_image,
    library_only_adapt,
    measure_schemes,
    run_workload,
)
from repro.perf import WORKLOADS, attach_perf, predict_time, scheme_traits
from repro.perf.schemes import MOTIVATION_SCHEMES
from repro.sysmodel import AARCH64_CLUSTER, SYSTEMS, X86_CLUSTER, SystemModel


def render_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Align columns; floats rendered with 3 decimals.

    Cells may contain newlines: a multi-line cell contributes its widest
    line to the column width and its row renders as multiple output
    lines, with the other columns padded.
    """
    def fmt(value: object) -> str:
        if isinstance(value, float):
            return f"{value:.3f}"
        return str(value)

    def cell_lines(text: str) -> List[str]:
        return text.split("\n") if text else [""]

    def cell_width(text: str) -> int:
        return max(len(line) for line in cell_lines(text))

    text_rows = [[fmt(v) for v in row] for row in rows]
    widths = [
        max(cell_width(headers[i]),
            *(cell_width(r[i]) for r in text_rows)) if text_rows
        else cell_width(headers[i])
        for i in range(len(headers))
    ]
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for row in text_rows:
        split = [cell_lines(cell) for cell in row]
        height = max(len(cell) for cell in split)
        for line_no in range(height):
            lines.append("  ".join(
                (split[i][line_no] if line_no < len(split[i]) else "")
                .ljust(widths[i])
                for i in range(len(row))
            ))
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Telemetry: measured stage breakdowns and adaptation reports
# (docs/OBSERVABILITY.md)
# ---------------------------------------------------------------------------

def telemetry_stage_rows(telemetry) -> List[Tuple[str, int, float]]:
    """(stage, span count, total simulated seconds) per span name.

    This is the measured decomposition the paper's evaluation needs
    (where do adaptation time and bytes go): span self-plus-children
    durations aggregated across the recorded forest, sorted by cost.
    """
    counts: Dict[str, int] = {}
    seconds: Dict[str, float] = {}
    for span in telemetry.iter_spans():
        counts[span.name] = counts.get(span.name, 0) + 1
        seconds[span.name] = seconds.get(span.name, 0.0) + span.duration
    return [
        (name, counts[name], seconds[name])
        for name in sorted(counts, key=lambda n: -seconds[n])
    ]


def render_adaptation_report(telemetry) -> str:
    """The exportable adaptation report: stages, transfer cost, caching.

    Combines the measured stage breakdown with the OCI byte/cache-hit
    counters so evaluation tables cite what the pipeline actually did
    instead of recomputing sizes after the fact.
    """
    m = telemetry.metrics
    lines = [render_table(["stage", "spans", "simulated s"],
                          telemetry_stage_rows(telemetry))]

    reads = m.value("oci_blob_reads_total")
    hits = m.value("oci_blob_cache_hits_total")
    writes = m.value("oci_blob_cache_misses_total") + hits
    transfer_rows = [
        ("registry pushes", int(m.value("registry_pushes_total")),
         int(m.value("registry_push_bytes_total"))),
        ("registry pulls", int(m.value("registry_pulls_total")),
         int(m.value("registry_pull_bytes_total"))),
        ("blob writes", int(writes), int(m.value("oci_blob_bytes_written_total"))),
        ("blob reads", int(reads), int(m.value("oci_blob_bytes_read_total"))),
    ]
    lines.append("")
    lines.append(render_table(["transfer", "ops", "bytes"], transfer_rows))

    hit_ratio = hits / writes if writes else 0.0
    artifact_hits = int(m.value("rebuild_artifact_cache_hits_total"))
    artifact_lookups = artifact_hits + int(
        m.value("rebuild_artifact_cache_misses_total")
    )
    artifact_ratio = artifact_hits / artifact_lookups if artifact_lookups else 0.0
    summary_rows = [
        ("blob cache hit ratio", f"{hit_ratio:.1%}"),
        ("artifact cache hits",
         f"{artifact_hits}/{artifact_lookups} ({artifact_ratio:.1%})"),
        ("artifact cache stores",
         int(m.value("rebuild_artifact_cache_stores_total"))),
        ("artifact cache evictions",
         int(m.value("rebuild_artifact_cache_evictions_total"))),
        ("rebuild nodes executed", int(m.value("rebuild_nodes_executed_total"))),
        ("rebuild nodes reused", int(m.value("rebuild_nodes_reused_total"))),
        ("rebuild nodes restored", int(m.value("rebuild_nodes_restored_total"))),
        ("rebuild nodes failed", int(m.value("rebuild_nodes_failed_total"))),
        ("retries", int(m.value("resilience_retries_total"))),
        ("worker crashes", int(m.value("fleet_worker_crashes_total"))),
        ("lease reassignments", int(m.value("fleet_reassignments_total"))),
        ("speculative wins",
         f"{int(m.value('fleet_speculative_wins_total'))}/"
         f"{int(m.value('fleet_speculative_launches_total'))}"),
        ("workers blacklisted", int(m.value("fleet_blacklisted_workers"))),
        ("events logged", len(telemetry.events)),
    ]
    lines.append("")
    lines.append(render_table(["adaptation", "value"], summary_rows))

    controlplane = getattr(telemetry, "controlplane", None)
    if controlplane is not None and controlplane.rules.history:
        lines.append("")
        lines.append(render_alerts(controlplane.rules))
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Observability control plane: alerts, health, hot paths
# (docs/OBSERVABILITY.md)
# ---------------------------------------------------------------------------

def render_alerts(rules_engine) -> str:
    """One :class:`repro.telemetry.controlplane.RulesEngine`'s alert
    history as aligned text (firing first, then resolved, in fire order)."""
    rows = rules_engine.alert_rows()
    if not rows:
        return "(no alerts fired)"
    return render_table(
        ("alert", "component", "severity", "state", "value",
         "fired", "resolved"),
        rows,
    )


def health_status_rows(report) -> List[Tuple[str, str, str]]:
    """``coMtainer health`` rows for one
    :class:`repro.telemetry.controlplane.HealthReport`."""
    return report.status_rows()


def render_health_report(report) -> str:
    return render_table(
        ("component", "status", "evidence"), health_status_rows(report)
    )


def hot_path_rows(profiler, k: int = 10) -> List[Tuple[str, str, float, str]]:
    """(stack, phase, seconds, share) top-K rows for one
    :class:`repro.telemetry.controlplane.CostProfiler`."""
    return [
        (stack, phase, seconds, f"{share:.1%}")
        for stack, phase, seconds, share in profiler.hot_rows(k)
    ]


def render_hot_paths(profiler, k: int = 10) -> str:
    rows = hot_path_rows(profiler, k)
    if not rows:
        return "(no cost attributed)"
    lines = [render_table(("hot path", "phase", "simulated s", "share"), rows)]
    phase_rows = sorted(
        profiler.phase_totals().items(), key=lambda kv: -kv[1]
    )
    lines.append("")
    lines.append(render_table(("phase", "simulated s"), phase_rows))
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Resilience reports (docs/RESILIENCE.md)
# ---------------------------------------------------------------------------

def render_resilience_report(report, telemetry=None) -> str:
    """One :class:`repro.resilience.ResilienceReport` as aligned text.

    With *telemetry* (an active recorder carrying a control plane), SLO
    alerts that fired during the adaptation are appended, so the
    degradation story and the alert story read side by side.
    """
    rows = [
        ("rung", report.rung),
        ("image", report.ref or "-"),
        ("retries", sum(report.retries.values())),
        ("retry budgets exhausted", sum(report.retry_exhaustions.values())),
        ("failed nodes", len(report.failed_nodes)),
        ("fallback artifacts", len(report.fallback_paths)),
        ("journal-restored nodes", len(report.restored_nodes)),
        ("corruptions detected", len(report.integrity_errors)),
        ("blobs repaired", len(report.repaired_digests)),
        ("blobs quarantined", len(report.quarantined_digests)),
        ("simulated backoff (s)", report.simulated_seconds),
    ]
    if report.deadline_exceeded:
        rows.insert(2, ("deadline_exceeded", report.deadline_exceeded))
    stats = report.worker_stats
    if stats:
        rows.extend([
            ("worker crashes", int(stats.get("crashes", 0))),
            ("group reassignments", int(stats.get("reassignments", 0))),
            ("speculative wins",
             f"{int(stats.get('speculative_wins', 0))}/"
             f"{int(stats.get('speculative_launches', 0))}"),
            ("workers blacklisted", len(stats.get("blacklisted", ()))),
        ])
    lines = [render_table((f"adaptation of {report.tag}", "value"), rows)]
    causes = getattr(report, "retry_exhaustion_causes", None)
    if causes:
        # Causes are keyed ``site/cause`` (attempt cap vs. time budget),
        # so the two exhaustion modes show as distinct rows.
        for key in sorted(causes):
            lines.append(f"  exhausted: {key} x{causes[key]}")
    else:
        for site in sorted(report.retry_exhaustions):
            lines.append(
                f"  exhausted: {site} x{report.retry_exhaustions[site]}"
            )
    for reason in report.reasons:
        lines.append(f"  degraded: {reason}")
    controlplane = getattr(telemetry, "controlplane", None)
    if controlplane is not None:
        for alert in controlplane.rules.history:
            lines.append(f"  alert   : {alert.describe()}")
    return "\n".join(lines)


def resilience_rows(reports) -> List[Tuple]:
    """(tag, rung, retries, failed, fallbacks, restored) summary rows."""
    return [
        (
            r.tag, r.rung, sum(r.retries.values()), len(r.failed_nodes),
            len(r.fallback_paths), len(r.restored_nodes),
        )
        for r in reports
    ]


def service_tenant_rows(report) -> List[Tuple]:
    """(tenant, submitted, done, degraded, rejected, deadline, p50, p99)
    rows for one :class:`repro.service.ServiceReport`."""
    return [
        (
            t["tenant"], t["submitted"], t["completed"], t["degraded"],
            t["rejected"], t["deadline_exceeded"], t["p50"], t["p99"],
        )
        for t in report.tenants.values()
    ]


def render_service_report(report, telemetry=None) -> str:
    """One :class:`repro.service.ServiceReport` as aligned text.

    Per-tenant outcome/latency rows, then the shared-infrastructure
    story: breakers (with their transition history), queue pressure,
    the cross-tenant cache, and — with *telemetry* carrying a control
    plane — the SLO alerts that fired during the run.
    """
    counts = report.by_status()
    lines = [render_table(
        ("tenant", "submitted", "completed", "degraded", "rejected",
         "deadline", "p50 (s)", "p99 (s)"),
        service_tenant_rows(report),
    )]
    lines.append("")
    retry_hints = [
        o.retry_after for o in report.outcomes
        if o.status == "rejected" and o.retry_after is not None
    ]
    rows = [
        ("requests", len(report.outcomes)),
        ("completed", counts.get("completed", 0)),
        ("degraded", counts.get("degraded", 0)),
        ("rejected", counts.get("rejected", 0)),
        ("retry-after hint (s)",
         f"{min(retry_hints):.1f}-{max(retry_hints):.1f}"
         if retry_hints else "-"),
        ("deadline-exceeded", counts.get("deadline-exceeded", 0)),
        ("deduped in flight", report.deduped_requests),
        ("shared-cache dedup", f"{report.dedup_ratio:.1%}"),
        ("queue peak depth",
         f"{report.queue['peak_depth']}/{report.queue['capacity']}"),
        ("queue shed", report.queue["shed"]),
        ("queue displaced", report.queue["displaced"]),
        ("mirror syncs", f"{report.mirror_syncs} "
                         f"({report.mirror_sync_failures} failed)"),
        ("simulated seconds", report.simulated_seconds),
    ]
    if getattr(report, "wal", None):
        rows.append(("WAL records", f"{report.wal['records']} "
                                    f"({report.wal['bytes']} bytes, "
                                    f"{report.wal['torn_records_dropped']} "
                                    f"torn dropped)"))
        rows.append(("WAL restarts survived", report.wal["restarts"]))
    if getattr(report, "recovered_requests", 0):
        rows.append(("recovered from WAL", report.recovered_requests))
    if getattr(report, "resumed_requests", 0):
        rows.append(("in-flight resumed", report.resumed_requests))
    if getattr(report, "failovers", 0):
        rows.append(("origin failovers", report.failovers))
    lines.append(render_table(("service", "value"), rows))
    for outcome in report.outcomes:
        if outcome.status == "rejected" and outcome.retry_after is not None:
            reason = outcome.reasons[0] if outcome.reasons else "rejected"
            lines.append(f"  rejected: {outcome.request_id} ({reason}; "
                         f"retry after {outcome.retry_after:.1f}s)")
    for name in sorted(report.breakers):
        breaker = report.breakers[name]
        lines.append(f"  breaker : {name} {breaker['state']}"
                     f" ({breaker['calls']} calls,"
                     f" {breaker['rejections']} fail-fast)")
        for hop in breaker["transitions"]:
            lines.append(f"    t={hop['t']:.1f}s {hop['from']} -> {hop['to']}")
    controlplane = getattr(telemetry, "controlplane", None)
    if controlplane is not None:
        for alert in controlplane.rules.history:
            lines.append(f"  alert   : {alert.describe()}")
    return "\n".join(lines)


def fsck_rows(report) -> List[Tuple[str, object]]:
    """(category, count/detail) rows for one ``coMtainer fsck`` pass."""
    return [
        ("scanned", report.scanned),
        ("corrupt (initial)", len(report.initial_findings)),
        ("corrupt (remaining)", len(report.findings)),
        ("quarantined", len(report.quarantined)),
        ("repaired", len(report.repaired)),
        ("repair failures", len(report.failed)),
        ("missing referenced", len(report.missing)),
        ("orphaned", len(report.orphaned)),
        ("verdict", "clean" if report.clean else "CORRUPT"),
    ]


def render_fsck_report(report) -> str:
    """One :class:`repro.integrity.fsck.FsckReport` as aligned text."""
    lines = [render_table((f"fsck {report.target}", "value"), fsck_rows(report))]
    for finding in report.findings:
        lines.append(f"  corrupt : {finding}")
    for outcome in report.repaired:
        lines.append(f"  repaired: {outcome.digest} (from {outcome.source})")
    for outcome in report.failed:
        lines.append(f"  FAILED  : {outcome.digest} ({outcome.detail})")
    for digest in report.missing:
        lines.append(f"  missing : {digest}")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Federation (docs/RESILIENCE.md — registry tier)
# ---------------------------------------------------------------------------

def sync_report_rows(reports) -> List[Tuple]:
    """(mirror, refs, blobs, chunks fetched/resumed/corrupt, bytes, s)
    rows for a batch of :class:`repro.federation.sync.SyncReport`."""
    rows = []
    for r in reports:
        rows.append((
            r.mirror,
            "up to date" if r.up_to_date else ", ".join(r.references_promoted),
            r.blobs_fetched,
            f"{r.chunks_fetched}/{r.chunks_resumed}/{r.chunks_corrupted}",
            r.bytes_on_wire,
            r.simulated_seconds,
        ))
    return rows


def render_sync_reports(reports) -> str:
    return render_table(
        ("mirror", "promoted", "blobs",
         "chunks f/r/c", "bytes on wire", "sim s"),
        sync_report_rows(reports),
    )


def federation_status_rows(federation) -> List[Tuple]:
    """``coMtainer mirror status`` rows for one federation."""
    return [
        (
            s.name, s.generations_behind, s.references, s.blobs,
            s.ledger_chunks, s.in_flight_blobs, s.syncs,
        )
        for s in federation.status_rows()
    ]


def render_federation_status(federation) -> str:
    return render_table(
        ("mirror", "behind", "refs", "blobs",
         "ledger chunks", "in-flight", "syncs"),
        federation_status_rows(federation),
    )


def render_federation_fsck_report(report) -> str:
    """One :class:`repro.integrity.fsck.FederationFsckReport` as text."""
    lines = [render_fsck_report(report.origin)]
    for name in sorted(report.replicas):
        lines.append("")
        lines.append(render_fsck_report(report.replicas[name]))
    lines.append("")
    divergent = {n: p for n, p in report.divergences.items() if p}
    if not divergent:
        lines.append("federation: every replica converged with the origin")
    else:
        lines.append(f"federation: {len(divergent)} replica(s) DIVERGENT")
        for name in sorted(divergent):
            for problem in divergent[name]:
                lines.append(f"  {name}: {problem}")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Figure 3 — motivation: single-node LULESH, incremental optimizations
# ---------------------------------------------------------------------------

#: Paper-reported reductions for the motivation experiment.
FIG3_PAPER = {
    "x86": {"cxxo_vs_original": 0.50, "lto_vs_prev": 0.175, "pgo_vs_prev": 0.096},
    "arm": {"cxxo_vs_original": 0.72},
}


def figure3_rows(system: SystemModel) -> List[Tuple[str, float, float]]:
    """(scheme, seconds, reduction vs original) for single-node LULESH."""
    rows: List[Tuple[str, float, float]] = []
    base = None
    for scheme in MOTIVATION_SCHEMES:
        traits = scheme_traits("lulesh", system, scheme)
        seconds = predict_time("lulesh", system, traits, nodes=1)
        if base is None:
            base = seconds
        rows.append((scheme, seconds, 1.0 - seconds / base))
    return rows


def figure3_pipeline_rows(
    session: ComtainerSession,
) -> List[Tuple[str, float]]:
    """Pipeline-level motivation: original vs library-only vs adapted vs
    optimized images, executed on one node."""
    rows: List[Tuple[str, float]] = []
    engine = session.system_engine
    original = session.original_image("lulesh")
    libo_ref = library_only_adapt(engine, original, session.system)
    for label, ref, vendor in [
        ("original", original, False),
        ("libo", libo_ref, True),
        ("adapted", session.adapted_image("lulesh"), True),
        ("optimized", session.optimized_image("lulesh"), True),
    ]:
        report = run_workload(
            engine, ref, "lulesh", session.recorder, nodes=1, vendor_mpirun=vendor
        )
        rows.append((label, report.seconds))
    return rows


# ---------------------------------------------------------------------------
# Table 1 / Table 2 — testbed and workloads
# ---------------------------------------------------------------------------

def table1_rows() -> List[Tuple[str, str, str]]:
    x86, arm = X86_CLUSTER, AARCH64_CLUSTER
    return [
        ("CPU", f"{x86.cpu.sockets} x {x86.cpu.name} @ {x86.cpu.freq_ghz}GHz",
         f"{arm.cpu.sockets} x {arm.cpu.name} @ {arm.cpu.freq_ghz}GHz"),
        ("RAM", f"{x86.ram_gb}GB", f"{arm.ram_gb}GB"),
        ("OS", x86.os_name, arm.os_name),
        ("Nodes", str(x86.nodes), str(arm.nodes)),
    ]


def table2_rows() -> List[Tuple[str, str, int]]:
    rows = []
    for name in sorted(WORKLOADS):
        profile = WORKLOADS[name]
        rows.append((profile.app, profile.input_name, profile.loc))
    return rows


# ---------------------------------------------------------------------------
# Figure 9 — performance retention (the headline result)
# ---------------------------------------------------------------------------

@dataclass
class Figure9Result:
    system: str
    #: workload -> scheme -> seconds, through the full pipeline
    times: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def averages(self) -> Dict[str, float]:
        schemes = ("original", "native", "adapted", "optimized")
        n = len(self.times)
        return {
            s: sum(t[s] for t in self.times.values()) / n for s in schemes
        }

    def improvement(self, workload: str) -> float:
        t = self.times[workload]
        return t["original"] / t["native"] - 1.0


def figure9_run(
    session: ComtainerSession, workloads: Optional[List[str]] = None
) -> Figure9Result:
    """Measure all four schemes for every workload through the pipeline."""
    result = Figure9Result(system=session.system.key)
    for name in sorted(workloads or WORKLOADS):
        result.times[name] = measure_schemes(session, name)
    return result


def figure9_rows(result: Figure9Result) -> List[Tuple]:
    rows = []
    for name in sorted(result.times):
        t = result.times[name]
        paper_ratio = WORKLOADS[name].target_ratio[result.system]
        rows.append((
            name, t["original"], t["native"], t["adapted"], t["optimized"],
            t["original"] / t["native"], paper_ratio,
        ))
    return rows


# ---------------------------------------------------------------------------
# Figure 10 — relative execution time to native
# ---------------------------------------------------------------------------

def figure10_rows(result: Figure9Result) -> List[Tuple[str, float, float]]:
    """(workload, adapted/native, optimized/native)."""
    rows = []
    for name in sorted(result.times):
        t = result.times[name]
        rows.append((name, t["adapted"] / t["native"], t["optimized"] / t["native"]))
    return rows


#: Paper outliers of Figure 10 (reduction of optimized vs native).
FIG10_PAPER_OUTLIERS = {
    ("x86", "openmx.pt13"): 0.304,
    ("x86", "lammps.chain"): -0.121,
    ("arm", "lammps.lj"): 0.177,
    ("arm", "hpcg"): -0.149,
}


# ---------------------------------------------------------------------------
# Table 3 — image and cache layer sizes
# ---------------------------------------------------------------------------

def table3_rows(
    engines: Optional[Dict[str, ContainerEngine]] = None,
    apps: Sequence[str] = TABLE3_APPS,
) -> List[Tuple]:
    """(app, x86 MiB, paper, arm MiB, paper, cache MiB, paper)."""
    engines = engines or {
        "amd64": ContainerEngine(arch="amd64"),
        "arm64": ContainerEngine(arch="arm64"),
    }
    rows = []
    for app in apps:
        spec = get_app(app)
        sizes = {}
        cache_mib = None
        for arch, engine in engines.items():
            ref = build_original_image(engine, spec, tag=f"{app}:{arch}")
            sizes[arch] = engine.image_filesystem(ref).total_size() / MIB
            if cache_mib is None:
                layout, dist_tag = build_extended_image(engine, spec)
                extended = layout.resolve(extended_tag(dist_tag))
                cache_mib = extended.layers[-1].payload_size / MIB
        rows.append((
            app,
            sizes["amd64"], spec.image_size["amd64"],
            sizes["arm64"], spec.image_size["arm64"],
            cache_mib, spec.cache_size,
        ))
    return rows


# ---------------------------------------------------------------------------
# Figure 11 — cross-ISA build script changes
# ---------------------------------------------------------------------------

def figure11_reports(
    engine: Optional[ContainerEngine] = None,
    apps: Sequence[str] = CROSSISA_APPS,
    target_isa: str = "aarch64",
) -> List[CrossIsaReport]:
    engine = engine or ContainerEngine(arch="amd64")
    reports = []
    for app in apps:
        layout, dist_tag = build_extended_image(engine, get_app(app))
        models, sources, _ = decode_cache(layout, dist_tag)
        reports.append(analyze_cross_isa(models, sources, target_isa, app=app))
    return reports


def figure11_rows(reports: Sequence[CrossIsaReport]) -> List[Tuple]:
    """(app, coM +lines, coM -lines, xbuild +lines, xbuild -lines)."""
    rows = []
    for report in reports:
        c_add, c_del = report.comtainer_changes
        x_add, x_del = report.xbuild_changes
        rows.append((report.app, c_add, c_del, x_add, x_del))
    return rows
